"""Recorded programs: real crypto workloads producing real traces.

Each program performs genuine computation through the recorder (the
AES-CTR ciphertext is bit-correct against the reference implementation)
while its faultable-instruction trace falls out as a side effect — the
closest in-repository analogue of the paper's instrumented Nginx/VLC
runs.

Instruction-count constants model the surrounding scalar code (loop
control, loads/stores, protocol parsing); they shape the gap structure,
not the results.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.emulation.aes import aes128_expand_key, aesenclast
from repro.emulation.vector import Vec128
from repro.isa.opcodes import Opcode
from repro.workloads.recorder import InstructionRecorder
from repro.workloads.trace import FaultableTrace

#: Scalar instructions around each AES block (pointer bumps, loads,
#: stores, counter update) — Agner-Fog-scale estimates.
_PER_BLOCK_OVERHEAD = 18
#: Scalar instructions per GHASH block outside the carry-less multiply.
_PER_GHASH_OVERHEAD = 12


def aes_ctr_encrypt(recorder: InstructionRecorder, key: bytes,
                    data: bytes, nonce: int = 0) -> bytes:
    """AES-128-CTR encryption, recorded.

    Every AESENC round goes through the recorder (10 rounds per block:
    9 recorded AESENC + the final round, modelled as one more event),
    so the trace carries one dense burst per buffer.

    Returns:
        The ciphertext (bit-exact AES-CTR).
    """
    if len(key) != 16:
        raise ValueError("AES-128 keys are 16 bytes")
    round_keys = aes128_expand_key(key)
    out = bytearray()
    n_blocks = (len(data) + 15) // 16
    for block_index in range(n_blocks):
        counter = (nonce + block_index).to_bytes(16, "little")
        state = Vec128(Vec128.from_bytes(counter).value ^ round_keys[0].value)
        for r in range(1, 10):
            state = recorder.execute(Opcode.AESENC, state, round_keys[r])
        # AESENCLAST shares the AESENC fault class; record it as one.
        recorder._events.append((recorder.position, Opcode.AESENC))
        recorder._position += 1
        state = aesenclast(state, round_keys[10])
        keystream = state.to_bytes()
        chunk = data[16 * block_index: 16 * block_index + 16]
        out.extend(b ^ k for b, k in zip(chunk, keystream))
        recorder.retire(_PER_BLOCK_OVERHEAD)
    return bytes(out)


def ghash_tag(recorder: InstructionRecorder, h_key: int,
              ciphertext: bytes) -> int:
    """A GHASH-style authentication tag over *ciphertext*, recorded.

    Each 16-byte block costs one VPCLMULQDQ (the reduction's extra
    multiplies folded into the overhead constant).
    """
    tag = 0
    h = Vec128.from_u64([h_key & (2 ** 64 - 1), 0])
    for off in range(0, len(ciphertext), 16):
        block = ciphertext[off: off + 16].ljust(16, b"\0")
        x = Vec128.from_u64(
            [int.from_bytes(block[:8], "little") ^ (tag & (2 ** 64 - 1)), 0])
        product = recorder.execute(Opcode.VPCLMULQDQ, x, h, imm8=0)
        tag = product.value & (2 ** 128 - 1)
        recorder.retire(_PER_GHASH_OVERHEAD)
    return tag


def tls_record_server(recorder: InstructionRecorder, key: bytes,
                      n_requests: int, response_bytes: int,
                      protocol_instructions: int = 60_000,
                      think_instructions: int = 0,
                      rng: Optional[np.random.Generator] = None,
                      payload: Optional[bytes] = None) -> int:
    """An Nginx-like serving loop, recorded: per request, protocol work
    (scalar), then AES-CTR encryption of the response plus a GHASH tag.

    Returns:
        Total bytes encrypted.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if payload is None:
        payload = bytes(rng.integers(0, 256, size=response_bytes,
                                     dtype=np.uint8))
    total = 0
    for request in range(n_requests):
        recorder.retire(protocol_instructions)
        ciphertext = aes_ctr_encrypt(recorder, key, payload, nonce=request)
        ghash_tag(recorder, h_key=0x42F0E1EBA9EA3693, ciphertext=ciphertext)
        total += len(ciphertext)
        if think_instructions:
            recorder.retire(think_instructions)
    return total


def record_tls_server_trace(n_requests: int = 40,
                            response_bytes: int = 4096,
                            think_instructions: int = 2_000_000,
                            seed: int = 0) -> Tuple[FaultableTrace, int]:
    """Convenience: record a complete TLS-server trace.

    Returns:
        (trace, bytes_encrypted).
    """
    recorder = InstructionRecorder("tls-server-recorded", ipc=1.5)
    total = tls_record_server(
        recorder, key=bytes(range(16)), n_requests=n_requests,
        response_bytes=response_bytes,
        think_instructions=think_instructions,
        rng=np.random.default_rng(seed))
    return recorder.finish(trailing_instructions=100_000), total
