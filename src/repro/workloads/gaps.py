"""Gap and burst primitives for trace synthesis.

The paper's key workload observation (section 5.1, Figs 5 and 7) is that
faultable instructions arrive in *bursts*: dense episodes (e.g. one AES
instruction every few dozen instructions while a buffer is encrypted)
separated by gaps that span many orders of magnitude.  These helpers
generate the two ingredients: heavy-tailed gap sequences and positions of
events inside a dense episode.
"""

from __future__ import annotations

import numpy as np


def lognormal_gaps(rng: np.random.Generator, n: int, median: float,
                   sigma: float) -> np.ndarray:
    """*n* lognormal inter-event gaps (instructions, >= 1).

    Args:
        rng: randomness source.
        n: number of gaps.
        median: median gap in instructions.
        sigma: log-space standard deviation (1.0 spans ~1.5 decades).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if median < 1:
        raise ValueError("median gap must be at least 1 instruction")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    gaps = rng.lognormal(mean=np.log(median), sigma=sigma, size=n)
    return np.maximum(gaps, 1.0).astype(np.int64)


def burst_positions(rng: np.random.Generator, start: int, length: int,
                    mean_gap: float) -> np.ndarray:
    """Event positions of one dense episode.

    Events are laid out from *start* with exponentially distributed gaps
    of the given mean until *length* instructions are covered.

    Returns:
        Sorted int64 instruction indices in ``[start, start + length)``.
    """
    if length <= 0:
        return np.empty(0, dtype=np.int64)
    if mean_gap < 1:
        raise ValueError("mean gap must be at least 1 instruction")
    expected = int(length / mean_gap)
    # Oversample, cumulate, trim: cheaper than a Python loop.
    n_draw = max(8, int(expected * 1.25) + 8)
    gaps = np.maximum(rng.exponential(mean_gap, size=n_draw), 1.0)
    offsets = np.cumsum(gaps)
    offsets = offsets[offsets < length]
    while offsets.size and offsets.size < expected * 0.9:
        extra = np.maximum(rng.exponential(mean_gap, size=n_draw), 1.0)
        more = offsets[-1] + np.cumsum(extra)
        offsets = np.concatenate([offsets, more[more < length]])
        if more[-1] >= length:
            break
    return (start + offsets).astype(np.int64)


def interleave_sparse_events(rng: np.random.Generator, n_events: int,
                             lo: int, hi: int) -> np.ndarray:
    """*n_events* isolated event positions uniform in ``[lo, hi)``."""
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    if n_events == 0 or hi <= lo:
        return np.empty(0, dtype=np.int64)
    return np.sort(rng.integers(lo, hi, size=n_events)).astype(np.int64)
