"""SPECcast-style sampled evaluation (paper section 6.1).

The paper runs SPEC inside gem5 via SPECcast, which simulates only
representative slices of each benchmark.  The same methodology for our
trace simulator: cut systematic windows out of a trace, simulate only
those, and extrapolate — useful when a full trace is expensive (many
millions of events) and for bounding how representative short runs are.

The estimator is duration-weighted: performance and power are intensive
quantities, so the full-run ratios are approximated by the
window-duration-weighted means of the per-window ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.metrics import SimResult
from repro.core.params import StrategyParams, default_params_for
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.hardware.cpu import CpuModel
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace


def sample_windows(trace: FaultableTrace, n_windows: int,
                   coverage: float) -> List[FaultableTrace]:
    """Cut *n_windows* systematic windows covering *coverage* of the trace.

    Windows are evenly spaced (systematic sampling: unbiased for
    periodic-ish structure without random-seed variance).

    Args:
        trace: the full trace.
        n_windows: number of windows.
        coverage: total fraction of the trace simulated (0, 1].
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    if n_windows < 1:
        raise ValueError("need at least one window")
    n = trace.n_instructions
    window_len = int(n * coverage / n_windows)
    if window_len < 1:
        raise ValueError("windows would be empty; raise coverage")
    stride = n // n_windows
    windows = []
    for k in range(n_windows):
        start = k * stride
        stop = min(start + window_len, n)
        if stop > start:
            windows.append(trace.slice_events(start, stop))
    return windows


@dataclass
class SampledEstimate:
    """Extrapolated full-run metrics from window simulations.

    Attributes:
        perf_change / power_change / efficiency_change: estimates.
        occupancy: estimated efficient-curve occupancy.
        coverage: fraction of the trace actually simulated.
        window_results: the per-window simulation results.
    """

    perf_change: float
    power_change: float
    efficiency_change: float
    occupancy: float
    coverage: float
    window_results: List[SimResult]


def evaluate_sampled(cpu: CpuModel, profile: WorkloadProfile,
                     trace: FaultableTrace, strategy_name: str,
                     voltage_offset: float,
                     n_windows: int = 10, coverage: float = 0.1,
                     params: Optional[StrategyParams] = None,
                     seed: int = 0) -> SampledEstimate:
    """Simulate systematic windows of *trace* and extrapolate.

    Each window starts in the efficient steady state (the simulator's
    initial condition), which mirrors SPECcast's checkpoint warmup
    caveat: very short windows under-count in-flight conservative
    phases.
    """
    params = params or default_params_for(cpu.vendor)
    windows = sample_windows(trace, n_windows, coverage)
    results = []
    for i, window in enumerate(windows):
        sim = TraceSimulator(cpu, profile, window,
                             strategy_for(strategy_name, params),
                             voltage_offset, seed=seed + i)
        results.append(sim.run())

    total_base = sum(r.baseline_duration_s for r in results)
    total_dur = sum(r.duration_s for r in results)
    total_energy = sum(r.energy_rel for r in results)
    total_e_time = sum(r.state_time.get("E", 0.0) for r in results)
    duration_ratio = total_dur / total_base
    power_ratio = total_energy / total_dur
    return SampledEstimate(
        perf_change=1.0 / duration_ratio - 1.0,
        power_change=power_ratio - 1.0,
        efficiency_change=1.0 / (duration_ratio * power_ratio) - 1.0,
        occupancy=total_e_time / total_dur,
        coverage=coverage,
        window_results=results,
    )


def sampling_error(estimate: SampledEstimate,
                   full: SimResult) -> Tuple[float, float, float]:
    """Absolute errors (perf, power, efficiency) of an estimate against
    the full-trace result."""
    return (
        abs(estimate.perf_change - full.perf_change),
        abs(estimate.power_change - full.power_change),
        abs(estimate.efficiency_change - full.efficiency_change),
    )
