"""``repro.obs`` — the unified telemetry layer.

One dependency-free subsystem shared by every layer of the
reproduction (see ``docs/observability.md``):

* **Metrics** — a thread-safe registry of labelled counters, gauges and
  bucket histograms (:class:`MetricsRegistry`), with a process-wide
  default (:func:`get_registry`) and a Prometheus text renderer
  (:func:`render_prometheus`).
* **Tracing** — typed span/instant events in a bounded ring buffer
  (:class:`Tracer`), exported as Chrome trace-event JSON (open in
  ``chrome://tracing`` / Perfetto) or JSON lines.  Off by default; the
  installed :class:`NullTracer` makes instrumentation a single boolean
  check (:func:`enable_tracing` turns recording on).
* **Profiling hooks** — :func:`profiled` spans wired into the
  simulator, engine and service hot paths.
* **Logging** — :func:`logging_setup` configures the ``repro`` logger
  hierarchy with an optional JSON formatter.
"""

from repro.obs.logsetup import JsonLogFormatter, logging_setup
from repro.obs.profiling import profiled
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    get_registry,
    latency_bounds,
    set_registry,
)
from repro.obs.tracer import (
    TRACK_SIM,
    TRACK_WALL,
    NullTracer,
    TraceEvent,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramFamily",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "TRACK_SIM",
    "TRACK_WALL",
    "disable_tracing",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "latency_bounds",
    "logging_setup",
    "parse_prometheus",
    "profiled",
    "render_prometheus",
    "set_registry",
    "set_tracer",
    "validate_chrome_trace",
]
