"""``repro.obs`` — the unified telemetry layer.

One dependency-free subsystem shared by every layer of the
reproduction (see ``docs/observability.md``):

* **Metrics** — a thread-safe registry of labelled counters, gauges and
  bucket histograms (:class:`MetricsRegistry`), with a process-wide
  default (:func:`get_registry`) and a Prometheus text renderer
  (:func:`render_prometheus`).
* **Tracing** — typed span/instant events in a bounded ring buffer
  (:class:`Tracer`), exported as Chrome trace-event JSON (open in
  ``chrome://tracing`` / Perfetto) or JSON lines.  Off by default; the
  installed :class:`NullTracer` makes instrumentation a single boolean
  check (:func:`enable_tracing` turns recording on).
* **Profiling hooks** — :func:`profiled` spans wired into the
  simulator, engine and service hot paths.
* **Logging** — :func:`logging_setup` configures the ``repro`` logger
  hierarchy with an optional JSON formatter.
"""

from repro.obs.context import (
    TraceContext,
    assert_span_containment,
    merge_process_traces,
    new_span_id,
    new_trace_id,
    orphan_spans,
    span_index,
    span_tree,
    trace_ids_in,
)
from repro.obs.dashboard import render_obs_dashboard, render_top
from repro.obs.logsetup import JsonLogFormatter, logging_setup
from repro.obs.profiling import profiled
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.registry import (
    OVERFLOW_COUNTER,
    OVERFLOW_LABEL_VALUE,
    Counter,
    Gauge,
    Histogram,
    HistogramFamily,
    HistogramSnapshot,
    MetricsRegistry,
    get_registry,
    latency_bounds,
    set_registry,
)
from repro.obs.slo import (
    SLO,
    Alert,
    BurnRatePolicy,
    FlightRecorder,
    SLOMonitor,
)
from repro.obs.timeseries import (
    MetricsScraper,
    Sample,
    histogram_delta,
    percentile_of,
)
from repro.obs.tracer import (
    TRACK_SIM,
    TRACK_WALL,
    NullTracer,
    TraceEvent,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Alert",
    "BurnRatePolicy",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistogramFamily",
    "HistogramSnapshot",
    "JsonLogFormatter",
    "MetricsRegistry",
    "MetricsScraper",
    "NullTracer",
    "OVERFLOW_COUNTER",
    "OVERFLOW_LABEL_VALUE",
    "SLO",
    "SLOMonitor",
    "Sample",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "TRACK_SIM",
    "TRACK_WALL",
    "assert_span_containment",
    "disable_tracing",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "histogram_delta",
    "latency_bounds",
    "logging_setup",
    "merge_process_traces",
    "new_span_id",
    "new_trace_id",
    "orphan_spans",
    "parse_prometheus",
    "percentile_of",
    "profiled",
    "render_obs_dashboard",
    "render_prometheus",
    "render_top",
    "set_registry",
    "set_tracer",
    "span_index",
    "span_tree",
    "trace_ids_in",
    "validate_chrome_trace",
]
