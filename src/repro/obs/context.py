"""Distributed trace context: one request, one stitched span tree.

A request that crosses the fleet's process boundaries (client →
gateway → node → worker) is stitched back together by two pieces of
shared identity carried in the JSON-lines protocol frames:

* ``trace_id`` — one id per logical request, minted where the request
  first enters a traced tier (normally the gateway) and forwarded
  verbatim through every hop, retry and reroute.
* ``parent_span`` — the span id of the *caller's* span, so each tier's
  span nests under the hop that dispatched it.

Every traced tier records its span as an ordinary
:class:`~repro.obs.tracer.TraceEvent` whose ``args`` carry
``{trace_id, span_id, parent_span, proc}`` (:meth:`TraceContext.args`);
no new event type is needed, and the Chrome/Perfetto export keeps
working unchanged.

The second half of this module is the fleet-merge fix: each process's
:class:`~repro.obs.tracer.Tracer` stamps wall-track timestamps as
"seconds since tracer creation", so naively concatenating the fan-out
answers misaligns every process by its start-time skew.
:func:`merge_process_traces` rebases every event onto the gateway
tracer's wall-clock origin (``origin_unix_s``, recorded at creation)
so the merged Chrome trace is time-aligned across processes.

:func:`span_index` / :func:`span_tree` / :func:`orphan_spans` are the
assertion helpers the tests and the smoke drive: a healthy request —
retried, rerouted, deduped or not — must produce exactly one connected
span tree per trace id, with no orphans.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.tracer import TRACK_WALL, PHASE_COMPLETE

__all__ = [
    "TraceContext",
    "assert_span_containment",
    "merge_process_traces",
    "new_span_id",
    "new_trace_id",
    "orphan_spans",
    "span_index",
    "span_tree",
    "trace_ids_in",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char request identity."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span identity."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """The trace identity one tier works under.

    Attributes:
        trace_id: the request's fleet-wide identity.
        span_id: this tier's own span id (what children parent on).
        parent_span: the caller's span id, or None at the root.
    """

    trace_id: str
    span_id: str
    parent_span: Optional[str] = None

    @classmethod
    def root(cls) -> "TraceContext":
        """A brand-new trace (no caller)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    @classmethod
    def from_request(cls, trace_id: Optional[str],
                     parent_span: Optional[str]) -> "TraceContext":
        """Continue the trace a request carries (or start one).

        The incoming ``parent_span`` becomes this tier's parent; the
        tier always gets its own fresh ``span_id``.
        """
        return cls(trace_id=trace_id or new_trace_id(),
                   span_id=new_span_id(), parent_span=parent_span)

    def child(self) -> "TraceContext":
        """The context a tier hands to whatever it dispatches."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(),
                            parent_span=self.span_id)

    def args(self, proc: Optional[str] = None, **extra) -> dict:
        """Event ``args`` carrying this context (plus *extra* fields).

        ``proc`` names the logical process/tier ("gateway", "node-0",
        "worker:..."); the fleet merge groups merged events into Chrome
        processes by it.
        """
        payload: Dict[str, object] = {"trace_id": self.trace_id,
                                      "span_id": self.span_id}
        if self.parent_span is not None:
            payload["parent_span"] = self.parent_span
        if proc is not None:
            payload["proc"] = proc
        payload.update(extra)
        return payload


# -- fleet merge ---------------------------------------------------------


def merge_process_traces(processes: Sequence[dict],
                         base_origin_unix_s: float) -> dict:
    """Merge per-process Chrome events onto one time-aligned trace.

    Args:
        processes: one entry per fan-out answer:
            ``{"name": str, "origin_unix_s": float, "events": [chrome
            event dicts], "tracer_id": str (optional)}``.  Entries
            sharing a ``tracer_id`` (an in-process fleet, where the
            gateway and its nodes write one global tracer) are merged
            once.
        base_origin_unix_s: the wall-clock origin everything is rebased
            onto — normally the gateway tracer's ``origin_unix_s``.

    Each wall-track event's ``ts`` (microseconds since *its* tracer's
    creation) is shifted by ``(origin - base_origin) * 1e6``, putting
    every process on the base tracer's clock.  Sim-track events are
    simulated time and carry no cross-process meaning, so they are
    left out of the merged view.  Events are regrouped into Chrome
    processes by their ``args.proc`` tier label (falling back to the
    process entry's name), with process-name metadata emitted per
    group.
    """
    merged: List[dict] = []
    pid_of: Dict[str, int] = {}
    seen_tracers: set = set()

    def pid_for(proc: str) -> int:
        pid = pid_of.get(proc)
        if pid is None:
            pid = len(pid_of) + 1
            pid_of[proc] = pid
        return pid

    for process in processes:
        tracer_id = process.get("tracer_id")
        if tracer_id is not None:
            if tracer_id in seen_tracers:
                continue
            seen_tracers.add(tracer_id)
        name = str(process.get("name", "?"))
        origin = float(process.get("origin_unix_s", base_origin_unix_s))
        shift_us = (origin - base_origin_unix_s) * 1e6
        for event in process.get("events", ()):
            if not isinstance(event, dict):
                continue
            if event.get("ph") == "M":
                continue  # per-process metadata is regenerated below
            if event.get("pid") not in (None, TRACK_WALL):
                continue  # sim-time events stay per-process
            out = dict(event)
            out["ts"] = float(event.get("ts", 0.0)) + shift_us
            args = event.get("args") or {}
            proc = args.get("proc") if isinstance(args, dict) else None
            out["pid"] = pid_for(str(proc) if proc else name)
            merged.append(out)

    merged.sort(key=lambda e: (e.get("pid", 0), e.get("ts", 0.0)))
    metadata = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                 "args": {"name": proc}}
                for proc, pid in sorted(pid_of.items(),
                                        key=lambda item: item[1])]
    return {"traceEvents": metadata + merged, "displayTimeUnit": "ms",
            "otherData": {"origin_unix_s": base_origin_unix_s,
                          "n_processes": len(pid_of)}}


# -- span-tree assertions ------------------------------------------------


def _event_args(event: dict) -> dict:
    args = event.get("args")
    return args if isinstance(args, dict) else {}


def trace_ids_in(events: Iterable[dict]) -> List[str]:
    """Every distinct ``trace_id`` carried by *events* (sorted)."""
    ids = {_event_args(event).get("trace_id") for event in events}
    return sorted(i for i in ids if isinstance(i, str))


def span_index(events: Iterable[dict],
               trace_id: Optional[str] = None) -> Dict[str, dict]:
    """``{span_id: event}`` of the complete-phase spans in *events*.

    With *trace_id*, only that trace's spans are indexed.  Instants
    (reroute markers, batch markers) carry context but are not spans;
    they are excluded here and checked separately.
    """
    index: Dict[str, dict] = {}
    for event in events:
        args = _event_args(event)
        span_id = args.get("span_id")
        if event.get("ph") != PHASE_COMPLETE or not span_id:
            continue
        if trace_id is not None and args.get("trace_id") != trace_id:
            continue
        index[str(span_id)] = event
    return index


def span_tree(events: Iterable[dict], trace_id: str) -> dict:
    """One trace's spans as ``{"roots": [...], "children":
    {span_id: [child events]}, "orphans": [...]}``.

    A span is a *root* when it carries no ``parent_span``; an *orphan*
    when its parent span id does not exist in the same trace — the
    broken-propagation signature the chaos test hunts for.
    """
    index = span_index(events, trace_id)
    roots: List[dict] = []
    orphans: List[dict] = []
    children: Dict[str, List[dict]] = {}
    for event in index.values():
        parent = _event_args(event).get("parent_span")
        if parent is None:
            roots.append(event)
        elif str(parent) in index:
            children.setdefault(str(parent), []).append(event)
        else:
            orphans.append(event)
    return {"roots": roots, "children": children, "orphans": orphans}


def orphan_spans(events: Iterable[dict], trace_id: str) -> List[dict]:
    """The spans of *trace_id* whose parent is missing (ideally none)."""
    return span_tree(events, trace_id)["orphans"]


def assert_span_containment(events: Iterable[dict], trace_id: str,
                            slack_us: float = 50_000.0) -> int:
    """Assert every child span nests inside its parent's interval.

    The monotone-containment regression check of the fleet-merge fix:
    on a merged, rebased trace each child's ``[ts, ts+dur]`` must fall
    within its parent's (up to *slack_us* of cross-process clock
    skew).  Returns the number of parent/child pairs checked; raises
    ``AssertionError`` naming the first violating pair.
    """
    tree = span_tree(list(events), trace_id)
    index = span_index(list(events), trace_id)
    checked = 0
    for parent_id, kids in tree["children"].items():
        parent = index[parent_id]
        p_start = float(parent.get("ts", 0.0))
        p_end = p_start + float(parent.get("dur", 0.0))
        for kid in kids:
            k_start = float(kid.get("ts", 0.0))
            k_end = k_start + float(kid.get("dur", 0.0))
            if (k_start < p_start - slack_us
                    or k_end > p_end + slack_us):
                raise AssertionError(
                    f"span {kid.get('name')} [{k_start:.0f}, {k_end:.0f}]us "
                    f"escapes parent {parent.get('name')} "
                    f"[{p_start:.0f}, {p_end:.0f}]us "
                    f"(trace {trace_id}, slack {slack_us:.0f}us)")
            checked += 1
    return checked
