"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

Renders the version-0.0.4 text format a Prometheus server scrapes:
``# HELP`` / ``# TYPE`` headers, one sample line per label series,
histogram families expanded into cumulative ``_bucket`` samples plus
``_sum`` and ``_count``.  Counters get the conventional ``_total``
suffix when their registered name does not already carry it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramFamily,
    MetricsRegistry,
)


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels_text(names: Sequence[str], values: Sequence[str],
                 extra: Sequence[Tuple[str, str]] = ()) -> str:
    """``{k="v",...}`` rendering (empty string when no labels)."""
    pairs = [f'{k}="{_escape(v)}"' for k, v in zip(names, values)]
    pairs.extend(f'{k}="{_escape(v)}"' for k, v in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    """Sample value rendering (integers without a trailing .0)."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "") -> str:
    """Render every metric of *registry* in Prometheus text format.

    Args:
        registry: the registry to expose.
        prefix: prepended to every metric name (e.g. ``"repro_"``).

    Returns:
        The exposition text, terminated by a newline (empty registry
        renders as an empty string).
    """
    lines: List[str] = []
    for metric in registry.collect():
        name = prefix + metric.name
        if isinstance(metric, Counter):
            if not name.endswith("_total"):
                name += "_total"
            lines.append(f"# HELP {name} {metric.help}".rstrip())
            lines.append(f"# TYPE {name} counter")
            for values, count in sorted(metric.series().items()):
                labels = _labels_text(metric.label_names, values)
                lines.append(f"{name}{labels} {_format_value(count)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# HELP {name} {metric.help}".rstrip())
            lines.append(f"# TYPE {name} gauge")
            for values, val in sorted(metric.series().items()):
                labels = _labels_text(metric.label_names, values)
                lines.append(f"{name}{labels} {_format_value(val)}")
        elif isinstance(metric, HistogramFamily):
            lines.append(f"# HELP {name} {metric.help}".rstrip())
            lines.append(f"# TYPE {name} histogram")
            for values, hist in sorted(metric.series().items()):
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    labels = _labels_text(metric.label_names, values,
                                          extra=[("le", repr(float(bound)))])
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _labels_text(metric.label_names, values,
                                      extra=[("le", "+Inf")])
                lines.append(f"{name}_bucket{labels} {hist.n}")
                plain = _labels_text(metric.label_names, values)
                lines.append(f"{name}_sum{plain} {_format_value(hist.total)}")
                lines.append(f"{name}_count{plain} {hist.n}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition *text* back into ``{series: value}``.

    A deliberately small parser for tests and the CLI: comment lines
    are skipped, every sample line must split into a series name (with
    optional ``{...}`` labels) and a float value.  Raises ``ValueError``
    on malformed lines — which is exactly what the "is this output
    Prometheus-parseable" tests want to detect.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "}" in line:
            series, _, rest = line.rpartition("} ")
            series += "}"
            value_text = rest
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: malformed sample {line!r}")
            series, value_text = parts
        try:
            samples[series] = float(value_text)
        except ValueError:
            raise ValueError(f"line {lineno}: bad value in {line!r}")
    return samples
