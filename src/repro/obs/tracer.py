"""Structured tracing: typed span/instant events with bounded recording.

The tracer records the *why* behind SUIT's numbers: every ``#DO`` trap,
emulate-vs-switch decision, p-state change, voltage settle and timer
fire the simulator takes, plus wall-clock spans from the engine and the
service.  Events land in a bounded ring buffer (oldest dropped first,
with a drop counter) and export as

* **Chrome trace-event JSON** (:meth:`Tracer.to_chrome_trace` /
  :meth:`Tracer.export_chrome`) — open the file in ``chrome://tracing``
  or https://ui.perfetto.dev, and
* **JSON lines** (:meth:`Tracer.export_jsonl`) — one event object per
  line for ad-hoc ``jq``/pandas analysis.

Two time domains share one trace as two Chrome "processes": simulated
seconds (:data:`TRACK_SIM`, what the simulator and kernel emit) and
wall-clock seconds since tracer creation (:data:`TRACK_WALL`, what
engine/service spans emit).  Both are exported in microseconds, the
trace-event format's native unit.

Tracing is **off by default and zero-cost when off**: the global tracer
is a :class:`NullTracer` whose ``enabled`` flag is ``False``, and every
instrumentation site guards on that single boolean before building any
event.  :func:`enable_tracing` swaps in a recording tracer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional

#: Chrome "process" ids of the two time domains.
TRACK_SIM = 1
TRACK_WALL = 2

_TRACK_NAMES = {TRACK_SIM: "simulated time", TRACK_WALL: "wall clock"}

#: Event phases used here (a subset of the trace-event format).
PHASE_INSTANT = "i"
PHASE_COMPLETE = "X"
_VALID_PHASES = frozenset({PHASE_INSTANT, PHASE_COMPLETE, "B", "E", "M"})


@dataclass
class TraceEvent:
    """One recorded event.

    Attributes:
        name: event name ("#DO trap", "p-state change", ...).
        cat: category ("sim", "kernel", "engine", "service").
        ph: trace-event phase ("i" instant, "X" complete).
        ts_us: start timestamp in microseconds (domain of ``pid``).
        dur_us: duration in microseconds ("X" events only).
        pid: time-domain track (:data:`TRACK_SIM` / :data:`TRACK_WALL`).
        tid: thread/lane id within the track.
        args: optional JSON-ready payload.
    """

    name: str
    cat: str
    ph: str
    ts_us: float
    dur_us: Optional[float] = None
    pid: int = TRACK_WALL
    tid: int = 0
    args: Optional[dict] = None

    def to_chrome(self) -> dict:
        """The event as a Chrome trace-event object."""
        event: Dict[str, object] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts_us, "pid": self.pid, "tid": self.tid,
        }
        if self.ph == PHASE_COMPLETE:
            event["dur"] = 0.0 if self.dur_us is None else self.dur_us
        if self.ph == PHASE_INSTANT:
            event["s"] = "t"  # thread-scoped instant
        if self.args:
            event["args"] = self.args
        return event


class Tracer:
    """Bounded ring-buffer recorder of :class:`TraceEvent`\\ s.

    Args:
        capacity: ring-buffer size; the oldest events are dropped (and
            counted in :attr:`n_dropped`) once it fills.
    """

    enabled = True

    def __init__(self, capacity: int = 1_000_000) -> None:
        """See class docstring."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        #: Wall-clock time (``time.time()``) at tracer creation.  Every
        #: wall-track timestamp is "seconds since creation", so this is
        #: the shared epoch that lets a fleet merge re-align traces
        #: recorded by different processes (see
        #: :func:`repro.obs.context.merge_process_traces`).
        self.origin_unix_s = time.time()
        #: Unique identity of this tracer instance.  A fleet whose
        #: gateway and nodes run in one process share a single global
        #: tracer; the fan-out merge dedups on this id so shared
        #: buffers are not merged twice.
        self.tracer_id = os.urandom(8).hex()
        self.n_dropped = 0

    def now_s(self) -> float:
        """Wall-clock seconds since tracer creation (the wall track's ts)."""
        return time.perf_counter() - self._epoch

    # -- recording ---------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self.n_dropped += 1
            self._events.append(event)

    def instant(self, name: str, cat: str = "app",
                ts_s: Optional[float] = None, args: Optional[dict] = None,
                track: int = TRACK_WALL, tid: int = 0) -> None:
        """Record a zero-duration event.

        *ts_s* is in seconds of the *track*'s domain; omit it to stamp
        wall-clock seconds since tracer creation.
        """
        if ts_s is None:
            ts_s = time.perf_counter() - self._epoch
        self._record(TraceEvent(name=name, cat=cat, ph=PHASE_INSTANT,
                                ts_us=ts_s * 1e6, pid=track, tid=tid,
                                args=args))

    def complete(self, name: str, cat: str, ts_s: float, dur_s: float,
                 args: Optional[dict] = None, track: int = TRACK_WALL,
                 tid: int = 0) -> None:
        """Record a span with an explicit start and duration (seconds)."""
        self._record(TraceEvent(name=name, cat=cat, ph=PHASE_COMPLETE,
                                ts_us=ts_s * 1e6, dur_us=dur_s * 1e6,
                                pid=track, tid=tid, args=args))

    @contextmanager
    def span(self, name: str, cat: str = "app",
             args: Optional[dict] = None, tid: int = 0) -> Iterator[None]:
        """Context manager recording a wall-clock span around its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            now = time.perf_counter()
            self.complete(name, cat, ts_s=start - self._epoch,
                          dur_s=now - start, args=args, track=TRACK_WALL,
                          tid=tid)

    # -- reading / export --------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Snapshot of the recorded events (recording order)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        """Drop every recorded event and reset the drop counter."""
        with self._lock:
            self._events.clear()
            self.n_dropped = 0

    def to_chrome_trace(self) -> dict:
        """The buffer as a Chrome trace-event JSON object.

        Events are sorted by ``(pid, ts)`` so each track's timeline is
        monotonic; process-name metadata labels the two time domains.
        """
        events = sorted(self.events(), key=lambda e: (e.pid, e.ts_us))
        chrome: List[dict] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
            for pid, label in sorted(_TRACK_NAMES.items())
        ]
        chrome.extend(event.to_chrome() for event in events)
        return {"traceEvents": chrome, "displayTimeUnit": "ms",
                "otherData": {"n_dropped": self.n_dropped,
                              "origin_unix_s": self.origin_unix_s,
                              "tracer_id": self.tracer_id}}

    def export_chrome(self, path) -> Path:
        """Write the Chrome trace JSON to *path*; returns the path."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle)
            handle.write("\n")
        return path

    def export_jsonl(self, path) -> Path:
        """Write one JSON object per event to *path*; returns the path."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(json.dumps(event.to_chrome(), sort_keys=True))
                handle.write("\n")
        return path


class NullTracer(Tracer):
    """The default no-op tracer: records nothing, costs one bool check.

    Instrumentation sites guard on :attr:`enabled`, so with this tracer
    installed no event object is ever built; the overridden methods
    below only protect callers that skip the guard.
    """

    enabled = False

    def __init__(self) -> None:
        """A capacity-1 buffer that is never written."""
        super().__init__(capacity=1)

    def _record(self, event: TraceEvent) -> None:
        pass

    @contextmanager
    def span(self, name: str, cat: str = "app",
             args: Optional[dict] = None, tid: int = 0) -> Iterator[None]:
        """No-op span: no clock reads, no recording."""
        yield


#: The process-wide tracer; NullTracer until :func:`enable_tracing`.
_TRACER: Tracer = NullTracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (a :class:`NullTracer` when disabled)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* process-wide; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable_tracing(capacity: int = 1_000_000) -> Tracer:
    """Install (and return) a recording tracer with *capacity* events."""
    tracer = Tracer(capacity=capacity)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the no-op tracer."""
    set_tracer(NullTracer())


def validate_chrome_trace(trace: dict) -> int:
    """Minimal schema check of a Chrome trace-event object.

    Verifies the ``traceEvents`` array exists and every event carries a
    string ``name``, a known ``ph`` and a numeric ``ts`` (plus a numeric
    ``dur`` for complete events).  Returns the number of non-metadata
    events; raises ``ValueError`` on the first violation.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    n = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"event {i} has no string 'name'")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"event {i} has no numeric 'ts'")
        if ph == PHASE_COMPLETE and not isinstance(event.get("dur"),
                                                   (int, float)):
            raise ValueError(f"event {i} is 'X' without numeric 'dur'")
        n += 1
    return n
