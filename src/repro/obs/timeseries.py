"""Windowed time-series over registry snapshots.

Every metric in :mod:`repro.obs.registry` is cumulative-since-start —
the right primitive for cheap lock-free writes, and the wrong shape
for every operational question ("what is the p95 *now*?", "how many
requests per second *currently*?").  A cold warm-up's slow requests
sit in the cumulative ``latency_s`` histogram forever, which is why
the autoscaler originally could not trust p95-based scaling.

:class:`MetricsScraper` fixes this at read time, the way Prometheus
does: snapshot the registry on a fixed interval into a bounded ring
buffer of :class:`Sample`\\ s, then answer windowed questions by
subtracting samples —

* :meth:`MetricsScraper.delta` / :meth:`MetricsScraper.rate` — counter
  increase (and per-second rate) over the last window;
* :meth:`MetricsScraper.windowed_histogram` /
  :meth:`MetricsScraper.windowed_percentile` — bucket-count deltas of a
  histogram series, i.e. the distribution of *only* the observations
  that landed inside the window;
* :meth:`MetricsScraper.gauge_series` /
  :meth:`MetricsScraper.rate_series` — point lists for sparklines.

The scraper is transport-agnostic: :meth:`scrape` reads an in-process
:class:`~repro.obs.registry.MetricsRegistry`, and :meth:`ingest`
accepts any snapshot dict — what a poller gets back from a remote
node's ``metrics`` verb — so one scraper per fleet node is exactly the
gateway-side wiring (:meth:`repro.fleet.gateway.FleetGateway
.node_signals` keeps one histogram snapshot per node for the same
delta arithmetic).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.testkit.clock import SYSTEM_CLOCK

__all__ = [
    "MetricsScraper",
    "Sample",
    "histogram_delta",
    "percentile_of",
]


@dataclass(frozen=True)
class Sample:
    """One snapshot of a registry, stamped with scrape time.

    Attributes:
        t_s: the scraper clock's ``monotonic()`` at snapshot time.
        counters / gauges / histograms: the snapshot sections
            (histograms in :meth:`~repro.obs.registry.Histogram
            .to_json_dict` form).
    """

    t_s: float
    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, dict]


def histogram_delta(current: Optional[dict],
                    previous: Optional[dict]) -> Optional[dict]:
    """The histogram of observations between two cumulative snapshots.

    Both arguments are histogram JSON dicts (``to_json_dict`` shape);
    returns the same shape with per-bucket count deltas and windowed
    ``n``/``mean``, or None when *current* is missing.  A reset or a
    bucket-layout change (negative delta, mismatched bounds) falls
    back to *current* unchanged — over-reporting beats nonsense.
    """
    if not isinstance(current, dict):
        return None
    if not isinstance(previous, dict):
        return _shape(current)
    cur_buckets = current.get("buckets") or []
    prev_buckets = previous.get("buckets") or []
    if ([b.get("le") for b in cur_buckets]
            != [b.get("le") for b in prev_buckets]):
        return _shape(current)
    deltas = []
    for cur, prev in zip(cur_buckets, prev_buckets):
        diff = int(cur.get("count", 0)) - int(prev.get("count", 0))
        if diff < 0:
            return _shape(current)
        deltas.append({"le": cur.get("le"), "count": diff})
    n = sum(b["count"] for b in deltas)
    cur_n, prev_n = int(current.get("n", 0)), int(previous.get("n", 0))
    cur_mean = current.get("mean") or 0.0
    prev_mean = previous.get("mean") or 0.0
    total = cur_n * cur_mean - prev_n * prev_mean
    out = {"n": n, "mean": (total / n) if n else None,
           "max": current.get("max") if n else None,
           "buckets": deltas}
    for p in (0.50, 0.95, 0.99):
        out[f"p{int(p * 100)}"] = percentile_of(out, p)
    return out


def _shape(hist: dict) -> dict:
    """A defensive copy of *hist* restricted to the delta shape."""
    return {"n": hist.get("n", 0), "mean": hist.get("mean"),
            "max": hist.get("max"),
            "p50": hist.get("p50"), "p95": hist.get("p95"),
            "p99": hist.get("p99"),
            "buckets": [dict(b) for b in hist.get("buckets") or []]}


def percentile_of(hist: Optional[dict], p: float) -> Optional[float]:
    """Percentile of a histogram JSON dict (bucket upper bound, like
    :meth:`~repro.obs.registry.Histogram.percentile`); None when empty.

    The overflow bucket (``le: null``) reports the recorded ``max`` so
    a pathological tail is never under-reported.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if not isinstance(hist, dict):
        return None
    buckets = hist.get("buckets") or []
    n = sum(int(b.get("count", 0)) for b in buckets)
    if n == 0:
        return None
    rank = max(1, int(p * n + 0.5))
    cumulative = 0
    for bucket in buckets:
        cumulative += int(bucket.get("count", 0))
        if cumulative >= rank:
            le = bucket.get("le")
            return float(le) if le is not None else hist.get("max")
    return hist.get("max")


class MetricsScraper:
    """Bounded ring buffer of registry snapshots with windowed reads.

    Args:
        interval_s: the nominal scrape period; :meth:`run_once` and the
            windowed reads use it as the default window granularity.
        capacity: ring-buffer bound — ``capacity * interval_s`` seconds
            of history are retained, older samples fall off.
        clock: time source (tests inject a
            :class:`~repro.testkit.clock.FakeClock`).
    """

    def __init__(self, interval_s: float = 1.0, capacity: int = 600,
                 clock=SYSTEM_CLOCK) -> None:
        """See class docstring."""
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (windows need deltas)")
        self.interval_s = interval_s
        self.capacity = capacity
        self.clock = clock
        self._samples: Deque[Sample] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    # -- feeding -------------------------------------------------------

    def ingest(self, snapshot: dict, t_s: Optional[float] = None) -> Sample:
        """Append one snapshot dict (local or fetched from a remote
        node's ``metrics`` verb); returns the stored :class:`Sample`."""
        sample = Sample(
            t_s=self.clock.monotonic() if t_s is None else float(t_s),
            counters=dict(snapshot.get("counters") or {}),
            gauges=dict(snapshot.get("gauges") or {}),
            histograms={k: dict(v) for k, v in
                        (snapshot.get("histograms") or {}).items()})
        with self._lock:
            self._samples.append(sample)
        return sample

    def scrape(self, registry: MetricsRegistry) -> Sample:
        """Snapshot an in-process registry (one :meth:`ingest`)."""
        return self.ingest(registry.snapshot())

    # -- reading -------------------------------------------------------

    @property
    def samples(self) -> List[Sample]:
        """Every retained sample, oldest first."""
        with self._lock:
            return list(self._samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def _window_pair(self, window_s: Optional[float]
                     ) -> Optional[Tuple[Sample, Sample]]:
        """The newest sample plus the newest one older than the window
        start (or the oldest retained when the window predates
        history); None with fewer than two samples."""
        with self._lock:
            samples = list(self._samples)
        if len(samples) < 2:
            return None
        newest = samples[-1]
        window = self.interval_s if window_s is None else float(window_s)
        cutoff = newest.t_s - window
        base = samples[0]
        for sample in samples[:-1]:
            if sample.t_s <= cutoff:
                base = sample
            else:
                break
        if base is newest:
            base = samples[-2]
        return base, newest

    def delta(self, counter: str,
              window_s: Optional[float] = None) -> Optional[float]:
        """Counter increase over the last window; None without two
        samples.  A reset (decrease) clamps to the newest value."""
        pair = self._window_pair(window_s)
        if pair is None:
            return None
        base, newest = pair
        now = float(newest.counters.get(counter, 0.0))
        then = float(base.counters.get(counter, 0.0))
        return now - then if now >= then else now

    def rate(self, counter: str,
             window_s: Optional[float] = None) -> Optional[float]:
        """Per-second counter rate over the last window."""
        pair = self._window_pair(window_s)
        if pair is None:
            return None
        base, newest = pair
        span = newest.t_s - base.t_s
        if span <= 0:
            return None
        increase = self.delta(counter, window_s)
        return None if increase is None else increase / span

    def windowed_histogram(self, name: str,
                           window_s: Optional[float] = None
                           ) -> Optional[dict]:
        """Bucket-delta histogram of series *name* over the window."""
        pair = self._window_pair(window_s)
        if pair is None:
            return None
        base, newest = pair
        return histogram_delta(newest.histograms.get(name),
                               base.histograms.get(name))

    def windowed_percentile(self, name: str, p: float,
                            window_s: Optional[float] = None
                            ) -> Optional[float]:
        """Percentile of *name* over the window (None when no
        observations landed inside it)."""
        return percentile_of(self.windowed_histogram(name, window_s), p)

    def gauge_series(self, name: str,
                     window_s: Optional[float] = None
                     ) -> List[Tuple[float, float]]:
        """``(t_s, value)`` points of gauge *name* inside the window."""
        samples = self.samples
        if not samples:
            return []
        cutoff = (samples[-1].t_s - float(window_s)
                  if window_s is not None else float("-inf"))
        return [(s.t_s, float(s.gauges[name])) for s in samples
                if s.t_s >= cutoff and name in s.gauges]

    def rate_series(self, counter: str,
                    window_s: Optional[float] = None
                    ) -> List[Tuple[float, float]]:
        """Per-interval ``(t_s, rate)`` points of *counter* — the
        sparkline form of :meth:`rate`."""
        samples = self.samples
        if len(samples) < 2:
            return []
        cutoff = (samples[-1].t_s - float(window_s)
                  if window_s is not None else float("-inf"))
        points: List[Tuple[float, float]] = []
        for prev, cur in zip(samples, samples[1:]):
            if cur.t_s < cutoff:
                continue
            span = cur.t_s - prev.t_s
            if span <= 0:
                continue
            now = float(cur.counters.get(counter, 0.0))
            then = float(prev.counters.get(counter, 0.0))
            increase = now - then if now >= then else now
            points.append((cur.t_s, increase / span))
        return points

    async def run(self, registry: MetricsRegistry) -> None:
        """Scrape *registry* forever on the interval (cancellable)."""
        while True:
            await self.clock.sleep(self.interval_s)
            self.scrape(registry)
