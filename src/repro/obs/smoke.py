"""The observability smoke: one small fleet, every obs claim checked.

``python -m repro obs smoke`` (and ``make obs-smoke``) runs a complete
miniature of the observability story against a real in-process fleet —
gateway + N TCP nodes + thread workers — and asserts the three claims
``docs/observability.md`` makes:

1. **Distributed tracing** — a request forwarded by the gateway yields
   one stitched span tree whose spans live on at least three merged
   process lanes (gateway, node, worker), time-aligned by
   :func:`~repro.obs.context.merge_process_traces` and free of orphan
   spans.
2. **Windowed time-series** — after a slow warm-up burst followed by
   fast traffic, the windowed p95 of ``latency_s`` diverges from (sits
   below) the cumulative histogram's p95, which still remembers the
   warm-up.
3. **SLO burn-rate alerting** — a latency SLO fires while the injected
   slow burst burns both windows, carries flight-recorder exemplar
   trace ids, and resolves once the fast window cools.

The run writes three artefacts into ``out_dir``: the merged Chrome
trace (``fleet_trace.json``), the HTML dashboard (``dashboard.html``,
validated with :mod:`html.parser`) and the machine-readable verdict
(``report.json``).  Everything is stdlib + repro; the fleet is torn
down and the process-wide tracer restored no matter what failed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from html.parser import HTMLParser
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.context import (
    assert_span_containment,
    span_index,
    trace_ids_in,
)
from repro.obs.dashboard import render_obs_dashboard
from repro.obs.slo import SLO, BurnRatePolicy, SLOMonitor
from repro.obs.timeseries import MetricsScraper, percentile_of
from repro.obs.tracer import Tracer, set_tracer

__all__ = ["ObsSmokeConfig", "aggregate_snapshots", "run_obs_smoke"]


@dataclass
class ObsSmokeConfig:
    """Knobs of one observability smoke run.

    Attributes:
        out_dir: where the trace/dashboard/report artefacts land.
        n_nodes: in-process fleet size.
        n_slow / n_fast: request counts of the injected-latency burst
            and each of the two fast bursts.
        slow_sleep_s / fast_sleep_s: per-request worker hold times
            (``__sleep__:`` fault-injection workloads — deterministic
            latency without real simulations).
        latency_threshold_s: the latency SLO's "fast enough" bound;
            must separate the two sleep times.
        objective: the SLO's good fraction (0.95 → slow bursts burn at
            20x, over both default thresholds).
        fast_window_s / slow_window_s: the burn windows, compressed
            from 5m/1h onto the smoke's seconds-long timeline.
        settle_s: wait between the firing and resolving evaluations —
            long enough for the slow burst to leave the fast window.
    """

    out_dir: Path = Path("obs-smoke")
    n_nodes: int = 2
    n_slow: int = 12
    n_fast: int = 19
    slow_sleep_s: float = 0.2
    fast_sleep_s: float = 0.002
    latency_threshold_s: float = 0.05
    objective: float = 0.95
    fast_window_s: float = 0.6
    slow_window_s: float = 30.0
    settle_s: float = 0.7

    @property
    def n_requests(self) -> int:
        """Total requests the smoke drives (slow + two fast bursts)."""
        return self.n_slow + 2 * self.n_fast


#: CPU names cycled through so route keys spread across the fleet.
_CPUS = ("A", "B", "C", "i5")


def _merge_hist(acc: Optional[dict], hist: dict) -> dict:
    """Accumulate one histogram JSON dict into *acc* (bucket-wise)."""
    out = {"n": int(hist.get("n", 0)), "mean": hist.get("mean"),
           "max": hist.get("max"),
           "buckets": [dict(b) for b in hist.get("buckets") or []]}
    if acc is not None and ([b.get("le") for b in acc["buckets"]]
                            == [b.get("le") for b in out["buckets"]]):
        for mine, theirs in zip(out["buckets"], acc["buckets"]):
            mine["count"] = int(mine.get("count", 0)) \
                + int(theirs.get("count", 0))
        total = ((out["mean"] or 0.0) * out["n"]
                 + (acc["mean"] or 0.0) * acc["n"])
        out["n"] += acc["n"]
        out["mean"] = total / out["n"] if out["n"] else None
        out["max"] = max(out.get("max") or 0.0, acc.get("max") or 0.0) \
            if out["n"] else None
    for p in (0.50, 0.95, 0.99):
        out[f"p{int(p * 100)}"] = percentile_of(out, p)
    return out


def aggregate_snapshots(snapshots: List[dict]) -> dict:
    """Sum per-node registry snapshots into one fleet-wide snapshot.

    Counters and gauges add; histograms merge bucket-wise (identical
    bounds — every node uses :func:`~repro.obs.registry.latency_bounds`)
    with recomputed ``mean``/``max``/percentiles.  The result feeds one
    :class:`~repro.obs.timeseries.MetricsScraper`, so fleet-level SLOs
    use the same windowed arithmetic as a single node's.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    hists: Dict[str, dict] = {}
    for snap in snapshots:
        if not isinstance(snap, dict) or "error" in snap:
            continue
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snap.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, hist in (snap.get("histograms") or {}).items():
            hists[name] = _merge_hist(hists.get(name), hist)
    return {"counters": counters, "gauges": gauges, "histograms": hists}


class _DashboardCheck(HTMLParser):
    """Counts the structural tags a valid dashboard must contain."""

    def __init__(self) -> None:
        super().__init__()
        self.tags: Dict[str, int] = {}

    def handle_starttag(self, tag: str, attrs) -> None:
        self.tags[tag] = self.tags.get(tag, 0) + 1


def validate_dashboard_html(text: str) -> Dict[str, int]:
    """Parse dashboard HTML with :mod:`html.parser`; returns the tag
    counts after asserting the structural minimum (a title, at least
    one table, at least one SVG sparkline)."""
    parser = _DashboardCheck()
    parser.feed(text)
    parser.close()
    for required in ("title", "table", "svg"):
        if parser.tags.get(required, 0) < 1:
            raise AssertionError(
                f"dashboard HTML is missing a <{required}> element")
    return parser.tags


def _stitched_traces(events: List[dict], min_lanes: int = 3) -> List[dict]:
    """Traces whose spans cover >= *min_lanes* merged process lanes."""
    stitched = []
    for trace_id in trace_ids_in(events):
        spans = span_index(events, trace_id)
        if not spans:
            continue
        lanes = {event.get("pid") for event in spans.values()}
        if len(lanes) >= min_lanes:
            stitched.append({"trace_id": trace_id, "n_spans": len(spans),
                             "n_lanes": len(lanes)})
    return stitched


async def _drive(gateway, requests) -> List:
    return list(await asyncio.gather(
        *(gateway.submit(request) for request in requests)))


async def _run(cfg: ObsSmokeConfig) -> dict:
    from repro.fleet.gateway import FleetGateway, GatewayConfig
    from repro.fleet.node import NodeConfig, NodeSupervisor
    from repro.obs.context import orphan_spans
    from repro.service.request import SimRequest

    out_dir = Path(cfg.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    tracer = Tracer()
    previous = set_tracer(tracer)
    supervisor = NodeSupervisor(NodeConfig(in_process=True,
                                           use_processes=False))
    gateway = FleetGateway(GatewayConfig(health_interval_s=0.05))
    scrapers: Dict[str, MetricsScraper] = {
        "fleet": MetricsScraper(interval_s=0.05)}
    monitor = SLOMonitor(
        scrapers["fleet"],
        slos=[SLO(name="latency-p95", objective=cfg.objective,
                  latency_threshold_s=cfg.latency_threshold_s,
                  description=f"{cfg.objective:.0%} of requests within "
                              f"{cfg.latency_threshold_s * 1e3:.0f}ms")],
        policy=BurnRatePolicy(fast_window_s=cfg.fast_window_s,
                              slow_window_s=cfg.slow_window_s),
        flight=gateway.flight)

    async def scrape() -> None:
        answer = await gateway.metrics()
        node_snaps = []
        for name, snap in sorted((answer.get("nodes") or {}).items()):
            if isinstance(snap, dict) and "error" not in snap:
                node_snaps.append(snap)
                scrapers.setdefault(
                    name, MetricsScraper(interval_s=0.05)).ingest(snap)
        scrapers["fleet"].ingest(aggregate_snapshots(node_snaps))

    def burst(n: int, sleep_s: float, tag: int) -> List[SimRequest]:
        return [SimRequest(cpu=_CPUS[i % len(_CPUS)],
                           workload=f"__sleep__:{sleep_s}",
                           seed=tag * 1000 + i)
                for i in range(n)]

    report: dict = {"config": {
        "n_nodes": cfg.n_nodes, "n_requests": cfg.n_requests,
        "slow_sleep_s": cfg.slow_sleep_s, "fast_sleep_s": cfg.fast_sleep_s,
        "latency_threshold_s": cfg.latency_threshold_s,
        "objective": cfg.objective}}
    checks: Dict[str, bool] = {}
    try:
        for _ in range(cfg.n_nodes):
            handle = await supervisor.spawn()
            gateway.add_node(handle.name, handle.host, handle.port)
        await gateway.start()
        await scrape()  # the delta baseline

        # Phase 1: injected latency — every request over the threshold.
        slow = await _drive(gateway, burst(cfg.n_slow, cfg.slow_sleep_s, 1))
        await scrape()
        fired = monitor.evaluate()
        checks["alert_fired"] = any(a.firing for a in fired)
        checks["alert_has_exemplars"] = any(a.exemplar_trace_ids
                                            for a in fired)

        # Phase 2: healthy traffic; wait the slow burst out of the fast
        # window, then prove the alert resolves on fresh evidence.
        fast1 = await _drive(gateway, burst(cfg.n_fast, cfg.fast_sleep_s, 2))
        await scrape()
        await asyncio.sleep(cfg.settle_s)
        fast2 = await _drive(gateway, burst(cfg.n_fast, cfg.fast_sleep_s, 3))
        await scrape()
        resolved = monitor.evaluate()
        checks["alert_resolved"] = (any(not a.firing for a in resolved)
                                    and not monitor.firing)
        checks["all_requests_ok"] = all(
            r.status == "ok" for r in slow + fast1 + fast2)

        # Windowed-vs-cumulative divergence: the cumulative histogram
        # still remembers the slow burst; the window has forgotten it.
        fleet = scrapers["fleet"]
        windowed_p95 = fleet.windowed_percentile("latency_s", 0.95,
                                                 cfg.fast_window_s)
        newest = fleet.samples[-1]
        cumulative_p95 = (newest.histograms.get("latency_s") or {}).get("p95")
        report["windowed_p95_s"] = windowed_p95
        report["cumulative_p95_s"] = cumulative_p95
        checks["windowed_p95_present"] = windowed_p95 is not None
        checks["windowed_below_cumulative"] = (
            windowed_p95 is not None and cumulative_p95 is not None
            and windowed_p95 < cumulative_p95)

        # The merged, time-aligned fleet trace.
        trace = await gateway.trace()
        merged = trace["merged"]
        trace_path = out_dir / "fleet_trace.json"
        trace_path.write_text(json.dumps(merged), encoding="utf-8")
        events = merged["traceEvents"]
        stitched = _stitched_traces(events)
        checks["stitched_trace"] = bool(stitched)
        checks["no_orphan_spans"] = all(
            not orphan_spans(events, t) for t in trace_ids_in(events))
        contained = 0
        for entry in stitched:
            contained += assert_span_containment(events, entry["trace_id"])
        checks["span_containment"] = contained > 0
        report["stitched_traces"] = stitched[:8]
        report["n_stitched_traces"] = len(stitched)
        report["n_process_lanes"] = merged["otherData"]["n_processes"]
        report["trace_path"] = str(trace_path)

        # The dashboard, validated structurally.
        page = render_obs_dashboard(
            scrapers, monitor=monitor, flight=trace.get("flight"),
            trace_summary={"n_processes": report["n_process_lanes"],
                           "n_stitched_traces": len(stitched),
                           "path": trace_path},
            title="repro obs smoke", window_s=cfg.fast_window_s)
        dashboard_path = out_dir / "dashboard.html"
        dashboard_path.write_text(page, encoding="utf-8")
        validate_dashboard_html(page)
        checks["dashboard_valid"] = True
        report["dashboard_path"] = str(dashboard_path)
    finally:
        await gateway.close()
        await supervisor.stop_all(drain=True)
        set_tracer(previous)

    report["alerts"] = [a.to_json_dict() for a in monitor.alerts]
    report["checks"] = checks
    report["passed"] = bool(checks) and all(checks.values())
    (out_dir / "report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8")
    return report


def run_obs_smoke(config: Optional[ObsSmokeConfig] = None) -> dict:
    """Run the observability smoke synchronously; returns the report."""
    return asyncio.run(_run(config or ObsSmokeConfig()))
