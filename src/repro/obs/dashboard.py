"""The live-observability views: terminal ``top`` and HTML dashboard.

Both views render the same inputs — one or more
:class:`~repro.obs.timeseries.MetricsScraper`\\ s (one per scrape
target: a single service, or gateway + every node), an optional
:class:`~repro.obs.slo.SLOMonitor` and the flight-recorder/trace
summaries — and both are stdlib-only, in the ``campaigns``
:class:`~repro.campaigns.report.ReportBuilder` tradition: no server,
no JavaScript, no external assets.  The HTML page is inline CSS plus
inline-SVG sparklines, so ``python -m repro obs dashboard`` writes one
self-contained file that renders from ``file://`` and archives next to
the trace JSON it links to.

``render_top`` is the text form ``python -m repro obs top`` reprints
on its poll interval (with ANSI home-and-clear when the terminal
supports it — no curses dependency, so it also works piped to a file).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.slo import SLOMonitor
from repro.obs.timeseries import MetricsScraper

__all__ = ["render_obs_dashboard", "render_top", "sparkline_svg"]

#: Okabe-Ito picks shared with the campaign reports.
SPARK_COLOR = "#0072B2"
FIRING_COLOR = "#D55E00"
OK_COLOR = "#009E73"

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 68rem; color: #1a1a1a; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left; }
th { background: #f4f4f4; }
tr.firing td { background: #fdeee6; }
tr.resolved td { background: #eaf6f0; }
.meta { color: #555; font-size: 13px; }
code { background: #f4f4f4; padding: 1px 4px; border-radius: 3px; }
svg { background: #fcfcfc; border: 1px solid #eee;
      vertical-align: middle; }
.badge { display: inline-block; padding: 0 6px; border-radius: 3px;
         color: #fff; font-size: 12px; }
.badge.firing { background: #D55E00; } .badge.ok { background: #009E73; }
""".strip()


def _fmt(value, digits: int = 4) -> str:
    """Numeric cell text; em-dash for missing values."""
    if value is None:
        return "—"
    return f"{value:.{digits}g}"


def sparkline_svg(points: Sequence[float], width: int = 220,
                  height: int = 36, color: str = SPARK_COLOR,
                  title: str = "") -> str:
    """An inline-SVG sparkline of *points* (empty series render flat)."""
    values = [float(v) for v in points]
    parts = [
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg">']
    if title:
        parts.append(f"<title>{html.escape(title)}</title>")
    if values:
        lo, hi = min(values), max(values)
        span = (hi - lo) or 1.0
        pad = 3.0
        step = (width - 2 * pad) / max(1, len(values) - 1)
        coords = []
        for i, value in enumerate(values):
            x = pad + i * step
            y = height - pad - (height - 2 * pad) * (value - lo) / span
            coords.append(f"{x:.1f},{y:.1f}")
        if len(coords) == 1:
            y = coords[0].split(",")[1]
            coords.append(f"{width - pad:.1f},{y}")
        parts.append(
            f'<polyline points="{" ".join(coords)}" fill="none" '
            f'stroke="{color}" stroke-width="1.5" />')
        parts.append(
            f'<text x="{width - 4}" y="12" text-anchor="end" '
            f'font-size="10" fill="#555">{html.escape(_fmt(values[-1]))}'
            '</text>')
    parts.append("</svg>")
    return "".join(parts)


def _target_stats(scraper: MetricsScraper, window_s: float) -> dict:
    """The headline numbers of one scrape target."""
    newest = scraper.samples[-1] if len(scraper) else None
    cumulative = None
    if newest is not None:
        cumulative = (newest.histograms.get("latency_s") or {}).get("p95")
    return {
        "rps": scraper.rate("requests_submitted", window_s),
        "completed": scraper.delta("requests_completed", window_s),
        "failed": scraper.delta("requests_failed", window_s),
        "queue_depth": (newest.gauges.get("queue_depth")
                        if newest else None),
        "windowed_p95_s": scraper.windowed_percentile(
            "latency_s", 0.95, window_s),
        "cumulative_p95_s": cumulative,
        "rps_series": [v for _, v in
                       scraper.rate_series("requests_submitted")],
        "queue_series": [v for _, v in scraper.gauge_series("queue_depth")],
    }


# -- the text view -------------------------------------------------------


def render_top(scrapers: Dict[str, MetricsScraper],
               monitor: Optional[SLOMonitor] = None,
               window_s: float = 60.0) -> str:
    """The ``obs top`` screen as plain text (one frame)."""
    lines: List[str] = []
    header = (f"{'target':<12} {'rps':>8} {'done':>7} {'fail':>6} "
              f"{'queue':>6} {'win p95':>9} {'cum p95':>9}")
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(scrapers):
        stats = _target_stats(scrapers[name], window_s)
        lines.append(
            f"{name:<12} {_fmt(stats['rps'], 3):>8} "
            f"{_fmt(stats['completed'], 3):>7} "
            f"{_fmt(stats['failed'], 3):>6} "
            f"{_fmt(stats['queue_depth'], 3):>6} "
            f"{_fmt(stats['windowed_p95_s'], 3):>9} "
            f"{_fmt(stats['cumulative_p95_s'], 3):>9}")
    if monitor is not None:
        lines.append("")
        state = monitor.state()
        for slo in state["slos"]:
            flag = "FIRING" if slo["firing"] else "ok"
            lines.append(
                f"slo {slo['name']:<24} [{flag:^6}] "
                f"fast burn {_fmt(slo['fast_burn'], 3)}  "
                f"slow burn {_fmt(slo['slow_burn'], 3)}")
    return "\n".join(lines)


# -- the HTML view -------------------------------------------------------


def render_obs_dashboard(scrapers: Dict[str, MetricsScraper],
                         monitor: Optional[SLOMonitor] = None,
                         flight: Optional[dict] = None,
                         trace_summary: Optional[dict] = None,
                         title: str = "repro observability",
                         window_s: float = 60.0) -> str:
    """The self-contained HTML dashboard (see module docstring).

    Args:
        scrapers: one scraper per target, keyed by display name.
        monitor: optional SLO monitor whose state becomes the SLO and
            alert tables.
        flight: optional flight-recorder dict
            (:meth:`~repro.obs.slo.FlightRecorder.to_json_dict`).
        trace_summary: optional dict describing the merged trace
            (``n_processes``, ``n_stitched_traces``, ``path``).
        title: page title.
        window_s: the window behind every rate/percentile column.
    """
    parts: List[str] = [
        "<!DOCTYPE html>", '<html lang="en">', "<head>",
        '<meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style>", "</head>", "<body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="meta">windowed over the last {window_s:g}s; '
        "cumulative columns shown for contrast — during a cold warm-up "
        "the two diverge, and only the windowed one recovers.</p>",
    ]

    parts.append("<h2>Targets</h2>")
    parts.append("<table><tr><th>target</th><th>req/s</th>"
                 "<th>completed</th><th>failed</th><th>queue</th>"
                 "<th>windowed p95 (s)</th><th>cumulative p95 (s)</th>"
                 "<th>req/s trend</th><th>queue trend</th></tr>")
    for name in sorted(scrapers):
        stats = _target_stats(scrapers[name], window_s)
        parts.append(
            "<tr>"
            f"<td><code>{html.escape(name)}</code></td>"
            f"<td>{_fmt(stats['rps'])}</td>"
            f"<td>{_fmt(stats['completed'])}</td>"
            f"<td>{_fmt(stats['failed'])}</td>"
            f"<td>{_fmt(stats['queue_depth'])}</td>"
            f"<td>{_fmt(stats['windowed_p95_s'])}</td>"
            f"<td>{_fmt(stats['cumulative_p95_s'])}</td>"
            f"<td>{sparkline_svg(stats['rps_series'], title=f'{name} req/s')}"
            "</td>"
            f"<td>{sparkline_svg(stats['queue_series'], color=OK_COLOR, title=f'{name} queue depth')}</td>"
            "</tr>")
    parts.append("</table>")

    if monitor is not None:
        state = monitor.state()
        parts.append("<h2>SLOs</h2>")
        parts.append(
            '<p class="meta">burn = error rate / error budget; an SLO '
            f"fires when the fast {state['policy']['fast_window_s']:g}s "
            f"window burns over "
            f"{state['policy']['fast_burn_threshold']:g}&times; and the "
            f"slow {state['policy']['slow_window_s']:g}s window over "
            f"{state['policy']['slow_burn_threshold']:g}&times;.</p>")
        parts.append("<table><tr><th>slo</th><th>kind</th>"
                     "<th>objective</th><th>fast burn</th>"
                     "<th>slow burn</th><th>state</th></tr>")
        for slo in state["slos"]:
            badge = ('<span class="badge firing">FIRING</span>'
                     if slo["firing"] else '<span class="badge ok">ok</span>')
            parts.append(
                f'<tr class="{"firing" if slo["firing"] else ""}">'
                f"<td><code>{html.escape(slo['name'])}</code></td>"
                f"<td>{html.escape(slo['kind'])}</td>"
                f"<td>{slo['objective']:g}</td>"
                f"<td>{_fmt(slo['fast_burn'])}</td>"
                f"<td>{_fmt(slo['slow_burn'])}</td>"
                f"<td>{badge}</td></tr>")
        parts.append("</table>")
        if state["alerts"]:
            parts.append("<h2>Alert history</h2>")
            parts.append("<table><tr><th>slo</th><th>fired at (s)</th>"
                         "<th>resolved at (s)</th><th>peak fast burn</th>"
                         "<th>exemplar traces</th></tr>")
            for alert in state["alerts"]:
                cls = "firing" if alert["firing"] else "resolved"
                exemplars = ", ".join(
                    f"<code>{html.escape(t)}</code>"
                    for t in alert["exemplar_trace_ids"]) or "—"
                parts.append(
                    f'<tr class="{cls}">'
                    f"<td><code>{html.escape(alert['slo'])}</code></td>"
                    f"<td>{_fmt(alert['fired_at_s'])}</td>"
                    f"<td>{_fmt(alert['resolved_at_s'])}</td>"
                    f"<td>{_fmt(alert['fast_burn'])}</td>"
                    f"<td>{exemplars}</td></tr>")
            parts.append("</table>")

    if flight:
        parts.append("<h2>Flight recorder</h2>")
        parts.append('<p class="meta">the slowest and failed requests '
                     "retained with their trace ids — look these up in "
                     "the exported Chrome trace.</p>")
        parts.append("<table><tr><th>trace id</th><th>status</th>"
                     "<th>latency (s)</th></tr>")
        rows = (flight.get("failures") or []) + (flight.get("slowest") or [])
        seen = set()
        for entry in rows:
            trace_id = entry.get("trace_id", "")
            if trace_id in seen:
                continue
            seen.add(trace_id)
            parts.append(
                "<tr>"
                f"<td><code>{html.escape(str(trace_id))}</code></td>"
                f"<td>{html.escape(str(entry.get('status', '?')))}</td>"
                f"<td>{_fmt(entry.get('latency_s'))}</td></tr>")
        parts.append("</table>")

    if trace_summary:
        parts.append("<h2>Distributed traces</h2>")
        detail = []
        if trace_summary.get("n_processes") is not None:
            detail.append(f"{trace_summary['n_processes']} merged "
                          "process lanes")
        if trace_summary.get("n_stitched_traces") is not None:
            detail.append(f"{trace_summary['n_stitched_traces']} stitched "
                          "multi-process traces")
        if trace_summary.get("path"):
            detail.append("exported to "
                          f"<code>{html.escape(str(trace_summary['path']))}"
                          "</code>")
        parts.append(f'<p class="meta">{"; ".join(detail)}.</p>')

    parts.append("</body></html>")
    return "\n".join(parts)
