"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLO` states an objective over a window of traffic:

* **availability** — at least ``objective`` of finished requests end
  ``ok`` (errors = failed + timed out);
* **latency** — at least ``objective`` of requests finish within
  ``latency_threshold_s`` (measured against the windowed ``latency_s``
  histogram, threshold snapped to a bucket bound).

The alerting math is the standard SRE burn rate: with error budget
``1 - objective``,

    ``burn = error_rate / (1 - objective)``

so burn 1.0 spends the budget exactly at the objective's horizon, and
burn 14.4 on a 99.9% monthly SLO exhausts it in ~2 days.  One window
alone is a bad alert: a short window pages on noise, a long one pages
an hour late.  :class:`SLOMonitor` therefore evaluates **two** windows
per SLO — a fast one (default 5m) that must burn hot *and* a slow one
(default 1h) that confirms the burn is sustained — and fires only when
both exceed their thresholds; the alert resolves once the fast window
cools.  Both window lengths are injectable, so tests (and the smoke)
compress hours into milliseconds on a fake clock.

Every state change lands in the alert history
(:attr:`SLOMonitor.alerts`), with exemplar trace ids attached from the
:class:`FlightRecorder` — the bounded keeper of the slowest and failed
requests, which the dashboard links straight to their span trees.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.timeseries import MetricsScraper
from repro.testkit.clock import SYSTEM_CLOCK

__all__ = [
    "Alert",
    "BurnRatePolicy",
    "FlightRecorder",
    "SLO",
    "SLOMonitor",
]

#: Counter names the availability arithmetic reads (the service's own).
GOOD_COUNTER = "requests_completed"
BAD_COUNTERS = ("requests_failed", "requests_timed_out")


@dataclass(frozen=True)
class SLO:
    """One service-level objective.

    Attributes:
        name: identity in alerts and dashboards.
        objective: target good fraction in (0, 1), e.g. 0.95.
        latency_threshold_s: when set, this is a latency SLO —
            "objective of requests within threshold"; when None, an
            availability SLO over the ok/failed/timed-out counters.
        metric: the histogram series a latency SLO reads.
        description: one line for dashboards.
    """

    name: str
    objective: float
    latency_threshold_s: Optional[float] = None
    metric: str = "latency_s"
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if (self.latency_threshold_s is not None
                and self.latency_threshold_s <= 0):
            raise ValueError("latency_threshold_s must be positive")

    @property
    def budget(self) -> float:
        """The error budget, ``1 - objective``."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRatePolicy:
    """The two-window alerting policy of one :class:`SLOMonitor`.

    Defaults follow the classic multiwindow page: fast 5 minutes at
    burn 14.4, slow 1 hour at burn 6.  Tests shrink the windows onto a
    fake clock; the math is window-length agnostic.
    """

    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    fast_burn_threshold: float = 14.4
    slow_burn_threshold: float = 6.0


@dataclass
class Alert:
    """One firing (or resolved) burn-rate alert."""

    slo: str
    fired_at_s: float
    fast_burn: float
    slow_burn: float
    resolved_at_s: Optional[float] = None
    exemplar_trace_ids: List[str] = field(default_factory=list)

    @property
    def firing(self) -> bool:
        """True while the alert has not resolved."""
        return self.resolved_at_s is None

    def to_json_dict(self) -> dict:
        """JSON form (dashboard, smoke report)."""
        return {"slo": self.slo, "firing": self.firing,
                "fired_at_s": round(self.fired_at_s, 3),
                "resolved_at_s": (None if self.resolved_at_s is None
                                  else round(self.resolved_at_s, 3)),
                "fast_burn": round(self.fast_burn, 3),
                "slow_burn": round(self.slow_burn, 3),
                "exemplar_trace_ids": list(self.exemplar_trace_ids)}


class FlightRecorder:
    """Bounded keeper of the most interesting requests' identities.

    Retains the *n* slowest and the *n* most recent failed requests
    (trace id, latency, status), thread-safe.  These are the exemplars
    an alert or a dashboard links back to full span trees — the
    "show me the request that did this" affordance.

    Args:
        n_slowest: slowest-requests bound (a min-heap; faster entries
            are evicted once full).
        n_failures: recent-failures ring bound.
    """

    def __init__(self, n_slowest: int = 16, n_failures: int = 16) -> None:
        """See class docstring."""
        if n_slowest < 1 or n_failures < 1:
            raise ValueError("bounds must be >= 1")
        self.n_slowest = n_slowest
        self.n_failures = n_failures
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._slowest: List[tuple] = []  # (latency, seq, record) min-heap
        self._failures: List[dict] = []

    def record(self, trace_id: Optional[str], latency_s: float,
               status: str, **detail) -> None:
        """Note one finished request (no-op without a trace id)."""
        if not trace_id:
            return
        entry = {"trace_id": str(trace_id),
                 "latency_s": float(latency_s), "status": str(status)}
        entry.update(detail)
        with self._lock:
            item = (float(latency_s), next(self._seq), entry)
            if len(self._slowest) < self.n_slowest:
                heapq.heappush(self._slowest, item)
            elif item > self._slowest[0]:
                heapq.heapreplace(self._slowest, item)
            if status != "ok":
                self._failures.append(entry)
                if len(self._failures) > self.n_failures:
                    del self._failures[0]

    def slowest(self) -> List[dict]:
        """The retained slowest requests, slowest first."""
        with self._lock:
            items = sorted(self._slowest, reverse=True)
        return [entry for _, _, entry in items]

    def failures(self) -> List[dict]:
        """The retained failed requests, most recent first."""
        with self._lock:
            return list(reversed(self._failures))

    def exemplars(self, n: int = 3) -> List[str]:
        """Up to *n* trace ids worth linking from an alert: recent
        failures first, then the slowest successes."""
        ids: List[str] = []
        for entry in self.failures() + self.slowest():
            if entry["trace_id"] not in ids:
                ids.append(entry["trace_id"])
            if len(ids) >= n:
                break
        return ids

    def to_json_dict(self) -> dict:
        """JSON form (the ``trace`` verb's ``flight`` section)."""
        return {"slowest": self.slowest(), "failures": self.failures()}


class SLOMonitor:
    """Evaluates SLO burn rates against a scraper's windows.

    Args:
        scraper: the :class:`~repro.obs.timeseries.MetricsScraper`
            holding the sampled history.
        slos: the objectives to watch.
        policy: the two-window burn thresholds.
        flight: optional recorder whose exemplars firing alerts copy.
        clock: time source for alert timestamps.
    """

    def __init__(self, scraper: MetricsScraper, slos: List[SLO],
                 policy: Optional[BurnRatePolicy] = None,
                 flight: Optional[FlightRecorder] = None,
                 clock=SYSTEM_CLOCK) -> None:
        """See class docstring."""
        self.scraper = scraper
        self.slos = list(slos)
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise ValueError("SLO names must be unique")
        self.policy = policy or BurnRatePolicy()
        self.flight = flight
        self.clock = clock
        self.alerts: List[Alert] = []
        self._firing: Dict[str, Alert] = {}

    # -- burn arithmetic ----------------------------------------------

    def error_rate(self, slo: SLO, window_s: float) -> Optional[float]:
        """The fraction of the window's traffic that violated *slo*
        (None when the window saw no traffic)."""
        if slo.latency_threshold_s is None:
            bad = 0.0
            for name in BAD_COUNTERS:
                bad += self.scraper.delta(name, window_s) or 0.0
            good = self.scraper.delta(GOOD_COUNTER, window_s) or 0.0
            total = good + bad
            return bad / total if total > 0 else None
        hist = self.scraper.windowed_histogram(slo.metric, window_s)
        if not hist:
            return None
        total = 0
        fast_enough = 0
        for bucket in hist.get("buckets") or []:
            count = int(bucket.get("count", 0))
            total += count
            le = bucket.get("le")
            if le is not None and float(le) <= slo.latency_threshold_s:
                fast_enough += count
        if total == 0:
            return None
        return 1.0 - fast_enough / total

    def burn_rate(self, slo: SLO, window_s: float) -> Optional[float]:
        """``error_rate / budget`` over *window_s* (None: no traffic)."""
        rate = self.error_rate(slo, window_s)
        return None if rate is None else rate / slo.budget

    # -- the evaluation step ------------------------------------------

    def evaluate(self) -> List[Alert]:
        """One evaluation pass; returns alerts that changed state.

        An SLO fires when the fast **and** slow windows both exceed
        their burn thresholds; it resolves when the fast window drops
        back under.  Windows without traffic keep the previous state —
        silence is not evidence of health or of burn.
        """
        policy = self.policy
        changed: List[Alert] = []
        now = self.clock.monotonic()
        for slo in self.slos:
            fast = self.burn_rate(slo, policy.fast_window_s)
            slow = self.burn_rate(slo, policy.slow_window_s)
            current = self._firing.get(slo.name)
            if current is None:
                if (fast is not None and slow is not None
                        and fast > policy.fast_burn_threshold
                        and slow > policy.slow_burn_threshold):
                    alert = Alert(
                        slo=slo.name, fired_at_s=now,
                        fast_burn=fast, slow_burn=slow,
                        exemplar_trace_ids=(self.flight.exemplars()
                                            if self.flight else []))
                    self._firing[slo.name] = alert
                    self.alerts.append(alert)
                    changed.append(alert)
            else:
                current.fast_burn = max(current.fast_burn, fast or 0.0)
                if (fast is not None
                        and fast <= policy.fast_burn_threshold):
                    current.resolved_at_s = now
                    del self._firing[slo.name]
                    changed.append(current)
        return changed

    @property
    def firing(self) -> List[Alert]:
        """The currently firing alerts."""
        return list(self._firing.values())

    def state(self) -> dict:
        """Dashboard form: per-SLO burns plus the alert history."""
        policy = self.policy
        slos = []
        for slo in self.slos:
            fast = self.burn_rate(slo, policy.fast_window_s)
            slow = self.burn_rate(slo, policy.slow_window_s)
            slos.append({
                "name": slo.name,
                "objective": slo.objective,
                "kind": ("latency" if slo.latency_threshold_s is not None
                         else "availability"),
                "latency_threshold_s": slo.latency_threshold_s,
                "description": slo.description,
                "fast_burn": fast, "slow_burn": slow,
                "firing": slo.name in self._firing,
            })
        return {"slos": slos,
                "policy": {
                    "fast_window_s": policy.fast_window_s,
                    "slow_window_s": policy.slow_window_s,
                    "fast_burn_threshold": policy.fast_burn_threshold,
                    "slow_burn_threshold": policy.slow_burn_threshold},
                "alerts": [a.to_json_dict() for a in self.alerts]}
