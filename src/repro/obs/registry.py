"""The thread-safe metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric of one component.  The
process-wide default registry (:func:`get_registry`) is what the
library's built-in instrumentation writes to; components that need
isolation (one registry per service instance, per test) construct and
inject their own.

All three metric kinds support labels::

    registry = MetricsRegistry()
    traps = registry.counter("do_traps_total", "SUIT #DO traps",
                             label_names=("cpu",))
    traps.inc(cpu="C")
    traps.value(cpu="C")        # -> 1

Metric creation is get-or-create and idempotent: asking twice for the
same name returns the same object, asking for the same name with a
different kind or label set raises ``ValueError``.  Everything is
guarded by per-metric locks, so executor callbacks, the asyncio loop
and worker threads may all write concurrently.

The bucket :class:`Histogram` keeps the semantics the service has
always used (fixed ascending bounds, one implicit overflow bucket,
percentiles read as the holding bucket's upper bound); it moved here
from ``repro.service.metrics``, which now re-exports it.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Label-value tuple of an unlabelled metric's single series.
_NO_LABELS: Tuple[str, ...] = ()

#: Label value every series beyond a family's cardinality bound
#: collapses onto (see :class:`MetricsRegistry`).
OVERFLOW_LABEL_VALUE = "__overflow__"

#: Name of the registry counter that records collapsed writes.
OVERFLOW_COUNTER = "metrics_label_overflow_total"


def latency_bounds(lo: float = 1e-4, hi: float = 120.0) -> List[float]:
    """Geometric bucket bounds from *lo* to at least *hi* seconds."""
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * 2.0)
    return bounds


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable point-in-time copy of one :class:`Histogram`.

    Taken with :meth:`Histogram.snapshot`; two snapshots of the same
    histogram subtract into a *windowed* histogram via
    :meth:`Histogram.window` — the observations recorded between them.
    """

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    n: int
    total: float
    max_seen: float


class Histogram:
    """Fixed-bucket histogram with approximate percentiles.

    Args:
        bounds: ascending bucket upper bounds; one implicit overflow
            bucket catches everything above the last bound.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        """See class docstring."""
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be non-empty and ascending")
        self.bounds: List[float] = [float(b) for b in bounds]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.n = 0
        self.total = 0.0
        self.max_seen = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.n += 1
            self.total += value
            if value > self.max_seen:
                self.max_seen = value

    def percentile(self, p: float) -> Optional[float]:
        """Upper bound of the bucket holding rank ``p`` (0..1); None when empty.

        The overflow bucket reports the largest value seen, so a
        pathological tail is never under-reported.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.n == 0:
            return None
        rank = max(1, int(p * self.n + 0.5))
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max_seen
        return self.max_seen

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observations; None when empty."""
        return self.total / self.n if self.n else None

    def snapshot(self) -> HistogramSnapshot:
        """An immutable copy of the current state (see
        :class:`HistogramSnapshot`)."""
        with self._lock:
            return HistogramSnapshot(
                bounds=tuple(self.bounds), counts=tuple(self.counts),
                n=self.n, total=self.total, max_seen=self.max_seen)

    def window(self, since: Optional[HistogramSnapshot] = None
               ) -> "Histogram":
        """A histogram of only the observations recorded after *since*.

        This is what fixes the cumulative-histogram problem: a cold
        warm-up's slow requests dominate ``percentile()`` forever, but
        a scrape-to-scrape window forgets them as soon as they age out.
        ``since=None`` (or a stale snapshot from before a reset, which
        would produce negative deltas) returns a copy of the full
        cumulative state.  The window's ``max_seen`` is conservatively
        the cumulative maximum — the overflow bucket may over-report,
        never under-report.
        """
        current = self.snapshot()
        delta = Histogram(current.bounds)
        if (since is not None and since.bounds == current.bounds
                and since.n <= current.n
                and all(s <= c for s, c in zip(since.counts,
                                               current.counts))):
            delta.counts = [c - s for c, s in zip(current.counts,
                                                  since.counts)]
            delta.n = current.n - since.n
            delta.total = current.total - since.total
        else:
            delta.counts = list(current.counts)
            delta.n = current.n
            delta.total = current.total
        delta.max_seen = current.max_seen if delta.n else 0.0
        return delta

    def to_json_dict(self) -> dict:
        """JSON form: counts per bucket plus the headline percentiles."""
        return {
            "n": self.n,
            "mean": self.mean,
            "max": self.max_seen if self.n else None,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds + [None], self.counts)
            ],
        }


class _Metric:
    """Shared plumbing of one named metric family (all label series)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._lock = threading.Lock()
        #: Cardinality bound and overflow callback, installed by the
        #: owning :class:`MetricsRegistry` (a bare metric is unbounded).
        self.max_series: Optional[int] = None
        self._on_overflow: Optional[Callable[[str], None]] = None

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        """Label values in declaration order; rejects unknown/missing keys."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.label_names)

    def _bounded_key(self, labels: Dict[str, str],
                     existing: Dict) -> Tuple[str, ...]:
        """The write-path key: like :meth:`_key`, but once *existing*
        holds ``max_series`` distinct series, any **new** series
        collapses onto the :data:`OVERFLOW_LABEL_VALUE` sentinel (and
        the overflow callback fires) so per-request label values can
        never grow the registry without bound.  Established series are
        unaffected — only the long tail is collapsed."""
        key = self._key(labels)
        if (not self.label_names or self.max_series is None
                or key in existing or len(existing) < self.max_series):
            return key
        if self._on_overflow is not None:
            self._on_overflow(self.name)
        return tuple(OVERFLOW_LABEL_VALUE for _ in self.label_names)


class Counter(_Metric):
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        """See :class:`_Metric`."""
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[str, ...], int] = {}
        self._exemplars: Dict[Tuple[str, ...], str] = {}
        if not self.label_names:
            self._values[_NO_LABELS] = 0

    def inc(self, delta: int = 1, exemplar: Optional[str] = None,
            **labels: str) -> None:
        """Increment the series selected by *labels* by *delta* (>= 0).

        *exemplar* optionally attaches a sample identity (a trace id)
        to the series — the most recent one wins, readable back via
        :meth:`exemplars` so an alert or a report can link a counted
        event to its full span tree.
        """
        if delta < 0:
            raise ValueError("counters only go up")
        key = self._bounded_key(labels, self._values)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + int(delta)
            if exemplar is not None:
                self._exemplars[key] = str(exemplar)

    def value(self, **labels: str) -> int:
        """Current value of the selected series (0 when never touched)."""
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def series(self) -> Dict[Tuple[str, ...], int]:
        """Snapshot of every label series."""
        with self._lock:
            return dict(self._values)

    def exemplars(self) -> Dict[Tuple[str, ...], str]:
        """Snapshot of the latest exemplar per series (only series that
        ever received one appear)."""
        with self._lock:
            return dict(self._exemplars)


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        """See :class:`_Metric`."""
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the selected series to *value*."""
        key = self._bounded_key(labels, self._values)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, delta: float = 1.0, **labels: str) -> None:
        """Add *delta* (may be negative) to the selected series."""
        key = self._bounded_key(labels, self._values)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(delta)

    def dec(self, delta: float = 1.0, **labels: str) -> None:
        """Subtract *delta* from the selected series."""
        self.inc(-delta, **labels)

    def value(self, **labels: str) -> Optional[float]:
        """Current value of the selected series, or None when never set."""
        with self._lock:
            return self._values.get(self._key(labels))

    def series(self) -> Dict[Tuple[str, ...], float]:
        """Snapshot of every label series."""
        with self._lock:
            return dict(self._values)


class HistogramFamily(_Metric):
    """A family of bucket :class:`Histogram`\\ s, one per label series."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 bounds: Optional[Sequence[float]] = None,
                 label_names: Sequence[str] = ()) -> None:
        """See :class:`_Metric`; *bounds* default to latency buckets."""
        super().__init__(name, help_text, label_names)
        self.bounds = list(bounds) if bounds is not None else latency_bounds()
        self._children: Dict[Tuple[str, ...], Histogram] = {}
        if not self.label_names:
            self._children[_NO_LABELS] = Histogram(self.bounds)

    def child(self, **labels: str) -> Histogram:
        """The (lazily created) histogram of the selected series."""
        key = self._bounded_key(labels, self._children)
        with self._lock:
            hist = self._children.get(key)
            if hist is None:
                hist = Histogram(self.bounds)
                self._children[key] = hist
            return hist

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation on the selected series."""
        self.child(**labels).observe(value)

    def percentile(self, p: float, **labels: str) -> Optional[float]:
        """Percentile of the selected series (None when empty)."""
        return self.child(**labels).percentile(p)

    def series(self) -> Dict[Tuple[str, ...], Histogram]:
        """Snapshot of every label series."""
        with self._lock:
            return dict(self._children)


def _series_name(name: str, label_names: Sequence[str],
                 label_values: Sequence[str]) -> str:
    """Snapshot key of one series: ``name`` or ``name{k="v",...}``."""
    if not label_names:
        return name
    rendered = ",".join(f'{k}="{v}"'
                        for k, v in zip(label_names, label_values))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    Args:
        max_series_per_metric: cardinality bound per metric family.
            Once a labelled family holds this many distinct series,
            further **new** label combinations collapse onto one
            ``__overflow__`` series and
            ``metrics_label_overflow_total{metric=...}`` counts every
            collapsed write — so a per-request label (a raw trace id,
            a client address) can degrade a family's resolution but
            never OOM the registry.
    """

    def __init__(self, max_series_per_metric: int = 256) -> None:
        """See class docstring."""
        if max_series_per_metric < 1:
            raise ValueError("max_series_per_metric must be >= 1")
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self.max_series_per_metric = max_series_per_metric
        self._overflow = Counter(
            OVERFLOW_COUNTER,
            "series writes collapsed by the cardinality bound, by metric",
            label_names=("metric",))
        self._overflow.max_series = max_series_per_metric
        self._metrics[OVERFLOW_COUNTER] = self._overflow

    def _note_overflow(self, metric_name: str) -> None:
        """Count one collapsed write against *metric_name*."""
        self._overflow.inc(metric=metric_name)

    def _get_or_create(self, cls, name: str, help_text: str,
                       label_names: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}")
                if tuple(label_names) != metric.label_names:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{metric.label_names}, not {tuple(label_names)}")
                return metric
            metric = cls(name, help_text, label_names=label_names, **kwargs)
            metric.max_series = self.max_series_per_metric
            metric._on_overflow = self._note_overflow
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  bounds: Optional[Sequence[float]] = None,
                  label_names: Sequence[str] = ()) -> HistogramFamily:
        """Get or create the histogram family *name*."""
        return self._get_or_create(HistogramFamily, name, help_text,
                                   label_names, bounds=bounds)

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric *name*, or None."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[_Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def clear(self) -> None:
        """Drop every metric (tests); the overflow counter is rebuilt."""
        with self._lock:
            self._metrics.clear()
            self._overflow = Counter(
                OVERFLOW_COUNTER,
                "series writes collapsed by the cardinality bound, by metric",
                label_names=("metric",))
            self._overflow.max_series = self.max_series_per_metric
            self._metrics[OVERFLOW_COUNTER] = self._overflow

    def snapshot(self) -> dict:
        """The whole registry as a JSON-ready dict (stable key order).

        Shape: ``{"counters": {series: int}, "gauges": {series: float},
        "histograms": {series: histogram-json}, "exemplars":
        {series: trace_id}}`` where an unlabelled metric's series key
        is its bare name and a labelled one renders as
        ``name{label="value",...}``.  ``exemplars`` only lists counter
        series that ever received one.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        exemplars: Dict[str, str] = {}
        for metric in self.collect():
            if isinstance(metric, Counter):
                for values, count in sorted(metric.series().items()):
                    counters[_series_name(metric.name, metric.label_names,
                                          values)] = count
                for values, exemplar in sorted(metric.exemplars().items()):
                    exemplars[_series_name(metric.name, metric.label_names,
                                           values)] = exemplar
            elif isinstance(metric, Gauge):
                for values, val in sorted(metric.series().items()):
                    gauges[_series_name(metric.name, metric.label_names,
                                        values)] = val
            elif isinstance(metric, HistogramFamily):
                for values, hist in sorted(metric.series().items()):
                    histograms[_series_name(metric.name, metric.label_names,
                                            values)] = hist.to_json_dict()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms, "exemplars": exemplars}


#: The process-wide default registry the built-in instrumentation uses.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
