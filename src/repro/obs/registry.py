"""The thread-safe metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric of one component.  The
process-wide default registry (:func:`get_registry`) is what the
library's built-in instrumentation writes to; components that need
isolation (one registry per service instance, per test) construct and
inject their own.

All three metric kinds support labels::

    registry = MetricsRegistry()
    traps = registry.counter("do_traps_total", "SUIT #DO traps",
                             label_names=("cpu",))
    traps.inc(cpu="C")
    traps.value(cpu="C")        # -> 1

Metric creation is get-or-create and idempotent: asking twice for the
same name returns the same object, asking for the same name with a
different kind or label set raises ``ValueError``.  Everything is
guarded by per-metric locks, so executor callbacks, the asyncio loop
and worker threads may all write concurrently.

The bucket :class:`Histogram` keeps the semantics the service has
always used (fixed ascending bounds, one implicit overflow bucket,
percentiles read as the holding bucket's upper bound); it moved here
from ``repro.service.metrics``, which now re-exports it.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Label-value tuple of an unlabelled metric's single series.
_NO_LABELS: Tuple[str, ...] = ()


def latency_bounds(lo: float = 1e-4, hi: float = 120.0) -> List[float]:
    """Geometric bucket bounds from *lo* to at least *hi* seconds."""
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * 2.0)
    return bounds


class Histogram:
    """Fixed-bucket histogram with approximate percentiles.

    Args:
        bounds: ascending bucket upper bounds; one implicit overflow
            bucket catches everything above the last bound.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        """See class docstring."""
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be non-empty and ascending")
        self.bounds: List[float] = [float(b) for b in bounds]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.n = 0
        self.total = 0.0
        self.max_seen = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.n += 1
            self.total += value
            if value > self.max_seen:
                self.max_seen = value

    def percentile(self, p: float) -> Optional[float]:
        """Upper bound of the bucket holding rank ``p`` (0..1); None when empty.

        The overflow bucket reports the largest value seen, so a
        pathological tail is never under-reported.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.n == 0:
            return None
        rank = max(1, int(p * self.n + 0.5))
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max_seen
        return self.max_seen

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observations; None when empty."""
        return self.total / self.n if self.n else None

    def to_json_dict(self) -> dict:
        """JSON form: counts per bucket plus the headline percentiles."""
        return {
            "n": self.n,
            "mean": self.mean,
            "max": self.max_seen if self.n else None,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds + [None], self.counts)
            ],
        }


class _Metric:
    """Shared plumbing of one named metric family (all label series)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        """Label values in declaration order; rejects unknown/missing keys."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Metric):
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        """See :class:`_Metric`."""
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[str, ...], int] = {}
        if not self.label_names:
            self._values[_NO_LABELS] = 0

    def inc(self, delta: int = 1, **labels: str) -> None:
        """Increment the series selected by *labels* by *delta* (>= 0)."""
        if delta < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + int(delta)

    def value(self, **labels: str) -> int:
        """Current value of the selected series (0 when never touched)."""
        with self._lock:
            return self._values.get(self._key(labels), 0)

    def series(self) -> Dict[Tuple[str, ...], int]:
        """Snapshot of every label series."""
        with self._lock:
            return dict(self._values)


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        """See :class:`_Metric`."""
        super().__init__(name, help_text, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the selected series to *value*."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, delta: float = 1.0, **labels: str) -> None:
        """Add *delta* (may be negative) to the selected series."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(delta)

    def dec(self, delta: float = 1.0, **labels: str) -> None:
        """Subtract *delta* from the selected series."""
        self.inc(-delta, **labels)

    def value(self, **labels: str) -> Optional[float]:
        """Current value of the selected series, or None when never set."""
        with self._lock:
            return self._values.get(self._key(labels))

    def series(self) -> Dict[Tuple[str, ...], float]:
        """Snapshot of every label series."""
        with self._lock:
            return dict(self._values)


class HistogramFamily(_Metric):
    """A family of bucket :class:`Histogram`\\ s, one per label series."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 bounds: Optional[Sequence[float]] = None,
                 label_names: Sequence[str] = ()) -> None:
        """See :class:`_Metric`; *bounds* default to latency buckets."""
        super().__init__(name, help_text, label_names)
        self.bounds = list(bounds) if bounds is not None else latency_bounds()
        self._children: Dict[Tuple[str, ...], Histogram] = {}
        if not self.label_names:
            self._children[_NO_LABELS] = Histogram(self.bounds)

    def child(self, **labels: str) -> Histogram:
        """The (lazily created) histogram of the selected series."""
        key = self._key(labels)
        with self._lock:
            hist = self._children.get(key)
            if hist is None:
                hist = Histogram(self.bounds)
                self._children[key] = hist
            return hist

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation on the selected series."""
        self.child(**labels).observe(value)

    def percentile(self, p: float, **labels: str) -> Optional[float]:
        """Percentile of the selected series (None when empty)."""
        return self.child(**labels).percentile(p)

    def series(self) -> Dict[Tuple[str, ...], Histogram]:
        """Snapshot of every label series."""
        with self._lock:
            return dict(self._children)


def _series_name(name: str, label_names: Sequence[str],
                 label_values: Sequence[str]) -> str:
    """Snapshot key of one series: ``name`` or ``name{k="v",...}``."""
    if not label_names:
        return name
    rendered = ",".join(f'{k}="{v}"'
                        for k, v in zip(label_names, label_values))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics."""

    def __init__(self) -> None:
        """Create an empty registry."""
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str,
                       label_names: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}")
                if tuple(label_names) != metric.label_names:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{metric.label_names}, not {tuple(label_names)}")
                return metric
            metric = cls(name, help_text, label_names=label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  bounds: Optional[Sequence[float]] = None,
                  label_names: Sequence[str] = ()) -> HistogramFamily:
        """Get or create the histogram family *name*."""
        return self._get_or_create(HistogramFamily, name, help_text,
                                   label_names, bounds=bounds)

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric *name*, or None."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[_Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def clear(self) -> None:
        """Drop every metric (tests)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict:
        """The whole registry as a JSON-ready dict (stable key order).

        Shape: ``{"counters": {series: int}, "gauges": {series: float},
        "histograms": {series: histogram-json}}`` where an unlabelled
        metric's series key is its bare name and a labelled one renders
        as ``name{label="value",...}``.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for metric in self.collect():
            if isinstance(metric, Counter):
                for values, count in sorted(metric.series().items()):
                    counters[_series_name(metric.name, metric.label_names,
                                          values)] = count
            elif isinstance(metric, Gauge):
                for values, val in sorted(metric.series().items()):
                    gauges[_series_name(metric.name, metric.label_names,
                                        values)] = val
            elif isinstance(metric, HistogramFamily):
                for values, hist in sorted(metric.series().items()):
                    histograms[_series_name(metric.name, metric.label_names,
                                            values)] = hist.to_json_dict()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


#: The process-wide default registry the built-in instrumentation uses.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
