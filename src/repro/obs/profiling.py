"""Profiling hooks: one context manager feeding both telemetry sinks.

:func:`profiled` wraps a block so that its wall-clock duration lands in
a histogram of the default registry *and* — when tracing is on — as a
span in the trace.  It is the convenience glue the engine and service
hot paths use; both sinks stay individually addressable for callers
with special needs (simulated-time events, labelled series).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.tracer import get_tracer

#: Default histogram bounds for code-path durations (1 us .. ~134 s).
DURATION_BOUNDS = tuple(1e-6 * 2 ** i for i in range(28))


@contextmanager
def profiled(name: str, cat: str = "profile",
             histogram: Optional[str] = None,
             registry: Optional[MetricsRegistry] = None,
             bounds: Sequence[float] = DURATION_BOUNDS,
             args: Optional[dict] = None) -> Iterator[None]:
    """Time the body; observe the duration and (if tracing) record a span.

    Args:
        name: span name, and the default histogram name
            (``<name>_seconds`` with non-metric characters replaced).
        cat: trace category.
        histogram: explicit histogram name; None derives one from *name*.
        registry: target registry (default: the process-wide one).
        bounds: histogram bucket bounds.
        args: optional trace-event payload.
    """
    tracer = get_tracer()
    start = time.perf_counter()
    try:
        yield
    finally:
        duration = time.perf_counter() - start
        metric = histogram or _metric_name(name)
        target = registry if registry is not None else get_registry()
        target.histogram(metric, f"duration of {name}",
                         bounds=list(bounds)).observe(duration)
        if tracer.enabled:
            tracer.complete(name, cat, ts_s=tracer.now_s() - duration,
                            dur_s=duration, args=args)


def _metric_name(name: str) -> str:
    """Histogram name derived from a span name."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{cleaned.strip('_').lower()}_seconds"
