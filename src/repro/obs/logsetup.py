"""Structured logging setup for the ``repro`` namespace.

:func:`logging_setup` configures the ``repro`` logger hierarchy with a
stream handler and either a human-readable or a JSON-lines formatter —
the latter is what log shippers and ``jq`` pipelines want.  It is
idempotent: calling it again reconfigures rather than stacking
handlers, so tests and long-lived embedders can flip levels freely.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional, Union


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message (+exc)."""

    def format(self, record: logging.LogRecord) -> str:
        """Render *record* as a single JSON line."""
        payload = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S%z"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def logging_setup(level: Union[int, str] = "INFO", json_format: bool = False,
                  stream: Optional[IO[str]] = None) -> logging.Logger:
    """Configure the ``repro`` logger; returns it.

    Args:
        level: threshold name or number ("DEBUG", "INFO", ...).
        json_format: emit JSON lines instead of the plain format.
        stream: destination (default ``sys.stderr``, so stdout stays
            reserved for report/result output).
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_format:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s"))
    logger.addHandler(handler)
    return logger
