"""Command-line interface.

Subcommands:

* ``simulate``  — run a workload under SUIT and print the result.
* ``suite``     — run a workload suite and print Table 6-style aggregates.
* ``trace``     — synthesise / record / inspect traces (.npz files), or
  run an experiment with execution tracing on (``trace <experiment>``)
  and export a Chrome trace-event JSON (chrome://tracing / Perfetto).
* ``tune``      — grid-search the operating-strategy parameters.
* ``reproduce`` — run the paper's experiments (wrapper over runall).
* ``figures``   — render the regenerated figures as terminal plots.
* ``audit``     — run the security audit on a sampled chip.
* ``serve``     — run the simulation service (JSON-lines TCP).
* ``metrics``   — fetch a running service's metrics (Prometheus text).
* ``chaos``     — seeded fault-injection soak with the differential
  oracle; any wrong answer fails the run (exit code 1).
* ``campaign``  — structured fault-injection campaigns against the
  modeled machine (run / resume / report / list), with outcome
  classification and a static HTML dashboard.
* ``fleet``     — the horizontal serving tier: ``serve`` (gateway over
  N worker nodes, autoscaled), ``bench`` (breaking-point ramp,
  writes ``BENCH_fleet.json``), ``status``, ``soak`` (kill a node
  mid-load; zero wrong answers or exit 1).
* ``dse``       — evolutionary design-space exploration over SUIT
  operating points (run / resume / report / recommend / list):
  NSGA-II over (performance, energy, security headroom), Pareto
  frontier, MCDM-ranked recommendation and an HTML dashboard.

Examples:
    python -m repro simulate --cpu C --workload 557.xz --strategy fV
    python -m repro suite --cpu A --offset -0.070
    python -m repro trace gen --workload nginx --out /tmp/nginx.npz
    python -m repro trace info /tmp/nginx.npz
    python -m repro trace fig15_strategies --out trace.json --validate
    python -m repro tune --cpu C
    python -m repro audit --offset -0.097
    python -m repro serve --port 8642 --shards 2 --workers-per-shard 2
    python -m repro metrics --port 8642
    python -m repro chaos --seed 7 --duration 30 --kill-rate 0.1
    python -m repro campaign run --spec msr_bitflip_nginx --seed 7 --out out/
    python -m repro campaign resume --out out/
    python -m repro dse run --search nginx_pareto --out out/dse/
    python -m repro dse recommend --out out/dse/
    python -m repro fleet serve --nodes 3 --port 8643
    python -m repro fleet bench --nodes 3 --out BENCH_fleet.json
    python -m repro fleet status --port 8643
    python -m repro fleet soak --seed 42 --nodes 3 --requests 25 --bursts 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (clear error otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _resolve_profile(name: str):
    from repro.workloads import resolve_profile

    try:
        return resolve_profile(name)
    except ValueError as exc:
        # Unknown name: lists the full catalogue; ambiguous fragment:
        # lists only the matching candidates (see repro.workloads.resolve).
        raise SystemExit(str(exc))


def _print_result(r) -> None:
    print(f"workload   : {r.workload}")
    print(f"cpu        : {r.cpu_name}")
    print(f"strategy   : {r.strategy} @ {r.voltage_offset * 1e3:+.0f} mV")
    print(f"performance: {r.perf_change * 100:+.2f}%")
    print(f"power      : {r.power_change * 100:+.2f}%")
    print(f"efficiency : {r.efficiency_change * 100:+.2f}%")
    print(f"on E curve : {r.efficient_occupancy * 100:.1f}% of run time")
    print(f"#DO traps  : {r.n_exceptions}  (timer returns: {r.n_timer_fires}, "
          f"thrash stretches: {r.n_thrash_stretches})")


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one workload under SUIT and print the result."""
    from repro.core.suit import SuitSystem

    suit = SuitSystem.for_cpu(args.cpu, strategy_name=args.strategy,
                              voltage_offset=args.offset,
                              n_cores=args.cores, seed=args.seed)
    profile = _resolve_profile(args.workload)
    _print_result(suit.run_profile(profile))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    """Run the SPEC suite and print Table 6-style aggregates."""
    from repro.core.suit import SuitSystem
    from repro.workloads.spec import all_spec_profiles

    suit = SuitSystem.for_cpu(args.cpu, strategy_name=args.strategy,
                              voltage_offset=args.offset,
                              n_cores=args.cores, seed=args.seed)
    profiles = all_spec_profiles()
    if args.quick:
        profiles = profiles[::4]
    print(f"running {len(profiles)} workloads on {suit.cpu.name} "
          f"({args.strategy}, {args.offset * 1e3:+.0f} mV)...")
    suite = suit.evaluate_suite(profiles)
    for r in suite.results:
        print(f"  {r.workload:<16} perf {r.perf_change * 100:+6.2f}%  "
              f"pwr {r.power_change * 100:+7.2f}%  "
              f"eff {r.efficiency_change * 100:+6.2f}%")
    print(f"gmean: perf {suite.perf_gmean * 100:+.2f}%  "
          f"pwr {suite.power_gmean * 100:+.2f}%  "
          f"eff {suite.efficiency_gmean * 100:+.2f}%  "
          f"occupancy {suite.mean_occupancy:.2f}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate, record or inspect trace files."""
    from repro.workloads.analysis import burst_statistics
    from repro.workloads.generator import generate_trace
    from repro.workloads.programs import record_tls_server_trace
    from repro.workloads.trace import FaultableTrace

    if args.trace_cmd == "gen":
        trace = generate_trace(_resolve_profile(args.workload), seed=args.seed)
        trace.save(args.out)
        print(f"wrote {trace.n_events:,} events "
              f"({trace.n_instructions:,} instructions) to {args.out}")
        return 0
    if args.trace_cmd == "record":
        trace, total = record_tls_server_trace(
            n_requests=args.requests, response_bytes=args.bytes,
            seed=args.seed)
        trace.save(args.out)
        print(f"recorded {total:,} encrypted bytes -> {trace.n_events:,} "
              f"events; wrote {args.out}")
        return 0
    # info
    trace = FaultableTrace.load(args.path)
    stats = burst_statistics(trace)
    print(f"name          : {trace.name}")
    print(f"instructions  : {trace.n_instructions:,} (IPC {trace.ipc})")
    print(f"events        : {trace.n_events:,} "
          f"(1 per {1 / max(trace.faultable_rate, 1e-18):,.0f} instructions)")
    print(f"bursts        : {stats.n_bursts} "
          f"(mean length {stats.mean_burst_length:.1f}, "
          f"intra-gap {stats.mean_intra_gap:,.0f})")
    opcode_counts = {}
    for code, op in enumerate(trace.opcode_table):
        opcode_counts[op.name] = int((trace.opcodes == code).sum())
    print(f"opcodes       : {opcode_counts}")
    return 0


def cmd_trace_run(args: argparse.Namespace) -> int:
    """Run one experiment with tracing on; export the execution trace."""
    import importlib
    import json

    from repro.experiments.runall import EXPERIMENT_MODULES
    from repro.obs import disable_tracing, enable_tracing, validate_chrome_trace

    if args.experiment not in EXPERIMENT_MODULES:
        raise SystemExit(
            f"unknown experiment {args.experiment!r}; known experiments:\n  "
            + "\n  ".join(EXPERIMENT_MODULES))
    tracer = enable_tracing(capacity=args.capacity)
    try:
        module = importlib.import_module(
            f"repro.experiments.{args.experiment}")
        module.run(seed=args.seed, fast=not args.full)
        if args.jsonl:
            tracer.export_jsonl(args.out)
        else:
            tracer.export_chrome(args.out)
    finally:
        disable_tracing()
    dropped = (f" ({tracer.n_dropped} dropped: ring buffer full)"
               if tracer.n_dropped else "")
    print(f"wrote {len(tracer)} trace events to {args.out}{dropped}")
    if args.validate:
        if args.jsonl:
            raise SystemExit("--validate checks Chrome JSON; drop --jsonl")
        with open(args.out, encoding="utf-8") as handle:
            n_events = validate_chrome_trace(json.load(handle))
        print(f"trace validates: {n_events} events")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Fetch and print a running service's metrics."""
    import asyncio
    import json

    from repro.service.client import ServiceClient

    async def _fetch() -> str:
        client = await ServiceClient.connect(args.host, args.port)
        try:
            if args.json:
                return json.dumps(await client.metrics(), indent=2,
                                  sort_keys=True)
            return await client.metrics_text()
        finally:
            await client.close()

    try:
        text = asyncio.run(_fetch())
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach service at {args.host}:{args.port}: {exc}")
    print(text.rstrip("\n"))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Grid-search the operating-strategy parameters."""
    from repro.core.tuning import grid_search
    from repro.hardware.models import ALL_CPU_FACTORIES
    from repro.workloads.spec import SPEC_PROFILES

    cpu = ALL_CPU_FACTORIES[args.cpu]()
    profiles = [SPEC_PROFILES[n] for n in ("557.xz", "502.gcc", "527.cam4")]
    result = grid_search(
        cpu, profiles,
        deadlines_s=[float(x) * 1e-6 for x in args.deadlines.split(",")],
        timespans_s=(450e-6,),
        exception_counts=(3,),
        deadline_factors=(7.0, 14.0),
        strategy_name="f" if cpu.transitions.voltage is None else "fV",
        voltage_offset=args.offset,
        seed=args.seed,
    )
    print(f"best parameters on {cpu.name}:")
    print(f"  p_dl = {result.best.deadline_s * 1e6:.0f} us, "
          f"p_df = {result.best.thrash_deadline_factor:.0f} "
          f"(efficiency {result.best_efficiency * 100:+.2f}%)")
    print(f"  grid spread: {result.sensitivity() * 100:.2f} pp "
          "(flat plateau = robust OS-wide policy)")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run the paper's experiments (wrapper over the experiment engine)."""
    from repro.experiments.runall import main as runall_main

    argv: List[str] = ["--jobs", str(args.jobs), "--seed", str(args.seed),
                       "--log-level", args.log_level]
    if args.log_json:
        argv.append("--log-json")
    if args.fast:
        argv.append("--fast")
    if args.only:
        argv.extend(["--only", *args.only])
    if args.no_cache:
        argv.append("--no-cache")
    if args.share_traces:
        argv.append("--share-traces")
    if args.out:
        argv.extend(["--out", args.out])
    if args.json is not None:
        argv.append("--json")
        if args.json is not True:
            argv.append(args.json)
    return runall_main(argv)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service until interrupted (or --duration)."""
    import asyncio
    import json
    from pathlib import Path

    from repro.obs import logging_setup
    from repro.runtime.cache import ResultCache
    from repro.service import ServiceConfig, SimulationService, start_tcp_server
    from repro.service.server import service_cache_dir

    try:
        logging_setup(args.log_level, json_format=args.log_json)
    except ValueError as exc:
        raise SystemExit(str(exc))
    config = ServiceConfig(
        n_shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        use_processes=not args.inline,
        max_queue_depth=args.max_queue,
        max_batch_size=args.batch_size,
        batch_window_s=args.batch_window_ms / 1000.0,
        default_timeout_s=args.timeout,
        share_traces=args.share_traces,
    )
    cache = None
    if not args.no_cache:
        root = Path(args.cache_dir) if args.cache_dir else service_cache_dir()
        cache = ResultCache(root, max_bytes=args.cache_max_bytes)

    async def _run() -> None:
        service = SimulationService(config, cache=cache)
        await service.start()
        server = await start_tcp_server(service, args.host, args.port)
        port = server.sockets[0].getsockname()[1]
        print(f"repro service listening on {args.host}:{port}  "
              f"[{config.n_shards} shard(s) x {config.workers_per_shard} "
              f"worker(s), queue {config.max_queue_depth}, "
              f"batch {config.max_batch_size}, "
              f"cache {'off' if cache is None else 'on'}]", flush=True)
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            server.close()
            await server.wait_closed()
            await service.stop()
            print(json.dumps(service.metrics.snapshot()["counters"],
                             indent=2, sort_keys=True))

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded chaos soak refereed by the differential oracle.

    Prints the JSON report (injected vs recovered vs wrong-answer);
    exits 0 only when the oracle saw zero wrong answers.  The
    ``fault_schedule`` section of the report is a pure function of
    ``--seed``, so rerunning with the same seed replays the identical
    schedule.
    """
    import asyncio
    import json

    from repro.testkit.soak import ChaosSoak, SoakConfig

    config = SoakConfig(
        seed=args.seed,
        duration_s=args.duration,
        passes=args.passes,
        n_requests=args.requests,
        worker_kill_rate=args.kill_rate,
        shm_unlink_rate=args.shm_unlink_rate,
        manifest_corrupt_rate=args.manifest_corrupt_rate,
        cache_corrupt_rate=args.cache_corrupt_rate,
        admission_reject_rate=args.admission_reject_rate,
        slow_worker_rate=args.slow_rate,
        request_fail_rate=args.fail_rate,
        use_processes=not args.inline,
        n_shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        check_engine=args.engine,
    )
    result = asyncio.run(ChaosSoak(config).run())
    report = result.to_json_dict()
    if not args.full_schedule:
        # The full schedule can run to thousands of entries; keep the
        # default report readable and replay-comparable via its seed.
        schedule = report["fault_schedule"]
        report["fault_schedule"] = {
            "seed": schedule.get("seed"),
            "horizon": schedule.get("horizon"),
            "specs": schedule.get("specs", []),
            "n_entries": len(schedule.get("entries", [])),
        }
    print(json.dumps(report, indent=2, sort_keys=True))
    if not result.passed:
        print(f"CHAOS SOAK FAILED: {result.wrong_answers} wrong "
              "answer(s) — silent corruption detected", flush=True)
        return 1
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet verbs: serve / bench / status / soak."""
    import asyncio
    import json
    from pathlib import Path

    if args.fleet_cmd == "status":
        from repro.service.client import ServiceClient

        async def _status() -> dict:
            client = await ServiceClient.connect(args.host, args.port)
            try:
                return await client.fleet_status()
            finally:
                await client.close()

        try:
            fleet = asyncio.run(_status())
        except (ConnectionError, OSError) as exc:
            raise SystemExit(
                f"cannot reach gateway at {args.host}:{args.port}: {exc}")
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(json.dumps(fleet, indent=2, sort_keys=True))
        return 0

    if args.fleet_cmd == "soak":
        from repro.fleet.soak import FleetSoak, FleetSoakConfig

        config = FleetSoakConfig(
            seed=args.seed,
            n_nodes=args.nodes,
            n_requests=args.requests,
            bursts=args.bursts,
            kill_node=not args.no_kill,
            forward_fault_rate=args.forward_fault_rate,
            health_fault_rate=args.health_fault_rate,
            require_all_ok=not args.allow_degraded,
            use_processes=args.processes,
        )
        try:
            soak = FleetSoak(config)
        except ValueError as exc:
            raise SystemExit(str(exc))
        result = asyncio.run(soak.run())
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
        if not result.passed:
            print(f"FLEET SOAK FAILED: {result.wrong_answers} wrong, "
                  f"{result.degraded_answers} degraded answer(s)",
                  flush=True)
            return 1
        return 0

    if args.fleet_cmd == "bench":
        from repro.fleet.bench import FleetBenchConfig, run_fleet_bench
        from repro.fleet.loadgen import LoadGenConfig, write_bench

        try:
            config = FleetBenchConfig(
                n_nodes=args.nodes,
                use_processes=not args.inline,
                n_shards=args.shards,
                workers_per_shard=args.workers_per_shard,
                autoscale=not args.no_autoscale,
                max_nodes=args.max_nodes,
                baseline=not args.no_baseline,
                load=LoadGenConfig(
                    start_rps=args.start_rps,
                    step_rps=args.step_rps,
                    max_steps=args.max_steps,
                    requests_per_step=args.requests_per_step,
                    slo_p95_s=args.slo_p95,
                    slo_error_rate=args.slo_error_rate,
                    seed=args.seed,
                    stall_s=args.stall_s,
                ),
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
        payload = asyncio.run(run_fleet_bench(config))
        write_bench(Path(args.out), payload)
        comparison = payload["comparison"]
        print(f"wrote {args.out}")
        print(f"fleet       : {comparison['fleet_max_sustainable_rps']} rps "
              f"sustainable (breaking point "
              f"{payload['fleet']['breaking_point_rps']} rps)")
        if comparison["single_node_max_sustainable_rps"] is not None:
            print(f"single node : "
                  f"{comparison['single_node_max_sustainable_rps']} rps "
                  f"sustainable")
            print(f"ratio       : {comparison['throughput_ratio']}x")
        for event in payload["autoscaler"]["events"]:
            print(f"  scale event: {event['action']} -> "
                  f"{event['fleet_size']} nodes ({event['reason']})")
        return 0

    # serve
    from repro.fleet import (
        Autoscaler,
        AutoscalerConfig,
        FleetGateway,
        GatewayConfig,
        NodeConfig,
        NodeSupervisor,
        start_fleet_server,
    )

    async def _serve() -> None:
        supervisor = NodeSupervisor(NodeConfig(
            in_process=args.in_process,
            use_processes=not args.inline,
            n_shards=args.shards,
            workers_per_shard=args.workers_per_shard,
        ))
        gateway = FleetGateway(GatewayConfig())
        scaler = None
        server = None
        try:
            for _ in range(args.nodes):
                handle = await supervisor.spawn()
                gateway.add_node(handle.name, handle.host, handle.port)
            await gateway.start()
            if not args.no_autoscale:
                scaler = Autoscaler(gateway, supervisor, AutoscalerConfig(
                    min_nodes=args.nodes, max_nodes=args.max_nodes))
                await scaler.start()
            server = await start_fleet_server(gateway, args.host, args.port)
            port = server.sockets[0].getsockname()[1]
            mode = "in-process" if args.in_process else "subprocess"
            print(f"repro fleet gateway listening on {args.host}:{port}  "
                  f"[{args.nodes} {mode} node(s), autoscale "
                  f"{'off' if args.no_autoscale else f'<= {args.max_nodes}'}]",
                  flush=True)
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            if server is not None:
                server.close()
                await server.wait_closed()
            if scaler is not None:
                await scaler.stop()
            status = await gateway.status()
            await gateway.close()
            await supervisor.stop_all(drain=True)
            print(json.dumps(status["counters"], indent=2, sort_keys=True))

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run / resume / report a structured fault-injection campaign."""
    import json
    from pathlib import Path

    from repro.campaigns import (CANNED_CAMPAIGNS, CampaignRunner,
                                 CheckpointMismatchError, HTML_NAME,
                                 REPORT_NAME, ReportBuilder,
                                 load_checkpoint_spec, resolve_spec)

    if args.campaign_cmd == "list":
        for name, spec in sorted(CANNED_CAMPAIGNS.items()):
            print(f"{name:<22} scope={spec.scope:<8} "
                  f"model={spec.fault_model:<10} runs={spec.n_runs}")
        return 0

    if args.campaign_cmd == "report":
        out = Path(args.out)
        report_path = out / REPORT_NAME
        if not report_path.exists():
            raise SystemExit(f"no {REPORT_NAME} in {out}; run the campaign "
                             "first (campaign run --out ...)")
        report = json.loads(report_path.read_text(encoding="utf-8"))
        html_path = out / HTML_NAME
        html_path.write_text(ReportBuilder(report).render(), encoding="utf-8")
        print(f"wrote {html_path}")
        return 0

    # run / resume
    try:
        if args.campaign_cmd == "resume" and args.spec is None:
            spec = load_checkpoint_spec(Path(args.out))
        else:
            spec = resolve_spec(args.spec)
    except (ValueError, FileNotFoundError, CheckpointMismatchError) as exc:
        raise SystemExit(str(exc))
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "samples", None) is not None:
        overrides["samples"] = args.samples
    if overrides:
        spec = spec.with_overrides(**overrides)

    out_dir = Path(args.out) if args.out else None
    runner = CampaignRunner(spec, out_dir=out_dir, jobs=args.jobs)
    try:
        report = runner.run(resume=args.campaign_cmd == "resume",
                            stop_after=args.max_runs)
    except CheckpointMismatchError as exc:
        raise SystemExit(str(exc))
    if out_dir is not None:
        report = runner.write_outputs(html=not args.no_html)

    print(f"campaign   : {report['campaign']}  "
          f"({report['n_completed']}/{report['n_runs']} runs)")
    print(f"outcomes   : {json.dumps(report['outcomes'])}")
    for row in report["by_offset"]:
        print(f"  {row['offset_mv']:>8.1f} mV  n={row['n']:<3} "
              f"sdc={row['sdc_rate']:.3f} detected={row['detected_rate']:.3f} "
              f"crashed={row['crashed_rate']:.3f}")
    if out_dir is not None:
        print(f"artifacts  : {out_dir / REPORT_NAME}"
              + ("" if args.no_html else f", {out_dir / HTML_NAME}"))
    if report["incomplete"]:
        print(f"incomplete : {len(report['incomplete'])} runs remain "
              "(campaign resume --out ... continues)")
    return 0


def cmd_dse(args: argparse.Namespace) -> int:
    """Run / resume / report / recommend a design-space exploration."""
    import json
    from pathlib import Path

    from repro.dse import (CANNED_SEARCHES, CheckpointMismatchError,
                           DseRunner, ReportBuilder, ServiceEvalBackend,
                           load_checkpoint_spec, resolve_search)
    from repro.dse.runner import HTML_NAME, REPORT_NAME

    if args.dse_cmd == "list":
        for name, spec in sorted(CANNED_SEARCHES.items()):
            print(f"{name:<16} cpu={spec.cpu} workload={spec.workload:<8} "
                  f"{spec.generations} gen x {spec.population} genomes")
        return 0

    if args.dse_cmd in ("report", "recommend"):
        out = Path(args.out)
        report_path = out / REPORT_NAME
        if not report_path.exists():
            raise SystemExit(f"no {REPORT_NAME} in {out}; run the search "
                             "first (dse run --out ...)")
        report = json.loads(report_path.read_text(encoding="utf-8"))
        if args.dse_cmd == "report":
            html_path = out / HTML_NAME
            html_path.write_text(ReportBuilder(report).render(),
                                 encoding="utf-8")
            print(f"wrote {html_path}")
            return 0
        rec = report.get("recommendation")
        if not rec:
            raise SystemExit("no recommendation yet: the search has not "
                             "completed a generation")
        print(json.dumps(rec, indent=2, sort_keys=True))
        return 0

    # run / resume
    try:
        if args.dse_cmd == "resume" and args.search is None:
            spec = load_checkpoint_spec(Path(args.out))
        else:
            spec = resolve_search(args.search)
    except (ValueError, FileNotFoundError, CheckpointMismatchError) as exc:
        raise SystemExit(str(exc))
    overrides = {}
    for field in ("seed", "generations", "population"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if overrides:
        spec = spec.with_overrides(**overrides)

    backend = None
    if args.service:
        host, _, port = args.service.rpartition(":")
        backend = ServiceEvalBackend(spec, host=host or "127.0.0.1",
                                     port=int(port))
    out_dir = Path(args.out) if args.out else None
    runner = DseRunner(spec, out_dir=out_dir, jobs=args.jobs,
                       backend=backend)
    try:
        report = runner.run(resume=args.dse_cmd == "resume",
                            stop_after_generations=args.max_generations)
    except CheckpointMismatchError as exc:
        raise SystemExit(str(exc))
    if out_dir is not None:
        report = runner.write_outputs(html=not args.no_html)

    print(f"search     : {report['search']}  "
          f"({report['n_generations']}/{report['generations_requested']} "
          "generations)")
    print(f"frontier   : {len(report['front'])} points, "
          f"{report['front_violations']} security violations")
    rec = report.get("recommendation")
    if rec:
        print(f"recommended: {rec['describe']}")
        print(f"  perf {rec['perf_change_pct']:+.2f}%  "
              f"power {rec['power_change_pct']:+.2f}%  "
              f"efficiency {rec['efficiency_change_pct']:+.2f}%  "
              f"headroom {rec['objectives']['security_headroom_mv']:.1f} mV")
    if out_dir is not None:
        print(f"artifacts  : {out_dir / REPORT_NAME}"
              + ("" if args.no_html else f", {out_dir / HTML_NAME}"))
    if report["n_generations"] < report["generations_requested"]:
        print("incomplete : dse resume --out ... continues")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Render the regenerated figures as terminal plots."""
    from repro.experiments.figures import render, render_all

    if args.which == "all":
        print(render_all(fast=not args.full))
    else:
        print(render(args.which, fast=not args.full))
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Security-audit a sampled chip at an offset (exit 1 if unsafe)."""
    from repro.faults.model import FaultModel
    from repro.hardware.models import ALL_CPU_FACTORIES
    from repro.security.analysis import reductionist_argument

    cpu = ALL_CPU_FACTORIES[args.cpu]()
    chip = FaultModel().sample_chip(
        cpu.conservative_curve, n_cores=args.chip_cores,
        rng=np.random.default_rng(args.seed), exhibits=True)
    verdict = reductionist_argument(chip, args.offset,
                                    frequencies=(2e9, 3e9, cpu.nominal_frequency))
    print(f"chip sampled from {cpu.name} population (seed {args.seed})")
    print(f"conservative curve safe: {verdict.conservative.safe} "
          f"({verdict.conservative.checked} points)")
    print(f"efficient curve ({args.offset * 1e3:+.0f} mV) safe: "
          f"{verdict.efficient.safe} ({verdict.efficient.checked} points)")
    if not verdict.efficient.safe:
        for op, core, freq in verdict.efficient.violations[:10]:
            print(f"  VIOLATION: {op.name} on core {core} at {freq / 1e9:.1f} GHz")
    print(f"reductionist argument holds: {verdict.holds}")
    return 0 if verdict.holds else 1


def cmd_obs(args: argparse.Namespace) -> int:
    """Observability verbs: top / dashboard / smoke."""
    import asyncio
    import json
    from pathlib import Path

    if args.obs_cmd == "smoke":
        from repro.obs.smoke import ObsSmokeConfig, run_obs_smoke

        report = run_obs_smoke(ObsSmokeConfig(
            out_dir=Path(args.out), n_nodes=args.nodes,
            n_slow=args.slow, n_fast=args.fast))
        print(json.dumps(report["checks"], indent=2, sort_keys=True))
        print(f"windowed p95 {report['windowed_p95_s']}s vs cumulative "
              f"{report['cumulative_p95_s']}s; "
              f"{report['n_stitched_traces']} stitched trace(s) across "
              f"{report['n_process_lanes']} process lanes")
        print(f"artefacts in {args.out}/ (report.json, fleet_trace.json, "
              "dashboard.html)")
        if not report["passed"]:
            failed = [k for k, ok in report["checks"].items() if not ok]
            print(f"OBS SMOKE FAILED: {', '.join(failed)}", flush=True)
            return 1
        return 0

    # top / dashboard: poll a running service or gateway over TCP.
    from repro.obs.dashboard import render_obs_dashboard, render_top
    from repro.obs.smoke import aggregate_snapshots
    from repro.obs.timeseries import MetricsScraper
    from repro.service.client import ServiceClient

    scrapers: dict = {}

    def ingest(answer: dict) -> None:
        """One poll into the per-target scrapers.

        A gateway answers ``{"gateway": ..., "nodes": {...}}`` (one
        scraper per node plus an aggregated ``fleet`` one); a plain
        node answers a flat registry snapshot.
        """
        def scraper(name: str) -> MetricsScraper:
            return scrapers.setdefault(
                name, MetricsScraper(interval_s=args.interval))
        if "nodes" in answer and "gateway" in answer:
            node_snaps = []
            for name, snap in sorted((answer.get("nodes") or {}).items()):
                if isinstance(snap, dict) and "error" not in snap:
                    node_snaps.append(snap)
                    scraper(name).ingest(snap)
            scraper("fleet").ingest(aggregate_snapshots(node_snaps))
        else:
            scraper("service").ingest(answer)

    async def _poll(frames: int) -> None:
        client = await ServiceClient.connect(args.host, args.port)
        try:
            for frame in range(frames):
                if frame:
                    await asyncio.sleep(args.interval)
                ingest(await client.metrics())
                if args.obs_cmd == "top" and frame:
                    print(render_top(scrapers, window_s=args.window))
                    print()
        finally:
            await client.close()

    try:
        if args.obs_cmd == "top":
            asyncio.run(_poll(args.frames + 1))
            return 0
        # dashboard: scrape, fetch the trace summary, write the HTML.
        asyncio.run(_poll(max(2, args.scrapes)))

        async def _trace() -> dict:
            client = await ServiceClient.connect(args.host, args.port)
            try:
                return await client.trace()
            finally:
                await client.close()

        trace = asyncio.run(_trace())
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach target at {args.host}:{args.port}: {exc}")
    merged = trace.get("merged")
    trace_summary = None
    if isinstance(merged, dict):
        from repro.obs.context import trace_ids_in

        events = merged.get("traceEvents") or []
        trace_summary = {
            "n_processes": (merged.get("otherData") or {}).get(
                "n_processes", 0),
            "n_stitched_traces": len(trace_ids_in(events)),
            "path": None}
    page = render_obs_dashboard(scrapers, flight=trace.get("flight"),
                                trace_summary=trace_summary,
                                window_s=args.window)
    Path(args.out).write_text(page, encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SUIT reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cpu", default="C", choices=["A", "B", "C", "i5"])
        p.add_argument("--offset", type=float, default=-0.097,
                       help="efficient-curve offset in volts (negative)")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("simulate", help="run one workload under SUIT")
    common(p)
    p.add_argument("--workload", default="557.xz")
    p.add_argument("--strategy", default="fV", choices=["fV", "f", "V", "e"])
    p.add_argument("--cores", type=int, default=1)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("suite", help="run the SPEC suite")
    common(p)
    p.add_argument("--strategy", default="fV", choices=["fV", "f", "V", "e"])
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--quick", action="store_true", help="subset of workloads")
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("trace", help="generate / record / inspect traces")
    trace_sub = p.add_subparsers(dest="trace_cmd", required=True)
    g = trace_sub.add_parser("gen", help="synthesise a profile's trace")
    g.add_argument("--workload", required=True)
    g.add_argument("--out", required=True)
    g.add_argument("--seed", type=int, default=0)
    r = trace_sub.add_parser("record", help="record the TLS-server program")
    r.add_argument("--requests", type=int, default=40)
    r.add_argument("--bytes", type=int, default=4096)
    r.add_argument("--out", required=True)
    r.add_argument("--seed", type=int, default=0)
    i = trace_sub.add_parser("info", help="inspect a saved trace")
    i.add_argument("path")
    p.set_defaults(func=cmd_trace)
    t = trace_sub.add_parser(
        "run", help="run an experiment with execution tracing on")
    t.add_argument("experiment",
                   help="experiment module name (e.g. fig15_strategies)")
    t.add_argument("--out", required=True,
                   help="trace output path (Chrome trace-event JSON)")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--full", action="store_true",
                   help="full (slower) run instead of --fast")
    t.add_argument("--jsonl", action="store_true",
                   help="export JSON lines instead of Chrome JSON")
    t.add_argument("--validate", action="store_true",
                   help="schema-check the written Chrome trace")
    t.add_argument("--capacity", type=_positive_int, default=1_000_000,
                   help="ring-buffer capacity in events")
    t.set_defaults(func=cmd_trace_run)

    p = sub.add_parser("tune", help="parameter grid search")
    common(p)
    p.add_argument("--deadlines", default="10,20,30,60,120",
                   help="comma-separated deadlines in microseconds")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("reproduce", help="run the paper's experiments")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--only", nargs="*")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="parallel worker processes (>= 1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-cache", action="store_true",
                   help="always recompute; skip the result cache")
    p.add_argument("--share-traces", action="store_true",
                   help="serve synthesised traces to pool workers through "
                        "the zero-copy shared trace store")
    p.add_argument("--out", default=None,
                   help="write the metric summary to this file")
    p.add_argument("--json", nargs="?", const=True, default=None,
                   metavar="PATH", help="write the machine-readable report")
    p.add_argument("--log-level", default="INFO",
                   help="logging threshold (DEBUG, INFO, ...)")
    p.add_argument("--log-json", action="store_true",
                   help="emit log records as JSON lines")
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser("figures", help="render the figures as terminal plots")
    p.add_argument("which", nargs="?", default="all",
                   help="fig5|fig7|fig12|fig13|fig14|fig16|all")
    p.add_argument("--full", action="store_true",
                   help="full (slower) experiment runs behind the plots")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("audit", help="security audit of a sampled chip")
    common(p)
    p.add_argument("--chip-cores", type=int, default=4)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("serve", help="run the simulation service over TCP")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument("--shards", type=_positive_int, default=2,
                   help="worker-pool shards (keyed by cpu/strategy)")
    p.add_argument("--workers-per-shard", type=_positive_int, default=2,
                   help="processes per shard")
    p.add_argument("--max-queue", type=_positive_int, default=128,
                   help="admission bound; beyond it requests are rejected")
    p.add_argument("--batch-size", type=_positive_int, default=8,
                   help="micro-batch occupancy cap")
    p.add_argument("--batch-window-ms", type=float, default=5.0,
                   help="how long an under-full batch waits for companions")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="default per-request timeout in seconds")
    p.add_argument("--inline", action="store_true",
                   help="thread workers instead of process shards")
    p.add_argument("--share-traces", action="store_true",
                   help="serve synthesised traces to worker processes "
                        "through the zero-copy shared trace store")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    p.add_argument("--cache-dir", default=None,
                   help="result-cache directory (default: "
                        "~/.cache/repro-suit/service)")
    p.add_argument("--cache-max-bytes", type=int, default=1 << 30,
                   help="LRU size cap of the result cache")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for N seconds then drain (default: forever)")
    p.add_argument("--log-level", default="INFO",
                   help="logging threshold (DEBUG, INFO, ...)")
    p.add_argument("--log-json", action="store_true",
                   help="emit log records as JSON lines")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("chaos",
                       help="seeded fault-injection soak with the "
                            "differential oracle")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed: fixes the fault schedule and the "
                        "canonical request set")
    p.add_argument("--duration", type=float, default=10.0,
                   help="soak for at least N seconds (and >= 2 passes)")
    p.add_argument("--passes", type=_positive_int, default=None,
                   help="drive exactly N request-set passes instead of "
                        "--duration (deterministic workload)")
    p.add_argument("--requests", type=_positive_int, default=8,
                   help="canonical request-set size")
    p.add_argument("--kill-rate", type=float, default=0.1,
                   help="P(kill a pool worker) per batch dispatch")
    p.add_argument("--shm-unlink-rate", type=float, default=0.1,
                   help="P(unlink the shm segment) per store attach")
    p.add_argument("--manifest-corrupt-rate", type=float, default=0.05,
                   help="P(corrupt the manifest) per store attach")
    p.add_argument("--cache-corrupt-rate", type=float, default=0.1,
                   help="P(corrupt the entry file) per cache read")
    p.add_argument("--admission-reject-rate", type=float, default=0.05,
                   help="P(injected admission overflow) per submit")
    p.add_argument("--slow-rate", type=float, default=0.0,
                   help="P(hold a worker 50 ms) per request")
    p.add_argument("--fail-rate", type=float, default=0.0,
                   help="P(injected worker exception) per request")
    p.add_argument("--shards", type=_positive_int, default=2,
                   help="service worker-pool shards")
    p.add_argument("--workers-per-shard", type=_positive_int, default=2,
                   help="workers per shard")
    p.add_argument("--inline", action="store_true",
                   help="thread workers instead of process shards "
                        "(worker-kill faults become no-ops)")
    p.add_argument("--engine", action="store_true",
                   help="also run the engine determinism channel")
    p.add_argument("--full-schedule", action="store_true",
                   help="embed every planned fault in the report "
                        "instead of the summary")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("campaign",
                       help="structured fault-injection campaigns")
    camp_sub = p.add_subparsers(dest="campaign_cmd", required=True)
    cr = camp_sub.add_parser(
        "run", help="execute a campaign's full sample matrix")
    cr.add_argument("--spec", required=True,
                    help="canned campaign name (see `campaign list`) or a "
                         "JSON/TOML spec file path")
    cr.add_argument("--seed", type=int, default=None,
                    help="override the spec's master seed")
    cr.add_argument("--samples", type=_positive_int, default=None,
                    help="override runs per undervolt grid point")
    cr.add_argument("--out", default=None,
                    help="artifact directory (checkpoint, JSON report, "
                         "HTML dashboard); omit to run in memory")
    cr.add_argument("--jobs", type=_positive_int, default=1,
                    help="parallel worker processes")
    cr.add_argument("--max-runs", type=_positive_int, default=None,
                    help="stop after N runs (checkpoint stays resumable)")
    cr.add_argument("--no-html", action="store_true",
                    help="skip the HTML dashboard")
    cr.set_defaults(func=cmd_campaign)
    cs = camp_sub.add_parser(
        "resume", help="continue an interrupted campaign from its checkpoint")
    cs.add_argument("--out", required=True,
                    help="artifact directory holding campaign.ckpt.json")
    cs.add_argument("--spec", default=None,
                    help="spec name/path (default: the checkpoint's spec)")
    cs.add_argument("--seed", type=int, default=None,
                    help="override the spec's master seed")
    cs.add_argument("--samples", type=_positive_int, default=None,
                    help="override runs per undervolt grid point")
    cs.add_argument("--jobs", type=_positive_int, default=1,
                    help="parallel worker processes")
    cs.add_argument("--max-runs", type=_positive_int, default=None,
                    help="stop after N further runs")
    cs.add_argument("--no-html", action="store_true",
                    help="skip the HTML dashboard")
    cs.set_defaults(func=cmd_campaign)
    cp = camp_sub.add_parser(
        "report", help="re-render the HTML dashboard from a written "
                       "campaign_report.json")
    cp.add_argument("--out", required=True,
                    help="artifact directory holding campaign_report.json")
    cp.set_defaults(func=cmd_campaign)
    cl = camp_sub.add_parser("list", help="list the canned campaigns")
    cl.set_defaults(func=cmd_campaign)

    p = sub.add_parser("dse",
                       help="evolutionary design-space exploration")
    dse_sub = p.add_subparsers(dest="dse_cmd", required=True)
    dr = dse_sub.add_parser(
        "run", help="run a search's full generation schedule")
    dr.add_argument("--search", required=True,
                    help="canned search name (see `dse list`) or a JSON "
                         "spec file path")
    dr.add_argument("--seed", type=int, default=None,
                    help="override the search's master seed")
    dr.add_argument("--generations", type=_positive_int, default=None,
                    help="override the generation count")
    dr.add_argument("--population", type=_positive_int, default=None,
                    help="override the population size")
    dr.add_argument("--out", default=None,
                    help="artifact directory (checkpoint, JSON report, "
                         "HTML dashboard); omit to run in memory")
    dr.add_argument("--jobs", type=_positive_int, default=1,
                    help="parallel worker processes per generation")
    dr.add_argument("--service", default=None, metavar="HOST:PORT",
                    help="evaluate generations on a running simulation "
                         "service instead of in-process")
    dr.add_argument("--max-generations", type=_positive_int, default=None,
                    help="stop after N generations (checkpoint stays "
                         "resumable)")
    dr.add_argument("--no-html", action="store_true",
                    help="skip the HTML dashboard")
    dr.set_defaults(func=cmd_dse)
    ds = dse_sub.add_parser(
        "resume", help="continue an interrupted search from its checkpoint")
    ds.add_argument("--out", required=True,
                    help="artifact directory holding dse.ckpt.json")
    ds.add_argument("--search", default=None,
                    help="search name/path (default: the checkpoint's spec)")
    ds.add_argument("--seed", type=int, default=None,
                    help="override the search's master seed")
    ds.add_argument("--generations", type=_positive_int, default=None,
                    help="override the generation count")
    ds.add_argument("--population", type=_positive_int, default=None,
                    help="override the population size")
    ds.add_argument("--jobs", type=_positive_int, default=1,
                    help="parallel worker processes per generation")
    ds.add_argument("--service", default=None, metavar="HOST:PORT",
                    help="evaluate generations on a running simulation "
                         "service instead of in-process")
    ds.add_argument("--max-generations", type=_positive_int, default=None,
                    help="stop after N further generations")
    ds.add_argument("--no-html", action="store_true",
                    help="skip the HTML dashboard")
    ds.set_defaults(func=cmd_dse)
    dp = dse_sub.add_parser(
        "report", help="re-render the HTML dashboard from a written "
                       "dse_report.json")
    dp.add_argument("--out", required=True,
                    help="artifact directory holding dse_report.json")
    dp.set_defaults(func=cmd_dse)
    dc = dse_sub.add_parser(
        "recommend", help="print the recommended operating point as JSON")
    dc.add_argument("--out", required=True,
                    help="artifact directory holding dse_report.json")
    dc.set_defaults(func=cmd_dse)
    dl = dse_sub.add_parser("list", help="list the canned searches")
    dl.set_defaults(func=cmd_dse)

    p = sub.add_parser("metrics",
                       help="fetch a running service's metrics")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--json", action="store_true",
                   help="JSON snapshot instead of Prometheus text")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("fleet",
                       help="gateway + worker fleet (serve / bench / "
                            "status / soak)")
    fleet_sub = p.add_subparsers(dest="fleet_cmd", required=True)
    fs = fleet_sub.add_parser(
        "serve", help="run a gateway over N worker nodes")
    fs.add_argument("--host", default="127.0.0.1")
    fs.add_argument("--port", type=int, default=8643,
                    help="gateway TCP port (0 binds an ephemeral port)")
    fs.add_argument("--nodes", type=_positive_int, default=2,
                    help="worker nodes to start with")
    fs.add_argument("--shards", type=_positive_int, default=1,
                    help="worker-pool shards per node")
    fs.add_argument("--workers-per-shard", type=_positive_int, default=2,
                    help="processes per shard, per node")
    fs.add_argument("--inline", action="store_true",
                    help="thread workers instead of process pools")
    fs.add_argument("--in-process", action="store_true",
                    help="nodes on the gateway's event loop instead of "
                         "python -m repro serve subprocesses")
    fs.add_argument("--no-autoscale", action="store_true",
                    help="fixed fleet size (no control loop)")
    fs.add_argument("--max-nodes", type=_positive_int, default=8,
                    help="autoscaler growth ceiling")
    fs.add_argument("--duration", type=float, default=None,
                    help="serve for N seconds then drain (default: forever)")
    fs.set_defaults(func=cmd_fleet)
    fb = fleet_sub.add_parser(
        "bench", help="breaking-point ramp; writes BENCH_fleet.json")
    fb.add_argument("--nodes", type=_positive_int, default=3,
                    help="fleet size the scaled ramp starts with")
    fb.add_argument("--shards", type=_positive_int, default=1,
                    help="worker-pool shards per node")
    fb.add_argument("--workers-per-shard", type=_positive_int, default=2,
                    help="processes per shard, per node")
    fb.add_argument("--inline", action="store_true",
                    help="thread workers (GIL-bound: only for quick "
                         "harness checks, not scaling claims)")
    fb.add_argument("--no-autoscale", action="store_true",
                    help="fixed fleet size during the ramp")
    fb.add_argument("--max-nodes", type=_positive_int, default=5,
                    help="autoscaler growth ceiling")
    fb.add_argument("--no-baseline", action="store_true",
                    help="skip the single-node comparison ramp")
    fb.add_argument("--start-rps", type=float, default=25.0)
    fb.add_argument("--step-rps", type=float, default=25.0)
    fb.add_argument("--max-steps", type=_positive_int, default=8)
    fb.add_argument("--requests-per-step", type=_positive_int, default=50)
    fb.add_argument("--slo-p95", type=float, default=1.0,
                    help="latency SLO in seconds")
    fb.add_argument("--slo-error-rate", type=float, default=0.02,
                    help="tolerated fraction of non-ok answers")
    fb.add_argument("--stall-s", type=float, default=None,
                    help="switch to the constant-service-time capacity "
                         "mix with this per-request stall in seconds "
                         "(the honest scaling measure on few-core "
                         "hosts); default: CPU-bound simulation mix")
    fb.add_argument("--seed", type=int, default=0)
    fb.add_argument("--out", default="BENCH_fleet.json",
                    help="report path")
    fb.set_defaults(func=cmd_fleet)
    ft = fleet_sub.add_parser(
        "status", help="fetch a running gateway's fleet status")
    ft.add_argument("--host", default="127.0.0.1")
    ft.add_argument("--port", type=int, default=8643)
    ft.set_defaults(func=cmd_fleet)
    fk = fleet_sub.add_parser(
        "soak", help="chaos-over-fleet: kill a node mid-load, demand "
                     "zero wrong answers (exit 1 on failure)")
    fk.add_argument("--seed", type=int, default=0,
                    help="master seed (request set + fault schedule)")
    fk.add_argument("--nodes", type=_positive_int, default=3,
                    help="fleet size")
    fk.add_argument("--requests", type=_positive_int, default=8,
                    help="canonical requests per burst")
    fk.add_argument("--bursts", type=_positive_int, default=4,
                    help="bursts driven through the gateway")
    fk.add_argument("--no-kill", action="store_true",
                    help="leave every node alive (faults only)")
    fk.add_argument("--forward-fault-rate", type=float, default=0.0,
                    help="P(injected connection reset) per forward")
    fk.add_argument("--health-fault-rate", type=float, default=0.0,
                    help="P(injected OSError) per health probe")
    fk.add_argument("--allow-degraded", action="store_true",
                    help="tolerate explicit failures (wrong answers "
                         "still fail the soak)")
    fk.add_argument("--processes", action="store_true",
                    help="process worker pools in the nodes")
    fk.set_defaults(func=cmd_fleet)

    p = sub.add_parser("obs",
                       help="observability: live top, HTML dashboard, smoke")
    obs_sub = p.add_subparsers(dest="obs_cmd", required=True)
    ot = obs_sub.add_parser(
        "top", help="poll a service or gateway and print windowed stats")
    ot.add_argument("--host", default="127.0.0.1")
    ot.add_argument("--port", type=int, default=8642)
    ot.add_argument("--interval", type=float, default=1.0,
                    help="seconds between polls")
    ot.add_argument("--frames", type=_positive_int, default=5,
                    help="frames to print before exiting")
    ot.add_argument("--window", type=float, default=60.0,
                    help="window behind rates and percentiles (s)")
    ot.set_defaults(func=cmd_obs)
    od = obs_sub.add_parser(
        "dashboard", help="scrape a target and write the HTML dashboard")
    od.add_argument("--host", default="127.0.0.1")
    od.add_argument("--port", type=int, default=8642)
    od.add_argument("--interval", type=float, default=1.0,
                    help="seconds between scrapes")
    od.add_argument("--scrapes", type=_positive_int, default=3,
                    help="scrapes before rendering (>= 2 for windows)")
    od.add_argument("--window", type=float, default=60.0,
                    help="window behind rates and percentiles (s)")
    od.add_argument("--out", default="dashboard.html",
                    help="output HTML path")
    od.set_defaults(func=cmd_obs)
    os_ = obs_sub.add_parser(
        "smoke", help="end-to-end observability smoke over a 2-node "
                      "fleet (exit 1 on failure)")
    os_.add_argument("--out", default="obs-smoke",
                     help="artefact directory (report, trace, dashboard)")
    os_.add_argument("--nodes", type=_positive_int, default=2,
                     help="fleet size")
    os_.add_argument("--slow", type=_positive_int, default=12,
                     help="slow (SLO-burning) requests")
    os_.add_argument("--fast", type=_positive_int, default=19,
                     help="fast requests per healthy burst (x2 bursts)")
    os_.set_defaults(func=cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Sugar: ``repro trace <experiment> ...`` means ``trace run ...``
    # (the .npz verbs gen/record/info keep their spelling).
    if (len(argv) >= 2 and argv[0] == "trace"
            and argv[1] not in ("gen", "record", "info", "run")
            and not argv[1].startswith("-")):
        argv.insert(1, "run")
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
