"""ECC-feedback undervolting (Bacha & Teodorescu, paper section 7).

On Itanium, cache SRAM lines fault first when undervolting, and their
single-bit errors are both *correctable* and *observable* through ECC:
a calibration phase lowers the voltage until the weakest line starts
erroring, then backs off one step.  The authors report ~33 % power
reduction.

The paper's observation: this does not transfer to x86, where the first
failures are silent *datapath* errors (IMUL, SIMD) that no ECC sees.
:class:`EccFeedbackUndervolting` models both worlds: on an
Itanium-like chip (SRAM margin narrower than every datapath margin) the
scheme is safe and effective; on an x86-like chip the calibration point
sits *below* the faultable-instruction margins and silently corrupts —
the gap SUIT exists to close.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.model import CpuInstanceFaults
from repro.hardware.cpu import CpuModel
from repro.isa.faultable import FAULTABLE_OPCODES

#: Calibration back-off above the weakest cache line (one VID step).
ECC_BACKOFF_V = 0.005


@dataclass
class EccOutcome:
    """Result of ECC-feedback calibration on one chip.

    Attributes:
        offset_v: calibrated offset (negative volts).
        cache_margin_v: weakest cache line's margin (negative volts).
        corrected_errors_per_gb: steady-state correctable error rate.
        silent_datapath_faults: datapath instructions whose margin the
            calibrated point crosses (0 on Itanium-like chips).
        power_change: package power change at the calibrated point.
    """

    offset_v: float
    cache_margin_v: float
    corrected_errors_per_gb: float
    silent_datapath_faults: int
    power_change: float

    @property
    def secure(self) -> bool:
        return self.silent_datapath_faults == 0


class EccFeedbackUndervolting:
    """Calibrate an undervolt from ECC feedback.

    Args:
        cpu: hardware model.
        chip: chip instance for the datapath margins.
        cache_margin_v: the weakest cache line's margin below the
            conservative curve (negative volts).  Itanium-like parts
            have shallow SRAM margins (~-40 mV, faulting first); x86
            parts have deep ones (~-180 mV, faulting last).
    """

    def __init__(self, cpu: CpuModel, chip: CpuInstanceFaults,
                 cache_margin_v: float = -0.180) -> None:
        if cache_margin_v >= 0:
            raise ValueError("cache margin must be negative")
        self.cpu = cpu
        self.chip = chip
        self.cache_margin_v = cache_margin_v

    def calibrate(self) -> EccOutcome:
        """Run the calibration loop: descend until ECC reports errors,
        back off one step, report what that operating point implies."""
        offset = self.cache_margin_v + ECC_BACKOFF_V
        f = self.cpu.nominal_frequency
        voltage = self.cpu.nominal_voltage + offset

        silent = 0
        for op in FAULTABLE_OPCODES:
            for core in range(self.chip.n_cores):
                if self.chip.faults(op, core, f, voltage):
                    silent += 1

        # Near the knee a small correctable-error rate remains.
        depth_past_knee = max(0.0, -(offset - self.cache_margin_v))
        corrected = float(np.expm1(depth_past_knee * 200.0))

        power = self.cpu.cmos.power_ratio(
            f, voltage, f, self.cpu.nominal_voltage) - 1.0
        return EccOutcome(
            offset_v=offset,
            cache_margin_v=self.cache_margin_v,
            corrected_errors_per_gb=corrected,
            silent_datapath_faults=silent,
            power_change=power,
        )

    @classmethod
    def itanium_like(cls, cpu: CpuModel, chip: CpuInstanceFaults) -> "EccFeedbackUndervolting":
        """The original setting: SRAM faults first (~-40 mV margin)."""
        return cls(cpu, chip, cache_margin_v=-0.040)

    @classmethod
    def x86_like(cls, cpu: CpuModel, chip: CpuInstanceFaults) -> "EccFeedbackUndervolting":
        """The x86 setting the paper observed: SRAM margins deep, the
        datapath faults first, blind to ECC."""
        return cls(cpu, chip, cache_margin_v=-0.180)
