"""Guardband-shaving undervolting (xDVS / CADU++ family, paper section 7).

These schemes measure how far a chip can be undervolted before visible
misbehaviour and run there (xDVS reports >200 mV, CADU++ ~240 mV on
average).  They are very efficient — and the paper's core criticism
applies: (1) the margin they consume *is* the aging/temperature
guardband, and (2) between "visibly crashes" and "computes correctly"
lies the silent-data-corruption window the fault attacks live in.

:class:`NaiveUndervolting` runs a workload at a chosen offset on our
shared fault model and reports efficiency *and* the security outcome:
how many faultable-instruction executions were silently corruptible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.model import CpuInstanceFaults
from repro.hardware.cpu import CpuModel, _effective_sim_offset
from repro.isa.faultable import FAULTABLE_OPCODES
from repro.workloads.trace import FaultableTrace

#: Crash margin: offsets deeper than every instruction's margin by this
#: much hit control logic and visibly crash (Murdock et al.: ~-250 mV).
CRASH_SLACK_V = 0.010


@dataclass
class UndervoltOutcome:
    """Result of one naive-undervolting run.

    Attributes:
        offset_v: applied offset (negative volts).
        duration_s: run duration.
        baseline_duration_s: duration at nominal voltage.
        power_ratio: mean power relative to nominal.
        silent_faults: faultable executions below their margin — each
            one a potential silent data corruption / attack primitive.
        crashed: offset deep enough to break control logic (visible).
        consumed_aging_guardband_v: how much of the aging guardband the
            offset eats (reliability debt, volts).
    """

    offset_v: float
    duration_s: float
    baseline_duration_s: float
    power_ratio: float
    silent_faults: int
    crashed: bool
    consumed_aging_guardband_v: float

    @property
    def perf_change(self) -> float:
        return self.baseline_duration_s / self.duration_s - 1.0

    @property
    def power_change(self) -> float:
        return self.power_ratio - 1.0

    @property
    def efficiency_change(self) -> float:
        return (self.baseline_duration_s
                / (self.duration_s * self.power_ratio)) - 1.0

    @property
    def secure(self) -> bool:
        return self.silent_faults == 0 and not self.crashed


class NaiveUndervolting:
    """xDVS/CADU++-style static undervolting of a whole workload.

    Args:
        cpu: hardware model (provides power/boost response).
        chip: concrete chip instance (provides fault margins).
        instruction_variation_v: margin below which SIMD/IMUL silently
            fault (chip-specific; read from the chip instance).
    """

    def __init__(self, cpu: CpuModel, chip: CpuInstanceFaults) -> None:
        self.cpu = cpu
        self.chip = chip

    def max_visible_safe_offset(self, frequency: Optional[float] = None) -> float:
        """The offset these schemes calibrate to: just above the point
        where the system visibly misbehaves (crash / ECC storm) — i.e.
        the *non-faultable* instruction margin, not the faultable one."""
        f = frequency or self.cpu.nominal_frequency
        worst = min(
            self.chip.max_safe_offset(op, core, f)
            for op in self.chip.margins
            if op not in FAULTABLE_OPCODES
            for core in range(self.chip.n_cores))
        return worst + CRASH_SLACK_V

    def first_silent_fault_offset(self, frequency: Optional[float] = None) -> float:
        """Where silent corruption begins: the most sensitive faultable
        instruction's margin (IMUL, typically)."""
        f = frequency or self.cpu.nominal_frequency
        return max(
            self.chip.max_safe_offset(op, core, f)
            for op in FAULTABLE_OPCODES
            for core in range(self.chip.n_cores))

    def run(self, trace: FaultableTrace, offset_v: float,
            rng: Optional[np.random.Generator] = None) -> UndervoltOutcome:
        """Execute *trace* entirely at *offset_v* (no traps, no curves).

        Every faultable event executes at the reduced voltage; events
        below their margin count as silent faults.
        """
        if offset_v >= 0:
            raise ValueError("undervolting offsets are negative")
        if rng is None:
            rng = np.random.default_rng(0)
        f0 = self.cpu.nominal_frequency
        v0 = self.cpu.nominal_voltage
        response = self.cpu.response

        baseline = trace.duration_s(f0)
        speed = response.score_ratio(offset_v)
        duration = baseline / speed
        f_run = f0 * response.frequency_ratio(offset_v)
        power = self.cpu.cmos.power_ratio(
            f_run, v0 + _effective_sim_offset(offset_v), f0, v0)

        voltage = v0 + offset_v
        silent = 0
        if trace.n_events:
            codes = trace.opcodes
            cores = rng.integers(0, self.chip.n_cores, size=trace.n_events)
            for table_code, opcode in enumerate(trace.opcode_table):
                mask = codes == table_code
                for core in np.unique(cores[mask]):
                    count = int(np.sum(mask & (cores == core)))
                    if count and self.chip.faults(opcode, int(core), f0, voltage):
                        silent += count

        crashed = offset_v < self.max_visible_safe_offset() - CRASH_SLACK_V
        return UndervoltOutcome(
            offset_v=offset_v,
            duration_s=duration,
            baseline_duration_s=baseline,
            power_ratio=power,
            silent_faults=silent,
            crashed=crashed,
            consumed_aging_guardband_v=max(0.0, -offset_v),
        )
