"""Baseline undervolting schemes SUIT is compared against (paper section 7).

The related work falls into three families, all implemented here so the
comparison the paper argues qualitatively can be run quantitatively:

* :mod:`repro.baselines.naive` — guardband-shaving undervolting
  (xDVS / CADU++ style): pick an offset from observed headroom and run
  everything there.  Efficient but *insecure*: faultable instructions
  compute wrong results once the offset crosses their margin, and the
  aging guardband is consumed.
* :mod:`repro.baselines.razor` — Razor-style circuit-level timing
  speculation: shadow latches detect late transitions and replay the
  pipeline, allowing per-chip near-margin voltage at the cost of extra
  circuitry and replay energy.
* :mod:`repro.baselines.ecc` — Bacha & Teodorescu's ECC-feedback
  scheme: calibrate to the weakest cache line's faulting voltage and
  let ECC absorb (and signal) the first errors.

Each baseline reports the same metrics as SUIT (performance, power,
efficiency) plus a *security verdict* from the shared fault model.
"""

from repro.baselines.naive import NaiveUndervolting, UndervoltOutcome
from repro.baselines.razor import RazorCore
from repro.baselines.ecc import EccFeedbackUndervolting

__all__ = [
    "NaiveUndervolting",
    "UndervoltOutcome",
    "RazorCore",
    "EccFeedbackUndervolting",
]
