"""Razor-style timing speculation (Ernst et al., paper section 7).

Razor augments critical-path flip-flops with shadow latches clocked on a
delayed edge: a mismatch means the data arrived late, the pipeline
replays the instruction, and a controller tunes the voltage to sit just
at the error knee.  That finds each chip's true margin — including the
faultable-instruction region SUIT must avoid — at three costs the paper
cites for why Razor never shipped:

* the shadow circuitry adds area and switching power everywhere;
* every error costs a multi-cycle replay;
* the error-rate controller must stay conservative enough that
  metastability and control-path errors remain impossible.

:class:`RazorCore` models that trade-off: given a target error rate it
finds the operating voltage on the error-probability curve of the chip
instance, then charges circuit overhead plus replay costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.model import CpuInstanceFaults
from repro.hardware.cpu import CpuModel
from repro.isa.opcodes import Opcode

#: Added switching power of the shadow latches and error network
#: (literature: a few percent of core power; Razor-II reports ~3 %).
RAZOR_CIRCUIT_OVERHEAD = 0.035

#: Replay penalty per detected timing error, in cycles.
RAZOR_REPLAY_CYCLES = 11

#: The controller keeps a slack band above the first control-path error
#: (metastability guard), in volts.
RAZOR_CONTROL_GUARD_V = 0.015


@dataclass
class RazorOutcome:
    """Operating point and costs the Razor controller settles at.

    Attributes:
        offset_v: achieved undervolt (negative volts).
        error_rate: timing errors per instruction at that point.
        power_ratio: mean power vs nominal, including circuit overhead.
        duration_ratio: runtime vs nominal, including replays.
    """

    offset_v: float
    error_rate: float
    power_ratio: float
    duration_ratio: float

    @property
    def perf_change(self) -> float:
        return 1.0 / self.duration_ratio - 1.0

    @property
    def power_change(self) -> float:
        return self.power_ratio - 1.0

    @property
    def efficiency_change(self) -> float:
        return 1.0 / (self.duration_ratio * self.power_ratio) - 1.0


class RazorCore:
    """A core with Razor-style error detection and replay.

    Args:
        cpu: hardware model.
        chip: concrete chip instance (error-probability curves).
        target_error_rate: errors per executed instruction the
            controller aims for (classic Razor: ~1e-5 .. 1e-3).
    """

    def __init__(self, cpu: CpuModel, chip: CpuInstanceFaults,
                 target_error_rate: float = 1e-4) -> None:
        if not 0 < target_error_rate < 0.1:
            raise ValueError("target error rate must be in (0, 0.1)")
        self.cpu = cpu
        self.chip = chip
        self.target_error_rate = target_error_rate

    def error_rate_at(self, offset_v: float,
                      imul_density: float = 0.0007,
                      simd_density: float = 0.001) -> float:
        """Timing-error probability per instruction at *offset_v*.

        Errors come from the instructions whose margins the offset
        crosses, weighted by how often they execute; Razor detects them
        where plain undervolting silently corrupts.
        """
        f = self.cpu.nominal_frequency
        v = self.cpu.nominal_voltage + offset_v
        rate = 0.0
        densities = {Opcode.IMUL: imul_density}
        share = simd_density / 11.0
        for op in self.chip.margins:
            if op is Opcode.IMUL:
                density = densities[op]
            elif op in densities:
                density = densities[op]
            else:
                from repro.isa.faultable import FAULTABLE_OPCODES
                if op in FAULTABLE_OPCODES:
                    density = share
                else:
                    density = 1.0 - imul_density - simd_density
            p = self.chip.fault_probability(op, 0, f, v)
            rate += density * p
        return min(rate, 1.0)

    def settle(self, imul_density: float = 0.0007,
               simd_density: float = 0.001,
               ipc: float = 1.5) -> RazorOutcome:
        """Find the controller's operating point and its costs."""
        # Bisection on the monotone error-rate(offset) curve.
        lo, hi = -0.300, -0.001
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.error_rate_at(mid, imul_density, simd_density) \
                    > self.target_error_rate:
                lo = mid  # too deep
            else:
                hi = mid
        offset = hi + 0.0  # shallowest voltage meeting the target

        # Control-path guard: stay above the non-faultable margin.
        guard_limit = max(
            self.chip.max_safe_offset(Opcode.ALU, core, self.cpu.nominal_frequency)
            for core in range(self.chip.n_cores)) + RAZOR_CONTROL_GUARD_V
        offset = max(offset, guard_limit)

        error_rate = self.error_rate_at(offset, imul_density, simd_density)
        replay_overhead = error_rate * RAZOR_REPLAY_CYCLES * ipc
        duration_ratio = 1.0 + replay_overhead

        f0 = self.cpu.nominal_frequency
        v0 = self.cpu.nominal_voltage
        power = self.cpu.cmos.power_ratio(f0, v0 + offset, f0, v0)
        power *= 1.0 + RAZOR_CIRCUIT_OVERHEAD
        return RazorOutcome(
            offset_v=offset,
            error_rate=error_rate,
            power_ratio=power,
            duration_ratio=duration_ratio,
        )
