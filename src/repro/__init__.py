"""SUIT: Secure Undervolting with Instruction Traps — full reproduction.

A Python reproduction of Juffinger, Kalinin, Gruss and Mueller, *SUIT:
Secure Undervolting with Instruction Traps* (ASPLOS 2024): the SUIT
hardware-software co-design plus every substrate its evaluation rests on
(CMOS power/DVFS models, undervolting fault models, CPU transition
dynamics, an out-of-order pipeline model, synthetic workload traces,
instruction emulation and the security analysis).

Quickstart:
    >>> from repro import SuitSystem, spec_profile
    >>> suit = SuitSystem.for_cpu("C", strategy_name="fV", voltage_offset=-0.097)
    >>> result = suit.run_profile(spec_profile("557.xz"))
    >>> round(result.efficiency_change, 3) > 0.1
    True
"""

from repro.core import (
    SuitSystem,
    SimResult,
    StrategyParams,
    DEFAULT_PARAMS_INTEL,
    DEFAULT_PARAMS_AMD,
    SuitState,
    FVStrategy,
    FrequencyStrategy,
    VoltageStrategy,
    EmulationStrategy,
    TraceSimulator,
    geomean_change,
    median_change,
)
from repro.core.suit import SuiteResult
from repro.hardware import (
    CpuModel,
    cpu_a_i9_9900k,
    cpu_b_ryzen_7700x,
    cpu_c_xeon_4208,
    cpu_i5_1035g1,
)
from repro.isa import Opcode, FAULTABLE_OPCODES, TABLE1_FAULT_COUNTS
from repro.power import DVFSCurve, PState, GuardbandBudget
from repro.workloads import (
    WorkloadProfile,
    FaultableTrace,
    generate_trace,
    spec_profile,
    all_spec_profiles,
    NGINX_PROFILE,
    VLC_PROFILE,
)

__version__ = "1.0.0"

__all__ = [
    "SuitSystem",
    "SuiteResult",
    "SimResult",
    "StrategyParams",
    "DEFAULT_PARAMS_INTEL",
    "DEFAULT_PARAMS_AMD",
    "SuitState",
    "FVStrategy",
    "FrequencyStrategy",
    "VoltageStrategy",
    "EmulationStrategy",
    "TraceSimulator",
    "geomean_change",
    "median_change",
    "CpuModel",
    "cpu_a_i9_9900k",
    "cpu_b_ryzen_7700x",
    "cpu_c_xeon_4208",
    "cpu_i5_1035g1",
    "Opcode",
    "FAULTABLE_OPCODES",
    "TABLE1_FAULT_COUNTS",
    "DVFSCurve",
    "PState",
    "GuardbandBudget",
    "WorkloadProfile",
    "FaultableTrace",
    "generate_trace",
    "spec_profile",
    "all_spec_profiles",
    "NGINX_PROFILE",
    "VLC_PROFILE",
    "__version__",
]
