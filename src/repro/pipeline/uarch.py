"""Optional microarchitectural detail: branch prediction and memory.

The Table 5 gem5 system has a real front end and cache hierarchy; the
baseline dataflow model abstracts both away.  These opt-in models add
them back:

* :class:`MemoryModel` — per-load latencies drawn from an L1/L2/DRAM
  hit distribution instead of a flat L1 latency.
* :class:`BranchModel` — mispredicted branches stall the front end for
  a refill period, creating fetch bubbles.

They exist mainly for the robustness ablation: the headline Fig 14
result (a 4-cycle IMUL is almost free) must not depend on the idealised
front end — with bubbles and misses there is *more* slack, so the
latency hides at least as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MemoryModel:
    """Load-latency distribution over the cache hierarchy.

    Attributes:
        l1_latency / l2_latency / dram_latency: access latencies (cycles).
        l1_hit_rate: fraction of loads hitting L1.
        l2_hit_rate: fraction of L1 misses hitting L2/LLC.
    """

    l1_latency: int = 5
    l2_latency: int = 14
    dram_latency: int = 150
    l1_hit_rate: float = 0.92
    l2_hit_rate: float = 0.70

    def __post_init__(self) -> None:
        if not 0.0 <= self.l1_hit_rate <= 1.0 or not 0.0 <= self.l2_hit_rate <= 1.0:
            raise ValueError("hit rates must be fractions")
        if not self.l1_latency <= self.l2_latency <= self.dram_latency:
            raise ValueError("latencies must increase down the hierarchy")

    def sample_latency(self, rng: np.random.Generator) -> int:
        """Latency of one load."""
        draw = rng.random()
        if draw < self.l1_hit_rate:
            return self.l1_latency
        if draw < self.l1_hit_rate + (1 - self.l1_hit_rate) * self.l2_hit_rate:
            return self.l2_latency
        return self.dram_latency

    @property
    def mean_latency(self) -> float:
        p_l1 = self.l1_hit_rate
        p_l2 = (1 - p_l1) * self.l2_hit_rate
        p_mem = 1 - p_l1 - p_l2
        return (p_l1 * self.l1_latency + p_l2 * self.l2_latency
                + p_mem * self.dram_latency)


@dataclass(frozen=True)
class BranchModel:
    """Front-end behaviour of branches.

    Attributes:
        mispredict_rate: fraction of branches mispredicted.
        refill_cycles: front-end refill penalty after a misprediction.
    """

    mispredict_rate: float = 0.03
    refill_cycles: int = 14

    def __post_init__(self) -> None:
        if not 0.0 <= self.mispredict_rate <= 1.0:
            raise ValueError("mispredict rate must be a fraction")
        if self.refill_cycles < 0:
            raise ValueError("refill penalty must be non-negative")

    def mispredicts(self, rng: np.random.Generator) -> bool:
        """Whether one branch mispredicts."""
        return bool(rng.random() < self.mispredict_rate)
