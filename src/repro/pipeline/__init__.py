"""Out-of-order pipeline simulator (the gem5 substitute, section 6.1).

A dataflow-limited out-of-order core model: instructions issue when their
operands are ready, a reorder-buffer slot is free and an execution pipe
of the right family is available, and retire in order.  It reproduces the
one microarchitectural effect the paper studies in gem5 (Table 5,
Fig 14): a one-cycle IMUL latency increase vanishes in the out-of-order
window except where multiply chains make it architecturally visible,
while large increases degrade performance almost linearly.
"""

from repro.pipeline.config import PipelineConfig, GEM5_REFERENCE_CONFIG
from repro.pipeline.generator import StreamSpec, generate_stream
from repro.pipeline.scoreboard import OutOfOrderCore, PipelineStats
from repro.pipeline.uarch import MemoryModel, BranchModel

__all__ = [
    "PipelineConfig",
    "GEM5_REFERENCE_CONFIG",
    "StreamSpec",
    "generate_stream",
    "OutOfOrderCore",
    "PipelineStats",
    "MemoryModel",
    "BranchModel",
]
