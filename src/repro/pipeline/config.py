"""Pipeline configuration (paper Table 5).

The paper's gem5 setup: a 2-core 3 GHz x86-64 out-of-order (O3) system
with 64 kB L1I / 32 kB L1D / 2 MB LLC running Ubuntu in full-system
mode.  Our dataflow model needs only the core parameters; the memory
hierarchy collapses into the load latency distribution of the stream
generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opcodes import PortClass


@dataclass(frozen=True)
class PipelineConfig:
    """Out-of-order core parameters.

    Attributes:
        rob_size: reorder-buffer entries (in-flight instruction window).
        issue_width: instructions issued per cycle.
        retire_width: instructions retired per cycle.
        pipes: execution pipes per functional-unit family.
        frequency: core clock in hertz (for time conversions only).
    """

    rob_size: int = 192
    issue_width: int = 6
    retire_width: int = 6
    pipes: Dict[PortClass, int] = field(default_factory=lambda: {
        PortClass.ALU: 4,
        PortClass.MUL: 1,
        PortClass.DIV: 1,
        PortClass.LOAD: 2,
        PortClass.STORE: 1,
        PortClass.BRANCH: 2,
        PortClass.FP: 2,
        PortClass.SIMD: 3,
        PortClass.CRYPTO: 1,
    })
    frequency: float = 3.0e9

    def __post_init__(self) -> None:
        if self.rob_size < 1 or self.issue_width < 1 or self.retire_width < 1:
            raise ValueError("pipeline dimensions must be positive")
        for port, n in self.pipes.items():
            if n < 1:
                raise ValueError(f"need at least one pipe for {port}")


#: The Table 5 system, as far as the dataflow model is concerned.
GEM5_REFERENCE_CONFIG = PipelineConfig()
