"""Dataflow-limited out-of-order core model.

Each instruction issues at the earliest cycle when (a) its register
inputs are ready, (b) a reorder-buffer slot is free (the instruction
``rob_size`` older must have retired), (c) the per-cycle issue bandwidth
is not exhausted and (d) an execution pipe of its family is free; it
completes after its latency and retires in order.

This captures exactly the mechanism behind Fig 14: extra IMUL latency is
invisible while consumers are far away in the dataflow graph, and fully
visible on dependent multiply chains.

Latency overrides let the same stream run with the SUIT-hardened 4-cycle
IMUL (or the 5/6/15/30-cycle sensitivity points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, PortClass, spec_for
from repro.pipeline.config import PipelineConfig
from repro.pipeline.uarch import BranchModel, MemoryModel


@dataclass(frozen=True)
class PipelineStats:
    """Result of one pipeline run.

    Attributes:
        cycles: total cycles to retire the stream.
        instructions: stream length.
    """

    cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def slowdown_vs(self, baseline: "PipelineStats") -> float:
        """Fractional cycle increase relative to *baseline*."""
        return self.cycles / baseline.cycles - 1.0


class OutOfOrderCore:
    """Execute instruction streams on the dataflow model.

    Args:
        config: core dimensions.
        latency_overrides: per-opcode latency replacements (e.g.
            ``{Opcode.IMUL: 4}`` for the SUIT-hardened multiplier).
        memory: optional cache-hierarchy model for load latencies
            (default: the flat L1 latency of the spec table).
        branch: optional front-end model (mispredictions insert fetch
            bubbles).
        seed: RNG seed for the optional stochastic models.
    """

    def __init__(self, config: PipelineConfig,
                 latency_overrides: Optional[Dict[Opcode, int]] = None,
                 memory: Optional[MemoryModel] = None,
                 branch: Optional[BranchModel] = None,
                 seed: int = 0) -> None:
        self.config = config
        self._overrides = dict(latency_overrides or {})
        self.memory = memory
        self.branch = branch
        self._seed = seed
        for op, lat in self._overrides.items():
            if lat < 1:
                raise ValueError(f"latency override for {op} must be >= 1")

    def latency_of(self, opcode: Opcode) -> int:
        """Effective latency of *opcode*, honouring overrides."""
        return self._overrides.get(opcode, spec_for(opcode).latency)

    def run(self, stream: Sequence[Instruction]) -> PipelineStats:
        """Simulate *stream* and return cycle statistics."""
        cfg = self.config
        n = len(stream)
        if n == 0:
            return PipelineStats(cycles=0, instructions=0)

        finish: List[int] = [0] * n
        retire: List[int] = [0] * n
        # Next-free cycle per execution pipe, grouped by family.
        pipes: Dict[PortClass, List[int]] = {
            port: [0] * count for port, count in cfg.pipes.items()
        }
        issue_load: Dict[int, int] = {}  # issue-bandwidth use per cycle
        rng = np.random.default_rng(self._seed)
        fetch_barrier = 0  # front-end bubble after a misprediction

        for i, instr in enumerate(stream):
            spec = spec_for(instr.opcode)
            latency = self.latency_of(instr.opcode)
            if self.memory is not None and instr.opcode is Opcode.LOAD:
                latency = self.memory.sample_latency(rng)
            busy = max(int(round(spec.throughput)), 1)

            ready = fetch_barrier
            for src in instr.sources:
                if 0 <= src < i:
                    ready = max(ready, finish[src])
            if i >= cfg.rob_size:
                # ROB slot frees when the (i - rob_size)-th retires.
                ready = max(ready, retire[i - cfg.rob_size])

            family = pipes[spec.port]
            pipe_idx = min(range(len(family)), key=family.__getitem__)
            cycle = max(ready, family[pipe_idx])
            while issue_load.get(cycle, 0) >= cfg.issue_width:
                cycle += 1
            issue_load[cycle] = issue_load.get(cycle, 0) + 1

            family[pipe_idx] = cycle + busy
            finish[i] = cycle + latency
            if (self.branch is not None and instr.opcode is Opcode.BRANCH
                    and self.branch.mispredicts(rng)):
                # Younger instructions fetch only after the resolve+refill.
                fetch_barrier = max(fetch_barrier,
                                    finish[i] + self.branch.refill_cycles)
            if i == 0:
                retire[i] = finish[i]
            elif i < cfg.retire_width:
                retire[i] = max(finish[i], retire[i - 1])
            else:
                # In-order retire, retire_width per cycle.
                retire[i] = max(finish[i], retire[i - 1],
                                retire[i - cfg.retire_width] + 1)

        return PipelineStats(cycles=retire[-1], instructions=n)

    def imul_latency_sweep(self, stream: Sequence[Instruction],
                           latencies: Sequence[int] = (3, 4, 5, 6, 15, 30),
                           ) -> Dict[int, PipelineStats]:
        """Run *stream* once per IMUL latency (Fig 14's x-axis)."""
        results: Dict[int, PipelineStats] = {}
        for lat in latencies:
            overrides = dict(self._overrides)
            overrides[Opcode.IMUL] = lat
            core = OutOfOrderCore(self.config, overrides,
                                  memory=self.memory, branch=self.branch,
                                  seed=self._seed)
            results[lat] = core.run(stream)
        return results
