"""Synthetic dependency-annotated instruction streams.

The IMUL latency study needs streams whose *dataflow structure* mirrors
real benchmarks: a realistic opcode mix, short-distance register
dependencies, and — decisive for Fig 14 — dependent multiply chains
(hashing, address arithmetic, x264's motion-estimation cost functions)
in benchmark-specific proportions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile

#: Baseline dynamic opcode mix (weights; IMUL is added per-stream).
DEFAULT_MIX: Dict[Opcode, float] = {
    Opcode.ALU: 0.42,
    Opcode.LOAD: 0.22,
    Opcode.STORE: 0.08,
    Opcode.BRANCH: 0.13,
    Opcode.LEA: 0.05,
    Opcode.FADD: 0.04,
    Opcode.FMUL: 0.03,
    Opcode.SIMD_OTHER: 0.03,
}


@dataclass(frozen=True)
class StreamSpec:
    """Parameters of one synthetic stream.

    Attributes:
        n_instructions: stream length.
        imul_density: IMUL fraction of the dynamic stream.
        imul_chain_fraction: fraction of IMULs depending on the previous
            IMUL's result (multiply chains).
        dependency_window: how far back register dependencies reach.
        mean_sources: average register inputs per instruction.
        mix: opcode weights for the non-IMUL body.
    """

    n_instructions: int = 50_000
    imul_density: float = 0.0007
    imul_chain_fraction: float = 0.10
    dependency_window: int = 32
    mean_sources: float = 1.1
    mix: Dict[Opcode, float] = field(default_factory=lambda: dict(DEFAULT_MIX))

    @classmethod
    def from_profile(cls, profile: WorkloadProfile,
                     n_instructions: int = 50_000) -> "StreamSpec":
        """Stream spec matching a workload profile's IMUL statistics."""
        return cls(
            n_instructions=n_instructions,
            imul_density=profile.imul_density,
            imul_chain_fraction=profile.imul_chain_fraction,
        )


def generate_stream(spec: StreamSpec,
                    rng: Optional[np.random.Generator] = None,
                    seed: int = 0) -> List[Instruction]:
    """Generate a dependency-annotated instruction stream.

    Sources point backwards at geometrically distributed distances within
    the dependency window; a chained IMUL additionally consumes the
    previous IMUL's result, which makes its latency architecturally
    visible.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    n = spec.n_instructions
    ops = list(spec.mix)
    weights = np.array([spec.mix[o] for o in ops], dtype=float)
    weights /= weights.sum()

    body_codes = rng.choice(len(ops), size=n, p=weights)
    n_sources = rng.poisson(spec.mean_sources, size=n).clip(0, 2)
    distances = rng.geometric(p=2.0 / spec.dependency_window, size=(n, 2))

    # Place IMULs: a fraction lives in tight dependent chains (each IMUL
    # consuming the previous one's product, a couple of instructions
    # apart — the structure of hashing and multiply-accumulate kernels);
    # the rest is isolated.
    chained_imuls: dict = {}
    isolated_imuls = set()
    target_imuls = int(n * spec.imul_density)
    n_chained = int(target_imuls * spec.imul_chain_fraction)
    mean_chain = 4.0
    placed = 0
    while placed < n_chained:
        length = max(2, int(rng.geometric(1.0 / mean_chain)))
        length = min(length, n_chained - placed + 1)
        start = int(rng.integers(0, max(n - 8 * length, 1)))
        prev = None
        pos = start
        for _ in range(length):
            if pos >= n:
                break
            if pos not in chained_imuls:
                chained_imuls[pos] = prev
                prev = pos
                placed += 1
            pos += int(rng.integers(2, 4))
    n_isolated = max(target_imuls - len(chained_imuls), 0)
    if n_isolated:
        for pos in rng.integers(0, n, size=n_isolated):
            isolated_imuls.add(int(pos))

    stream: List[Instruction] = []
    for i in range(n):
        chain_prev = chained_imuls.get(i, None) if i in chained_imuls else None
        if i in chained_imuls or i in isolated_imuls:
            opcode = Opcode.IMUL
        else:
            opcode = ops[body_codes[i]]
        sources = []
        for k in range(int(n_sources[i])):
            j = i - int(distances[i, k])
            if j >= 0:
                sources.append(j)
        if opcode is Opcode.IMUL and chain_prev is not None:
            sources = [chain_prev] + sources[:1]
        stream.append(Instruction(opcode=opcode, sources=tuple(sources)))
    return stream
