"""Tests for per-core offset binning."""

import numpy as np
import pytest

from repro.core.percore import (
    PerCorePlan,
    mean_power_ratio,
    per_core_gain,
    plan_per_core_offsets,
)
from repro.faults.model import FaultModel
from repro.hardware.models import cpu_c_xeon_4208

FREQS = (2.0e9, 3.0e9)


@pytest.fixture(scope="module")
def cpu():
    return cpu_c_xeon_4208()


@pytest.fixture(scope="module")
def chip(cpu):
    model = FaultModel(core_sigma_v=0.012)
    return model.sample_chip(cpu.conservative_curve, 8,
                             np.random.default_rng(7), exhibits=True)


@pytest.fixture(scope="module")
def plan(chip):
    return plan_per_core_offsets(chip, FREQS)


class TestPlanning:
    def test_all_offsets_negative(self, plan):
        assert all(off < 0 for off in plan.per_core_offsets_v)

    def test_uniform_is_the_weakest_core(self, plan):
        assert plan.uniform_offset_v == max(plan.per_core_offsets_v)

    def test_spread_reflects_core_variation(self, plan):
        assert plan.spread_v > 0.005  # core sigma 12 mV must show

    def test_budget_cap_respected(self, chip):
        capped = plan_per_core_offsets(chip, FREQS, budget_cap_v=-0.080)
        assert all(off >= -0.080 for off in capped.per_core_offsets_v)

    def test_validation(self, chip):
        with pytest.raises(ValueError):
            plan_per_core_offsets(chip, FREQS, budget_cap_v=0.05)
        with pytest.raises(ValueError):
            plan_per_core_offsets(chip, FREQS, preserved_guardband_v=-0.1)


class TestGain:
    def test_per_core_saves_at_least_uniform(self, cpu, plan):
        assert per_core_gain(cpu, plan) >= 0.0

    def test_gain_positive_with_spread(self, cpu, plan):
        assert per_core_gain(cpu, plan) > 0.002

    def test_no_spread_no_gain(self, cpu):
        plan = PerCorePlan(per_core_offsets_v=(-0.07,) * 8,
                           uniform_offset_v=-0.07)
        assert per_core_gain(cpu, plan) == pytest.approx(0.0)

    def test_mean_power_monotone_in_depth(self, cpu):
        shallow = mean_power_ratio(cpu, [-0.05] * 4)
        deep = mean_power_ratio(cpu, [-0.10] * 4)
        assert deep < shallow
