"""Tests for the heterogeneous-CPU comparison model."""

import pytest

from repro.core.heterogeneous import (
    CoreTypeRates,
    MixOutcome,
    PhaseTask,
    best_static_split,
    static_pe_outcome,
    suit_outcome,
)


@pytest.fixture
def rates():
    return CoreTypeRates()


def _mix(light, heavy):
    return ([PhaseTask(f"l{i}", 0.95) for i in range(light)]
            + [PhaseTask(f"h{i}", 0.05) for i in range(heavy)])


class TestModels:
    def test_phase_task_validated(self):
        with pytest.raises(ValueError):
            PhaseTask("x", 1.5)

    def test_rates_from_cpu(self, cpu_a):
        rates = CoreTypeRates.from_cpu(cpu_a)
        speed, power = rates.efficient
        assert speed > 1.0
        assert power < 1.0

    def test_edp_penalises_slow_cores(self):
        fast = MixOutcome("fast", throughput=1.0, power=1.0)
        slow = MixOutcome("slow", throughput=0.55, power=0.35)
        assert slow.efficiency > fast.efficiency  # raw perf/watt
        assert slow.edp_score < fast.edp_score  # balanced metric


class TestSuitOutcome:
    def test_trap_free_mix_runs_efficient(self, rates):
        outcome = suit_outcome(_mix(4, 0), rates)
        s_e, p_e = rates.efficient
        assert outcome.throughput == pytest.approx(4 * (0.95 * s_e + 0.05))
        assert outcome.power < 4.0

    def test_trap_dense_mix_runs_conservative(self, rates):
        outcome = suit_outcome(_mix(0, 4), rates)
        assert outcome.power == pytest.approx(4 * (0.05 * rates.efficient[1]
                                                   + 0.95), rel=1e-6)


class TestStaticSplit:
    def test_little_cores_trade_throughput(self, rates):
        all_p = static_pe_outcome(_mix(2, 2), rates, 0)
        with_e = static_pe_outcome(_mix(2, 2), rates, 2)
        assert with_e.throughput < all_p.throughput
        assert with_e.power < all_p.power

    def test_bounds_checked(self, rates):
        with pytest.raises(ValueError):
            static_pe_outcome(_mix(1, 1), rates, 5)

    def test_best_split_is_a_valid_candidate(self, rates):
        tasks = _mix(3, 3)
        best = best_static_split(tasks, rates)
        candidates = [static_pe_outcome(tasks, rates, k).edp_score
                      for k in range(7)]
        assert best.edp_score == pytest.approx(max(candidates))


class TestHeadlineClaim:
    def test_suit_beats_fixed_split_on_every_mix_edp(self, rates):
        for light, heavy in ((8, 0), (4, 4), (0, 8)):
            suit = suit_outcome(_mix(light, heavy), rates)
            static = static_pe_outcome(_mix(light, heavy), rates, 4)
            assert suit.edp_score > static.edp_score

    def test_suit_throughput_always_at_least_conservative(self, rates):
        for light, heavy in ((8, 0), (4, 4), (0, 8)):
            outcome = suit_outcome(_mix(light, heavy), rates)
            assert outcome.throughput >= 8.0 - 1e-9
