"""The end-to-end observability smoke (``repro.obs.smoke``).

One reduced run of the real thing — fleet, traffic, scrapes, SLO
evaluation, trace merge, dashboard — then assertions over the report
and the artefacts it wrote.  This is the tier-1 stand-in for the CI
``make obs-smoke`` target.
"""

import json

import pytest

from repro.obs.smoke import ObsSmokeConfig, run_obs_smoke
from repro.obs.tracer import get_tracer


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs-smoke")
    cfg = ObsSmokeConfig(out_dir=out, n_nodes=2, n_slow=8, n_fast=12,
                         slow_sleep_s=0.15, settle_s=0.7)
    result = run_obs_smoke(cfg)
    result["_out"] = out
    return result


class TestObsSmoke:
    def test_every_check_passes(self, report):
        assert report["passed"], report["checks"]

    def test_windowed_p95_diverges_from_cumulative(self, report):
        assert report["windowed_p95_s"] < report["cumulative_p95_s"]

    def test_stitched_multi_process_traces(self, report):
        assert report["n_stitched_traces"] >= 1
        assert report["n_process_lanes"] >= 3
        assert all(t["n_lanes"] >= 3 for t in report["stitched_traces"])

    def test_alert_fired_then_resolved(self, report):
        alerts = report["alerts"]
        assert any(a["exemplar_trace_ids"] for a in alerts)
        assert alerts and not alerts[-1]["firing"]

    def test_artefacts_written_and_parse(self, report):
        out = report["_out"]
        trace = json.loads((out / "fleet_trace.json").read_text())
        assert trace["traceEvents"]
        on_disk = json.loads((out / "report.json").read_text())
        assert on_disk["passed"]
        assert (out / "dashboard.html").read_text().startswith("<!DOCTYPE")

    def test_previous_tracer_restored(self, report):
        # The smoke must not leak its recording tracer into the
        # process (tier-1 tests run after it in the same process).
        assert get_tracer().enabled is False
