"""Unit tests for :mod:`repro.dse` — genomes, objectives, evaluation,
the NSGA-II runner, the HTML report and the ``dse`` CLI.

The issue's load-bearing assertion lives here too: generation
evaluation must flow through the vectorized ``simulate_sweep`` kernel
(observed via ``batchsim_configs_total`` growth), never through
per-genome scalar runs.
"""

from __future__ import annotations

import json
from html.parser import HTMLParser

import numpy as np
import pytest

from repro.dse import (CANNED_SEARCHES, DseRunner, DseSpec, Genome,
                       LocalEvalBackend, ReportBuilder, SimJob,
                       canned_search, crossover, mutate, random_genome,
                       resolve_search, security_headroom_mv, violation_mv,
                       worst_kept_offset_v)
from repro.dse.evaluate import evaluate_job_group
from repro.dse.runner import HTML_NAME, REPORT_NAME
from repro.dse.space import (E_CANONICAL_DEADLINE_US,
                             E_CANONICAL_IMUL_LATENCY, load_search)
from repro.hardware.models import ALL_CPU_FACTORIES

#: One-generation search used by the runner/CLI tests (sub-second).
TINY = DseSpec(name="tiny", generations=1, population=4, seed=2,
               deadlines_us=(20.0, 50.0), offsets_mv=(-70.0, -97.0))


class TestGenome:
    def test_rejects_bad_genes(self):
        good = dict(deadline_us=30.0, strategy="fV", offset_mv=-97.0,
                    corner="typical", imul_latency=4)
        with pytest.raises(ValueError):
            Genome(**{**good, "deadline_us": -1.0})
        with pytest.raises(ValueError):
            Genome(**{**good, "strategy": "turbo"})
        with pytest.raises(ValueError):
            Genome(**{**good, "offset_mv": 20.0})
        with pytest.raises(ValueError):
            Genome(**{**good, "corner": "median"})
        with pytest.raises(ValueError):
            Genome(**{**good, "imul_latency": 2})

    def test_e_strategy_canonicalizes_inert_genes(self):
        raw = Genome(deadline_us=700.0, strategy="e", offset_mv=-97.0,
                     corner="typical", imul_latency=6)
        canon = raw.canonical()
        assert canon.deadline_us == E_CANONICAL_DEADLINE_US
        assert canon.imul_latency == E_CANONICAL_IMUL_LATENCY
        # Phenotype-equivalent 'e' genomes share one content address.
        other = Genome(deadline_us=10.0, strategy="e", offset_mv=-97.0,
                       corner="typical", imul_latency=3)
        assert raw.canonical_key() == other.canonical_key()
        # Non-'e' genomes keep every gene distinct.
        fv = Genome(deadline_us=30.0, strategy="fV", offset_mv=-97.0,
                    corner="typical", imul_latency=4)
        assert fv.canonical() == fv

    def test_json_round_trip_and_unknown_fields(self):
        genome = Genome(deadline_us=50.0, strategy="f", offset_mv=-110.0,
                        corner="slow", imul_latency=5)
        assert Genome.from_json_dict(genome.to_json_dict()) == genome
        with pytest.raises(ValueError):
            Genome.from_json_dict({**genome.to_json_dict(), "turbo": 1})

    def test_imul_extra_cycles_counts_above_baseline(self):
        genome = Genome(deadline_us=50.0, strategy="f", offset_mv=-110.0,
                        corner="slow", imul_latency=5)
        assert genome.imul_extra_cycles == 2


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DseSpec(name="")
        with pytest.raises(ValueError):
            DseSpec(name="x", population=3)
        with pytest.raises(ValueError):
            DseSpec(name="x", strategies=("warp",))
        with pytest.raises(ValueError):
            DseSpec(name="x", offsets_mv=(50.0,))
        with pytest.raises(ValueError):
            DseSpec(name="x", weights=(1.0, 1.0))

    def test_digest_tracks_identity(self):
        spec = canned_search("nginx_quick")
        assert spec.digest() == DseSpec.from_json_dict(
            spec.to_json_dict()).digest()
        assert spec.digest() != spec.with_overrides(seed=99).digest()

    def test_resolve_search_by_name_and_path(self, tmp_path):
        assert resolve_search("nginx_pareto") == \
            CANNED_SEARCHES["nginx_pareto"]
        path = tmp_path / "custom.json"
        path.write_text(json.dumps({"search": TINY.to_json_dict()}))
        assert resolve_search(str(path)) == TINY
        assert load_search(path) == TINY
        with pytest.raises(ValueError):
            resolve_search("no_such_search")


class TestOperators:
    def test_operators_are_pure_functions_of_the_generator(self):
        spec = canned_search("nginx_pareto")
        a = random_genome(spec, np.random.default_rng(1))
        b = random_genome(spec, np.random.default_rng(2))
        assert a == random_genome(spec, np.random.default_rng(1))
        assert mutate(a, spec, np.random.default_rng(3)) == \
            mutate(a, spec, np.random.default_rng(3))
        assert crossover(a, b, np.random.default_rng(4)) == \
            crossover(a, b, np.random.default_rng(4))

    def test_variation_stays_on_the_grids(self):
        spec = canned_search("nginx_pareto")
        rng = np.random.default_rng(7)
        genome = random_genome(spec, rng)
        for _ in range(200):
            genome = mutate(genome, spec, rng)
            assert genome.deadline_us in spec.deadlines_us
            assert genome.strategy in spec.strategies
            assert genome.offset_mv in spec.offsets_mv
            assert genome.corner in spec.corners
            assert genome.imul_latency in spec.imul_latencies

    def test_crossover_mixes_only_parent_genes(self):
        spec = canned_search("nginx_pareto")
        a = random_genome(spec, np.random.default_rng(1))
        b = random_genome(spec, np.random.default_rng(2))
        child = crossover(a, b, np.random.default_rng(5))
        for gene in ("deadline_us", "strategy", "offset_mv", "corner",
                     "imul_latency"):
            assert getattr(child, gene) in (getattr(a, gene),
                                            getattr(b, gene))


class TestSecurityMargin:
    CPU = staticmethod(lambda: ALL_CPU_FACTORIES["C"]())

    def test_imul_hardening_buys_undervolt_depth(self):
        cpu = self.CPU()
        shallow = worst_kept_offset_v(cpu, "typical", 3)
        deep = worst_kept_offset_v(cpu, "typical", 4)
        # At base latency the unhardened IMUL binds well above the
        # paper's -97 mV; one extra pipeline cycle clears it.
        assert shallow > -0.097
        assert deep < -0.097 - 0.100

    def test_corners_order_the_margins(self):
        cpu = self.CPU()
        offsets = [worst_kept_offset_v(cpu, corner, 4)
                   for corner in ("fast", "typical", "slow", "worst")]
        # Slower corners fault earlier: bounds move toward zero.
        assert offsets == sorted(offsets)

    def test_headroom_and_violation(self):
        cpu = self.CPU()
        genome = Genome(deadline_us=30.0, strategy="fV", offset_mv=-97.0,
                        corner="typical", imul_latency=4)
        headroom = security_headroom_mv(cpu, genome)
        bound = worst_kept_offset_v(cpu, "typical", 4)
        assert headroom == pytest.approx(-97.0 - bound * 1000.0)
        assert violation_mv(headroom, 100.0) == 0.0
        assert violation_mv(50.0, 100.0) == 50.0
        assert violation_mv(150.0, 100.0) == 0.0

    def test_corner_variants_share_one_simulation(self):
        spec = canned_search("nginx_quick")
        base = dict(deadline_us=30.0, strategy="fV", offset_mv=-97.0,
                    imul_latency=4)
        jobs = {SimJob.from_genome(
                    spec, Genome(corner=corner, **base)).key()
                for corner in ("fast", "typical", "slow", "worst")}
        assert len(jobs) == 1


class TestImulTaxEquivalence:
    def test_one_extra_cycle_matches_builtin_hardening(self):
        from repro.core.batchsim import SweepConfig, simulate_sweep
        from repro.workloads import resolve_profile
        from repro.workloads.tracecache import cached_trace

        spec = canned_search("nginx_quick")
        cpu = ALL_CPU_FACTORIES[spec.cpu]()
        profile = resolve_profile(spec.workload)
        trace = cached_trace(profile, spec.seed)
        builtin = simulate_sweep(
            cpu, profile, trace,
            [SweepConfig(strategy="fV", voltage_offset=-0.097,
                         seed=spec.seed, harden_imul=True)])[0]
        genome = Genome(deadline_us=30.0, strategy="fV", offset_mv=-97.0,
                        corner="typical", imul_latency=4)
        job = SimJob.from_genome(spec, genome)
        payload = evaluate_job_group(spec, [job])[job.key()]
        # The post-applied +1-cycle tax is bit-equal to the simulator's
        # built-in hardened-IMUL path (30 us is the default deadline).
        assert payload["duration_s"] == builtin.duration_s
        assert payload["energy_rel"] == builtin.energy_rel

    def test_job_groups_must_share_a_deadline(self):
        spec = canned_search("nginx_quick")
        jobs = [SimJob(cpu="C", workload="nginx", strategy="fV",
                       offset_mv=-97.0, deadline_us=d,
                       imul_extra_cycles=0, n_cores=1)
                for d in (20.0, 50.0)]
        with pytest.raises(ValueError):
            evaluate_job_group(spec, jobs)


class TestLocalEvalBackend:
    GENOMES = [
        Genome(deadline_us=20.0, strategy="fV", offset_mv=-97.0,
               corner="typical", imul_latency=4),
        Genome(deadline_us=20.0, strategy="f", offset_mv=-70.0,
               corner="fast", imul_latency=3),
        Genome(deadline_us=50.0, strategy="e", offset_mv=-97.0,
               corner="typical", imul_latency=4),
        # Same job as the first genome, different corner.
        Genome(deadline_us=20.0, strategy="fV", offset_mv=-97.0,
               corner="worst", imul_latency=4),
    ]

    def test_generations_flow_through_simulate_sweep(self):
        from repro.obs import get_registry

        spec = canned_search("nginx_quick")
        counter = get_registry().counter("batchsim_configs_total",
                                         label_names=("path",))
        before_vector = counter.value(path="vector")
        before_estimate = counter.value(path="estimate")
        before_scalar = counter.value(path="scalar")

        backend = LocalEvalBackend(spec)
        records = backend.evaluate(self.GENOMES)

        # 3 unique jobs: two vectorized sweeps entries + one estimate,
        # and never the scalar fallback.
        assert counter.value(path="vector") == before_vector + 2
        assert counter.value(path="estimate") == before_estimate + 1
        assert counter.value(path="scalar") == before_scalar
        assert [r["path"] for r in records] == \
            ["vector", "vector", "estimate", "vector"]

        # Re-evaluating adds zero simulations: all memo hits.
        backend.evaluate(self.GENOMES)
        assert counter.value(path="vector") == before_vector + 2
        assert backend.memo_hits == len(self.GENOMES)

    def test_records_follow_input_order_and_dedupe(self):
        spec = canned_search("nginx_quick")
        backend = LocalEvalBackend(spec)
        records = backend.evaluate(self.GENOMES)
        assert len(records) == 4
        assert len(backend.sims) == 3
        # Corner twins share the simulation but not the margin.
        assert records[0]["sim_key"] == records[3]["sim_key"]
        assert records[0]["duration_ratio"] == records[3]["duration_ratio"]
        assert records[0]["headroom_mv"] > records[3]["headroom_mv"]

    def test_on_disk_cache_spans_backends(self, tmp_path):
        from repro.runtime.cache import ResultCache

        spec = canned_search("nginx_quick")
        cache = ResultCache(tmp_path / "cache")
        first = LocalEvalBackend(spec, cache=cache)
        records = first.evaluate(self.GENOMES)
        assert first.cache_hits == 0

        second = LocalEvalBackend(spec, cache=cache)
        again = second.evaluate(self.GENOMES)
        assert second.cache_hits == len(second.sims) == 3
        assert json.dumps(records, sort_keys=True) == \
            json.dumps(again, sort_keys=True)


class TestRunner:
    def test_populations_and_survivor_counts(self):
        spec = canned_search("nginx_quick")
        runner = DseRunner(spec)
        report = runner.run()
        assert len(runner.populations) == spec.generations
        assert all(len(pop) == spec.population
                   for pop in runner.populations)
        assert report["n_generations"] == spec.generations

    def test_front_members_do_not_dominate_each_other(self):
        from repro.dse.pareto import dominates

        report = DseRunner(canned_search("nginx_quick")).run()
        front = report["front"]
        assert front
        for a in front:
            for b in front:
                assert not dominates(a["objectives"], b["objectives"],
                                     a["violation_mv"], b["violation_mv"])

    def test_every_dominated_candidate_is_excluded(self):
        from repro.dse.pareto import dominates

        report = DseRunner(canned_search("nginx_quick")).run()
        front_keys = {r["key"] for r in report["front"]}
        front = report["front"]
        for record in report["all_evaluated"]:
            if record["key"] in front_keys:
                continue
            assert any(dominates(f["objectives"], record["objectives"],
                                 f["violation_mv"], record["violation_mv"])
                       for f in front)

    def test_generation_metrics_grow(self):
        from repro.obs import get_registry

        registry = get_registry()
        generations = registry.counter("dse_generations_total")
        genomes = registry.counter("dse_genomes_total",
                                   label_names=("path",))
        gen_before = generations.value()
        genome_before = sum(genomes.series().values())
        DseRunner(TINY).run()
        assert generations.value() == gen_before + TINY.generations
        assert sum(genomes.series().values()) == \
            genome_before + TINY.population

    def test_outputs_written_and_html_parses(self, tmp_path):
        runner = DseRunner(TINY, out_dir=tmp_path)
        runner.run()
        report = runner.write_outputs()
        on_disk = json.loads((tmp_path / REPORT_NAME).read_text())
        assert on_disk == report
        html = (tmp_path / HTML_NAME).read_text()
        parser = HTMLParser()
        parser.feed(html)
        parser.close()
        assert TINY.name in html
        assert "Pareto scatter" in html

    def test_report_builder_rejects_other_schemas(self):
        with pytest.raises(ValueError):
            ReportBuilder({"schema": "repro.campaign-report.v1"})

    def test_recommendation_is_a_frontier_member(self):
        report = DseRunner(canned_search("nginx_quick")).run()
        rec = report["recommendation"]
        front_keys = {r["key"] for r in report["front"]}
        assert rec["key"] in front_keys
        assert rec["method"] == "topsis"
        assert set(rec["objectives"]) == {"duration_ratio", "energy_ratio",
                                          "security_headroom_mv"}


class TestGoldenSearch:
    """The issue's end-to-end acceptance on the canned nginx search."""

    @pytest.fixture(scope="class")
    def report(self):
        return DseRunner(canned_search("nginx_pareto")).run()

    def test_frontier_is_nonempty_and_violation_free(self, report):
        assert report["front"]
        assert report["front_violations"] == 0
        assert all(r["violation_mv"] == 0.0 for r in report["front"])

    def test_recommendation_lands_at_the_papers_offset(self, report):
        rec = report["recommendation"]
        assert rec["offset_mv"] == pytest.approx(-97.0)
        assert rec["genome"]["strategy"] == "fV"

    def test_hypervolume_never_shrinks_across_generations(self, report):
        values = [g["hypervolume"] for g in report["generations"]]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestCli:
    def test_dse_subcommands_registered(self):
        from repro.cli import build_parser

        text = build_parser().format_help()
        assert "dse" in text

    def test_list_names_the_canned_searches(self, capsys):
        from repro.cli import main

        assert main(["dse", "list"]) == 0
        out = capsys.readouterr().out
        assert "nginx_pareto" in out and "nginx_quick" in out

    def test_run_recommend_report_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(TINY.to_json_dict()))
        out = tmp_path / "artifacts"
        assert main(["dse", "run", "--search", str(spec_path),
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "recommended:" in text
        assert (out / REPORT_NAME).exists()
        assert (out / HTML_NAME).exists()

        assert main(["dse", "recommend", "--out", str(out)]) == 0
        rec = json.loads(capsys.readouterr().out)
        assert "offset_mv" in rec and "genome" in rec

        (out / HTML_NAME).unlink()
        assert main(["dse", "report", "--out", str(out)]) == 0
        assert (out / HTML_NAME).exists()

    def test_unknown_search_fails_loudly(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["dse", "run", "--search", "no_such_search"])

    def test_recommend_without_a_report_fails_loudly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["dse", "recommend", "--out", str(tmp_path)])
