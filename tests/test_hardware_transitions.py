"""Unit tests for voltage/frequency transition dynamics (Figs 8-11)."""

import numpy as np
import pytest

from repro.hardware.counters import DelaySpec
from repro.hardware.transitions import (
    FrequencyTransitionSpec,
    PStateTransitionModel,
    VoltageTransitionSpec,
)


@pytest.fixture
def volt_spec():
    return VoltageTransitionSpec(delay=DelaySpec(350e-6, 22e-6))


@pytest.fixture
def intel_freq_spec():
    return FrequencyTransitionSpec(
        delay=DelaySpec(22e-6, 0.2e-6), stall=DelaySpec(20e-6, 0.4e-6),
        aperf_lags=True)


@pytest.fixture
def amd_freq_spec():
    return FrequencyTransitionSpec(
        delay=DelaySpec(668e-6, 292e-6), staircase_steps=6)


class TestVoltageTransition:
    def test_trajectory_starts_low_ends_high(self, volt_spec, rng):
        times, volts = volt_spec.trajectory(0.8, 0.9, rng)
        assert volts[0] == pytest.approx(0.8, abs=0.01)
        assert volts[-1] == pytest.approx(0.9, abs=0.01)
        assert np.all(np.diff(times) > 0)

    def test_settle_time_recovery(self, volt_spec, rng):
        settles = []
        for _ in range(10):
            times, volts = volt_spec.trajectory(0.8, 0.9, rng)
            settles.append(
                volt_spec.settle_time_from_trajectory(times, volts, 0.9))
        assert np.mean(settles) == pytest.approx(350e-6, rel=0.15)

    def test_quantised_to_regulator_steps(self, rng):
        spec = VoltageTransitionSpec(delay=DelaySpec(350e-6), step_v=0.005,
                                     noise_v=0.0)
        _, volts = spec.trajectory(0.8, 0.9, rng)
        steps = np.round(volts / 0.005) * 0.005
        assert np.allclose(volts, steps, atol=1e-9)


class TestFrequencyTransition:
    def test_intel_has_stall(self, intel_freq_spec, rng):
        assert intel_freq_spec.sample_stall(rng) > 0

    def test_amd_has_no_stall(self, amd_freq_spec, rng):
        assert amd_freq_spec.sample_stall(rng) == 0.0

    def test_intel_trajectory_has_sample_gap(self, intel_freq_spec, rng):
        times, _ = intel_freq_spec.trajectory(3.0e9, 2.6e9, rng)
        gaps = np.diff(times)
        # The stall leaves a gap much larger than the sample interval.
        assert gaps.max() > 5 * intel_freq_spec.sample_interval_s

    def test_intel_aperf_artifact(self, intel_freq_spec, rng):
        times, freqs = intel_freq_spec.trajectory(3.0e9, 2.6e9, rng)
        post = freqs[times > 0]
        assert abs(post[0] - 3.0e9) < 0.2e9  # first sample still "old"
        assert abs(post[-1] - 2.6e9) < 0.2e9

    def test_amd_staircase_has_intermediate_plateaus(self, amd_freq_spec, rng):
        times, freqs = amd_freq_spec.trajectory(3.0e9, 1.8e9, rng)
        mid = freqs[(freqs > 1.95e9) & (freqs < 2.85e9)]
        assert mid.size > 0

    def test_amd_delay_statistics(self, amd_freq_spec, rng):
        delays = [amd_freq_spec.sample_delay(rng) for _ in range(300)]
        assert np.mean(delays) == pytest.approx(668e-6, rel=0.1)


class TestPStateTransitionModel:
    def test_xeon_voltage_first_combined_delay(self, volt_spec, intel_freq_spec, rng):
        model = PStateTransitionModel(
            frequency=intel_freq_spec, voltage=volt_spec, voltage_first=True)
        total, stall = model.pstate_change(rng, needs_voltage=True)
        # Voltage settle dominates; the stall covers only the clock part.
        assert total > 300e-6
        assert stall < 30e-6

    def test_frequency_only_when_no_voltage_needed(self, volt_spec,
                                                   intel_freq_spec, rng):
        model = PStateTransitionModel(
            frequency=intel_freq_spec, voltage=volt_spec, voltage_first=True)
        total, _ = model.pstate_change(rng, needs_voltage=False)
        assert total < 30e-6

    def test_no_voltage_control_raises(self, amd_freq_spec, rng):
        model = PStateTransitionModel(frequency=amd_freq_spec, voltage=None)
        with pytest.raises(ValueError):
            model.voltage_change(rng)
