"""Tests for the ablation experiments (design choices DESIGN.md calls out)."""

import pytest

from repro.experiments import ablation_cores, ablation_imul, ablation_thrashing


class TestImulHardeningAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_imul.run(seed=0, fast=True)

    def test_trapping_imul_pins_conservative(self, result):
        # Paper section 4.2: IMUL is so frequent that trapping it keeps
        # the CPU permanently on the conservative curve.
        assert result.metric("trap.occupancy").measured < 0.05

    def test_hardening_preserves_the_gain(self, result):
        assert result.metric("harden.efficiency").measured > 0.10
        assert result.metric("trap.efficiency").measured < 0.02
        assert result.metric("hardening_wins").measured == 1.0


class TestThrashingAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_thrashing.run(seed=0, fast=True)

    def test_prevention_collapses_trap_count(self, result):
        assert result.metric("trap_reduction").measured > 0.9

    def test_prevention_improves_performance(self, result):
        assert result.metric("prevention_improves_perf").measured == 1.0

    def test_unprevented_thrashing_is_expensive(self, result):
        assert result.metric("traps_without_prevention").measured > 50


class TestCoreCountAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_cores.run(seed=0, fast=True)

    def test_efficiency_decreases_with_cores(self, result):
        assert result.metric("eff_monotone_decreasing").measured == 1.0

    def test_occupancy_shrinks(self, result):
        assert result.metric("occupancy_shrinks_with_cores").measured == 1.0

    def test_still_positive_fully_loaded(self, result):
        # Paper: even A4 keeps a small edge (+5.8 %).
        assert result.metric("eff_still_positive_at_max_cores").measured == 1.0
