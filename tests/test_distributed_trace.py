"""End-to-end distributed tracing: one request, one stitched span tree.

Drives real requests through the service and the fleet with tracing on
and asserts the propagation contract at each tier:

* the wire protocol carries ``trace_id``/``parent_span`` without
  changing request identity (dedup/cache keys) or the untraced frame;
* a service submit yields a ``service.submit`` span with a
  ``worker.execute`` child in the same trace;
* a gateway submit yields a three-tier tree (gateway -> node ->
  worker) whose merged Chrome trace is time-aligned and orphan-free;
* a killed node mid-soak still leaves every trace connected, with the
  rerouted trace ids attached to ``fleet_reroutes_total`` as exemplars
  (the chaos half of the contract).
"""

import asyncio

import pytest

from repro.obs.context import (
    assert_span_containment,
    orphan_spans,
    span_index,
    span_tree,
    trace_ids_in,
)
from repro.obs.tracer import disable_tracing, enable_tracing
from repro.service import (
    ServiceConfig,
    SimRequest,
    SimulationService,
)
from repro.service.request import InvalidRequestError

THREAD_CONFIG = dict(use_processes=False, n_shards=1, workers_per_shard=2,
                     batch_window_s=0.002, default_timeout_s=30.0)


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


@pytest.fixture
def tracer():
    recording = enable_tracing(capacity=100_000)
    yield recording
    disable_tracing()


class TestRequestTraceFields:
    def test_round_trip(self):
        request = SimRequest("C", "557.xz", trace_id="ab" * 8,
                             parent_span="cd" * 4)
        clone = SimRequest.from_dict(request.to_dict())
        assert clone.trace_id == "ab" * 8
        assert clone.parent_span == "cd" * 4

    def test_identity_excludes_trace_context(self):
        plain = SimRequest("C", "557.xz", seed=7)
        traced = SimRequest("C", "557.xz", seed=7, trace_id="ab" * 8,
                            parent_span="cd" * 4)
        assert plain.canonical_key() == traced.canonical_key()
        assert "trace_id" not in traced.canonical_dict()

    def test_untraced_frame_is_byte_identical(self):
        # Tracing must not change the wire protocol for untraced
        # requests: the fields only appear when set.
        untraced = SimRequest("C", "557.xz").to_dict()
        assert "trace_id" not in untraced
        assert "parent_span" not in untraced

    def test_invalid_trace_fields_rejected(self):
        for bad in ({"trace_id": ""}, {"parent_span": 7}):
            with pytest.raises(InvalidRequestError):
                SimRequest("C", "557.xz", **bad).validate()


class TestServiceSpans:
    def test_submit_records_service_and_worker_spans(self, tracer):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                request = SimRequest("C", "__sleep__:0.01",
                                     trace_id="ee" * 8,
                                     parent_span="ff" * 4)
                response = await service.submit(request)
                return response

        response = run(scenario())
        assert response.ok
        events = tracer.to_chrome_trace()["traceEvents"]
        spans = span_index(events, "ee" * 8)
        by_name = {e["name"]: e for e in spans.values()}
        assert set(by_name) == {"service.submit", "worker.execute"}
        submit_args = by_name["service.submit"]["args"]
        worker_args = by_name["worker.execute"]["args"]
        # The caller's span parents the submit; the submit's span
        # parents the worker's execution.
        assert submit_args["parent_span"] == "ff" * 4
        assert worker_args["parent_span"] == submit_args["span_id"]
        assert worker_args["proc"].startswith("worker:")
        # The fabricated caller span was never recorded here, so the
        # submit span itself reads as the (expected) orphan; the
        # worker span must NOT — its parent is in this trace.
        orphans = orphan_spans(events, "ee" * 8)
        assert [e["name"] for e in orphans] == ["service.submit"]

    def test_untraced_request_gets_a_minted_root(self, tracer):
        # With a recording tracer the service is the trace's entry
        # tier: it mints the trace id and roots the tree itself.
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                return await service.submit(SimRequest("C",
                                                       "__sleep__:0.01"))

        response = run(scenario())
        assert response.ok
        events = tracer.to_chrome_trace()["traceEvents"]
        traces = trace_ids_in(events)
        assert len(traces) == 1
        tree = span_tree(events, traces[0])
        assert [e["name"] for e in tree["roots"]] == ["service.submit"]
        assert tree["orphans"] == []

    def test_disabled_tracer_records_nothing(self):
        disable_tracing()

        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                return await service.submit(
                    SimRequest("C", "__sleep__:0.01", trace_id="aa" * 8))

        response = run(scenario())
        assert response.ok
        from repro.obs.tracer import get_tracer
        assert get_tracer().enabled is False


class TestFleetSpans:
    def test_gateway_trace_merges_three_tiers(self, tracer):
        from repro.fleet.gateway import FleetGateway, GatewayConfig
        from repro.fleet.node import NodeConfig, NodeSupervisor

        async def scenario():
            supervisor = NodeSupervisor(NodeConfig(in_process=True,
                                                   use_processes=False))
            gateway = FleetGateway(GatewayConfig(health_interval_s=0.05))
            try:
                for _ in range(2):
                    handle = await supervisor.spawn()
                    gateway.add_node(handle.name, handle.host,
                                     handle.port)
                await gateway.start()
                responses = await asyncio.gather(*(
                    gateway.submit(SimRequest("C", "__sleep__:0.01",
                                              seed=i))
                    for i in range(4)))
                trace = await gateway.trace()
                return responses, trace
            finally:
                await gateway.close()
                await supervisor.stop_all(drain=True)

        responses, trace = run(scenario())
        assert all(r.ok for r in responses)
        events = trace["merged"]["traceEvents"]
        traces = trace_ids_in(events)
        assert len(traces) == 4
        for trace_id in traces:
            spans = span_index(events, trace_id)
            names = sorted(e["name"] for e in spans.values())
            assert names == ["gateway.submit", "service.submit",
                             "worker.execute"]
            lanes = {e["pid"] for e in spans.values()}
            assert len(lanes) == 3  # gateway / node / worker lanes
            tree = span_tree(events, trace_id)
            assert [e["name"] for e in tree["roots"]] == ["gateway.submit"]
            assert tree["orphans"] == []
            assert assert_span_containment(events, trace_id) == 2
        # The flight recorder saw each request once, by trace id.
        flight = trace["flight"]
        assert {e["trace_id"] for e in flight["slowest"]} <= set(traces)


class TestChaosTracePropagation:
    def test_node_kill_leaves_no_orphan_spans(self, tracer):
        # The soak kills a node mid-burst: rerouted requests must
        # still stitch into single connected trees, and the reroute
        # counter must carry their trace ids as exemplars.
        from repro.fleet.soak import FleetSoak, FleetSoakConfig

        result = run(FleetSoak(FleetSoakConfig(
            seed=7, n_nodes=3, n_requests=6, bursts=3,
            kill_node=True, kill_burst=1)).run())
        assert result.passed
        assert result.killed_node is not None
        events = tracer.to_chrome_trace()["traceEvents"]
        traces = trace_ids_in(events)
        assert traces
        for trace_id in traces:
            assert orphan_spans(events, trace_id) == [], trace_id
            roots = span_tree(events, trace_id)["roots"]
            assert [e["name"] for e in roots] == ["gateway.submit"]
        if sum(result.reroutes.values()):
            assert result.reroute_exemplars
            for reason, trace_id in result.reroute_exemplars.items():
                assert trace_id in traces, reason
