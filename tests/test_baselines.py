"""Tests for the related-work baseline implementations (section 7)."""

import numpy as np
import pytest

from repro.baselines.ecc import EccFeedbackUndervolting
from repro.baselines.naive import NaiveUndervolting
from repro.baselines.razor import RazorCore
from repro.faults.model import FaultModel


@pytest.fixture(scope="module")
def chip(cpu_a_module):
    return FaultModel().sample_chip(
        cpu_a_module.conservative_curve, n_cores=4,
        rng=np.random.default_rng(17), exhibits=True)


@pytest.fixture(scope="module")
def cpu_a_module():
    from repro.hardware.models import cpu_a_i9_9900k
    return cpu_a_i9_9900k()


class TestNaiveUndervolting:
    def test_shallow_offset_is_secure(self, cpu_a_module, chip, small_trace):
        naive = NaiveUndervolting(cpu_a_module, chip)
        safe = naive.first_silent_fault_offset() + 0.005
        outcome = naive.run(small_trace, safe)
        assert outcome.secure
        assert outcome.efficiency_change > 0

    def test_deep_offset_silently_corrupts(self, cpu_a_module, chip,
                                           small_trace):
        naive = NaiveUndervolting(cpu_a_module, chip)
        outcome = naive.run(small_trace, -0.200)
        assert outcome.silent_faults > 0
        assert not outcome.secure
        # ...while looking great on the power meter: the trap.
        assert outcome.efficiency_change > 0.2

    def test_beyond_crash_margin(self, cpu_a_module, chip, small_trace):
        naive = NaiveUndervolting(cpu_a_module, chip)
        outcome = naive.run(small_trace, -0.290)
        assert outcome.crashed

    def test_margins_ordered(self, cpu_a_module, chip):
        naive = NaiveUndervolting(cpu_a_module, chip)
        # Silent faults begin well before visible misbehaviour.
        assert (naive.first_silent_fault_offset()
                > naive.max_visible_safe_offset())

    def test_consumes_aging_guardband(self, cpu_a_module, chip, small_trace):
        naive = NaiveUndervolting(cpu_a_module, chip)
        outcome = naive.run(small_trace, -0.150)
        assert outcome.consumed_aging_guardband_v == pytest.approx(0.150)

    def test_positive_offset_rejected(self, cpu_a_module, chip, small_trace):
        with pytest.raises(ValueError):
            NaiveUndervolting(cpu_a_module, chip).run(small_trace, 0.01)


class TestRazor:
    def test_settles_between_margins(self, cpu_a_module, chip):
        outcome = RazorCore(cpu_a_module, chip).settle()
        # Deeper than zero, shallower than the crash margin.
        assert -0.26 < outcome.offset_v < -0.01

    def test_error_rate_near_target(self, cpu_a_module, chip):
        core = RazorCore(cpu_a_module, chip, target_error_rate=1e-4)
        outcome = core.settle()
        assert outcome.error_rate <= 1e-3

    def test_costs_charged(self, cpu_a_module, chip):
        outcome = RazorCore(cpu_a_module, chip).settle()
        assert outcome.duration_ratio >= 1.0
        # Power saving reduced by the circuit overhead but still net-negative.
        assert outcome.power_change < 0

    def test_error_rate_monotone_in_depth(self, cpu_a_module, chip):
        core = RazorCore(cpu_a_module, chip)
        assert core.error_rate_at(-0.150) >= core.error_rate_at(-0.030)

    def test_target_validated(self, cpu_a_module, chip):
        with pytest.raises(ValueError):
            RazorCore(cpu_a_module, chip, target_error_rate=0.5)


class TestEccFeedback:
    def test_itanium_setting_is_secure(self, cpu_a_module, chip):
        outcome = EccFeedbackUndervolting.itanium_like(
            cpu_a_module, chip).calibrate()
        assert outcome.secure
        assert outcome.power_change < 0

    def test_x86_setting_is_blind_to_datapath(self, cpu_a_module, chip):
        outcome = EccFeedbackUndervolting.x86_like(
            cpu_a_module, chip).calibrate()
        assert not outcome.secure
        assert outcome.silent_datapath_faults > 0

    def test_calibration_backs_off_from_knee(self, cpu_a_module, chip):
        ecc = EccFeedbackUndervolting(cpu_a_module, chip, cache_margin_v=-0.100)
        outcome = ecc.calibrate()
        assert outcome.offset_v > outcome.cache_margin_v

    def test_margin_validated(self, cpu_a_module, chip):
        with pytest.raises(ValueError):
            EccFeedbackUndervolting(cpu_a_module, chip, cache_margin_v=0.05)
