"""Edge-case and failure-injection tests for the trace simulator."""

import numpy as np
import pytest

from repro.core.params import DEFAULT_PARAMS_INTEL, StrategyParams
from repro.core.simulator import TraceSimulator
from repro.core.strategy import OperatingStrategy, SuitState, strategy_for
from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

_N = 10_000_000


def _profile():
    return WorkloadProfile(
        name="edge", suite="SPECint", n_instructions=_N, ipc=1.5,
        efficient_occupancy=0.5, n_episodes=1, dense_gap=100,
        imul_density=0.0, opcode_mix={Opcode.VOR: 1.0})


def _trace(indices):
    indices = np.asarray(indices, dtype=np.int64)
    return FaultableTrace(
        name="edge", n_instructions=_N, ipc=1.5, indices=indices,
        opcodes=np.zeros(indices.size, dtype=np.uint8),
        opcode_table=(Opcode.VOR,))


def _sim(cpu, trace, strategy=None, params=None):
    return TraceSimulator(
        cpu, _profile(), trace,
        strategy or strategy_for("fV", params or DEFAULT_PARAMS_INTEL),
        -0.097, seed=0, harden_imul=False)


class TestBoundaryEvents:
    def test_event_at_instruction_zero(self, cpu_c):
        result = _sim(cpu_c, _trace([0])).run()
        assert result.n_exceptions == 1
        assert result.duration_s > 0

    def test_event_at_last_instruction(self, cpu_c):
        result = _sim(cpu_c, _trace([_N - 1])).run()
        assert result.n_exceptions == 1
        # The run ends while still conservative: no timer return needed.
        assert result.n_timer_fires == 0

    def test_duplicate_positions(self, cpu_c):
        # Two faultable instructions at adjacent stream slots.
        result = _sim(cpu_c, _trace([500_000, 500_000, 500_001])).run()
        assert result.n_exceptions == 1  # one burst, one trap
        assert result.duration_s > 0

    def test_every_instruction_faultable_prefix(self, cpu_c):
        result = _sim(cpu_c, _trace(list(range(200)))).run()
        assert result.n_exceptions == 1
        cons = result.state_time["Cf"] + result.state_time["CV"]
        assert cons > 0


class TestExtremeParameters:
    def test_tiny_deadline_thrashes_then_recovers(self, cpu_c):
        params = StrategyParams(1e-6, 450e-6, 3, 14.0)
        events = [1_000_000 * k for k in range(1, 9)]
        result = _sim(cpu_c, _trace(events), params=params).run()
        assert result.n_exceptions == len(events)

    def test_huge_deadline_pins_conservative(self, cpu_c):
        params = StrategyParams(10.0, 450e-6, 3, 14.0)
        events = [1_000_000, 5_000_000]
        result = _sim(cpu_c, _trace(events), params=params).run()
        assert result.n_exceptions == 1
        assert result.efficient_occupancy < 0.5

    def test_offset_beyond_curve_floor_rejected(self, cpu_c):
        # An offset that would push low-frequency anchors negative dies
        # loudly in the DVFS layer, not silently.
        with pytest.raises(ValueError):
            _sim_offset = TraceSimulator(
                cpu_c, _profile(), _trace([100]),
                strategy_for("fV", DEFAULT_PARAMS_INTEL), -0.75, seed=0)
            _sim_offset.run()


class BrokenStrategy(OperatingStrategy):
    """A strategy that forgets to re-enable or emulate: the instruction
    can never retire.  The simulator must fail loudly, not hang."""

    name = "broken"

    def on_disabled_instruction(self, cpu):
        cpu.change_pstate_wait(SuitState.CF)
        # BUG: neither set_instructions_disabled(False) nor emulate.


class TestFailureInjection:
    def test_broken_strategy_detected(self, cpu_c):
        sim = _sim(cpu_c, _trace([1_000_000]),
                   strategy=BrokenStrategy(DEFAULT_PARAMS_INTEL))
        with pytest.raises(RuntimeError, match="disabled"):
            sim.run()

    def test_wrong_thrash_window_query_detected(self, cpu_c):
        class WrongWindow(OperatingStrategy):
            name = "wrong"

            def on_disabled_instruction(self, cpu):
                cpu.exception_count_in_timespan(123e-6)  # not p_ts

        sim = _sim(cpu_c, _trace([1_000_000]),
                   strategy=WrongWindow(DEFAULT_PARAMS_INTEL))
        with pytest.raises(ValueError, match="p_ts"):
            sim.run()


class TestTimelineRecording:
    def test_timeline_capped(self, cpu_c):
        from repro.core import simulator as sim_module

        events = [100_000 * k for k in range(1, 60)]
        sim = TraceSimulator(cpu_c, _profile(), _trace(events),
                             strategy_for("fV", DEFAULT_PARAMS_INTEL),
                             -0.097, seed=0, record_timeline=True)
        result = sim.run()
        assert result.timeline is not None
        assert len(result.timeline) <= sim_module._TIMELINE_CAP

    def test_no_timeline_by_default(self, cpu_c):
        result = _sim(cpu_c, _trace([100])).run()
        assert result.timeline is None
