"""Tests for the AVX frequency-licensing model."""

import pytest

from repro.power.avx_license import (
    AvxLicenseModel,
    LicenseLevel,
    LicenseTracker,
    effective_frequency_ratio,
    nosimd_tradeoff,
)


@pytest.fixture
def model():
    return AvxLicenseModel()


class TestModelBasics:
    def test_ratios_ordered(self, model):
        assert (model.frequency_ratio(LicenseLevel.L2)
                < model.frequency_ratio(LicenseLevel.L1)
                < model.frequency_ratio(LicenseLevel.L0) == 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AvxLicenseModel(l1_frequency_ratio=0.8, l2_frequency_ratio=0.9)
        with pytest.raises(ValueError):
            AvxLicenseModel(hysteresis_s=-1.0)


class TestLicenseTracker:
    def test_upgrade_is_immediate_with_stall(self, model):
        tracker = LicenseTracker(model)
        stall = tracker.demand(0.0, LicenseLevel.L1)
        assert stall == model.transition_stall_s
        assert tracker.level_at(0.0) is LicenseLevel.L1

    def test_same_level_no_stall(self, model):
        tracker = LicenseTracker(model)
        tracker.demand(0.0, LicenseLevel.L1)
        assert tracker.demand(1e-6, LicenseLevel.L1) == 0.0

    def test_hysteresis_expiry(self, model):
        tracker = LicenseTracker(model)
        tracker.demand(0.0, LicenseLevel.L1)
        within = model.hysteresis_s * 0.9
        beyond = model.hysteresis_s * 1.1
        assert tracker.level_at(within) is LicenseLevel.L1
        assert tracker.level_at(beyond) is LicenseLevel.L0

    def test_repeated_demands_pin_the_license(self, model):
        tracker = LicenseTracker(model)
        step = model.hysteresis_s / 2
        for k in range(10):
            tracker.demand(k * step, LicenseLevel.L1)
        assert tracker.level_at(10 * step) is LicenseLevel.L1

    def test_l2_above_l1(self, model):
        tracker = LicenseTracker(model)
        tracker.demand(0.0, LicenseLevel.L1)
        tracker.demand(1e-6, LicenseLevel.L2)
        assert tracker.level_at(2e-6) is LicenseLevel.L2


class TestEffectiveFrequency:
    def test_no_wide_instructions_full_speed(self, model):
        ratio, transitions = effective_frequency_ratio(model, [], 1.0)
        assert ratio == pytest.approx(1.0)
        assert transitions == 0

    def test_single_event_costs_one_hysteresis_window(self, model):
        ratio, _ = effective_frequency_ratio(
            model, [(0.0, LicenseLevel.L1)], 1.0)
        expected = (model.hysteresis_s * model.l1_frequency_ratio
                    + (1.0 - model.hysteresis_s)) / 1.0
        assert ratio == pytest.approx(expected, rel=0.01)

    def test_pinned_license_runs_at_l1(self, model):
        rate = 4.0 / model.hysteresis_s
        events = [(k / rate, LicenseLevel.L1) for k in range(int(rate))]
        ratio, _ = effective_frequency_ratio(model, events, 1.0)
        assert ratio == pytest.approx(model.l1_frequency_ratio, abs=0.02)

    def test_denser_events_lower_frequency(self, model):
        def ratio_at(rate_hz):
            events = [(k / rate_hz, LicenseLevel.L1)
                      for k in range(int(rate_hz))]
            return effective_frequency_ratio(model, events, 1.0)[0]

        assert ratio_at(10_000) <= ratio_at(100) <= 1.0

    def test_unsorted_events_rejected(self, model):
        with pytest.raises(ValueError):
            effective_frequency_ratio(
                model, [(1.0, LicenseLevel.L1), (0.5, LicenseLevel.L1)], 2.0)


class TestNosimdTradeoff:
    def test_sparse_wide_ops_lose(self, model):
        simd, scalar = nosimd_tradeoff(
            model, simd_speedup=1.02, wide_event_rate_hz=5_000,
            demanded=LicenseLevel.L1)
        assert scalar > simd

    def test_strong_vectorisation_wins(self, model):
        simd, scalar = nosimd_tradeoff(
            model, simd_speedup=1.3, wide_event_rate_hz=5_000,
            demanded=LicenseLevel.L1)
        assert simd > scalar

    def test_avx512_penalty_harsher(self, model):
        l1, _ = nosimd_tradeoff(model, simd_speedup=1.1,
                                wide_event_rate_hz=10_000,
                                demanded=LicenseLevel.L1)
        l2, _ = nosimd_tradeoff(model, simd_speedup=1.1,
                                wide_event_rate_hz=10_000,
                                demanded=LicenseLevel.L2)
        assert l2 < l1

    def test_speedup_validated(self, model):
        with pytest.raises(ValueError):
            nosimd_tradeoff(model, simd_speedup=0.9, wide_event_rate_hz=1,
                            demanded=LicenseLevel.L1)
