"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import geomean_change, median_change
from repro.emulation import vector as v
from repro.emulation.aes import aes128_encrypt_block
from repro.emulation.bitsliced_aes import sbox_constant_time
from repro.emulation.aes import sbox_lookup
from repro.emulation.clmul import clmul64, gf128_mul
from repro.emulation.vector import Vec128
from repro.hardware.msr import decode_voltage_offset, encode_voltage_offset
from repro.kernel.timer import DeadlineTimer
from repro.power.cmos import CmosPowerModel
from repro.power.dvfs import DVFSCurve
from repro.power.rapl import RaplCounter

u64 = st.integers(min_value=0, max_value=2 ** 64 - 1)
u128 = st.integers(min_value=0, max_value=2 ** 128 - 1)


class TestVectorProperties:
    @given(u128, u128)
    def test_xor_self_inverse(self, a, b):
        x, y = Vec128(a), Vec128(b)
        assert v.vxor(v.vxor(x, y), y).value == a

    @given(u128, u128)
    def test_de_morgan(self, a, b):
        x, y = Vec128(a), Vec128(b)
        # (~x) & y == y ^ (x & y)
        assert v.vandn(x, y).value == y.value ^ v.vand(x, y).value

    @given(u128)
    def test_or_idempotent(self, a):
        x = Vec128(a)
        assert v.vor(x, x).value == a

    @given(st.lists(u64, min_size=2, max_size=2),
           st.lists(u64, min_size=2, max_size=2))
    def test_vpaddq_is_modular_addition(self, la, lb):
        out = v.vpaddq(Vec128.from_u64(la), Vec128.from_u64(lb))
        assert out.u64() == [(x + y) % 2 ** 64 for x, y in zip(la, lb)]

    @given(st.lists(u64, min_size=2, max_size=2))
    def test_u64_roundtrip(self, lanes):
        assert Vec128.from_u64(lanes).u64() == lanes


class TestClmulProperties:
    @given(u64, u64)
    def test_commutative(self, a, b):
        assert clmul64(a, b) == clmul64(b, a)

    @given(u64, u64, u64)
    def test_distributive_over_xor(self, a, b, c):
        assert clmul64(a, b ^ c) == clmul64(a, b) ^ clmul64(a, c)

    @given(u64)
    def test_multiply_by_x_is_shift(self, a):
        assert clmul64(a, 2) == a << 1

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=2 ** 128 - 1))
    def test_gf128_identity(self, a):
        assert gf128_mul(a, 1) == a


class TestAesProperties:
    @settings(max_examples=20)
    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    def test_encryption_is_injective_per_key(self, key, block):
        # Changing one plaintext bit must change the ciphertext.
        other = bytes([block[0] ^ 1]) + block[1:]
        assert (aes128_encrypt_block(block, key)
                != aes128_encrypt_block(other, key))

    @given(st.integers(min_value=0, max_value=255))
    def test_table_free_sbox_matches_table(self, x):
        assert sbox_constant_time(x) == sbox_lookup(x)


class TestMsrEncodingProperties:
    @given(st.integers(min_value=-250, max_value=250))
    def test_offset_roundtrip_within_half_step(self, mv):
        offset = mv * 1e-3
        decoded = decode_voltage_offset(encode_voltage_offset(offset))
        assert abs(decoded - offset) <= 0.0005


class TestPowerModelProperties:
    @given(st.floats(min_value=0.7, max_value=1.3),
           st.floats(min_value=1e9, max_value=6e9))
    def test_power_positive_and_monotone_in_voltage(self, volts, freq):
        model = CmosPowerModel.calibrated(4e9, 1.0, 100.0)
        p = model.power(freq, volts)
        assert p > 0
        assert model.power(freq, volts + 0.05) > p

    @given(st.lists(st.floats(min_value=0.5, max_value=1.3), min_size=2,
                    max_size=6, unique=True),
           st.floats(min_value=1e9, max_value=5e9))
    def test_curve_voltage_within_anchor_range(self, volts, f_lo):
        volts = sorted(volts)
        points = [(f_lo * (1 + 0.2 * i), volt) for i, volt in enumerate(volts)]
        curve = DVFSCurve(points)
        for f, volt in points:
            assert curve.voltage_at(f) == pytest.approx(volt)
        # Interpolated values stay within the anchor envelope.
        mid = (points[0][0] + points[-1][0]) / 2
        assert volts[0] <= curve.voltage_at(mid) <= volts[-1]


class TestRaplProperties:
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_delta_always_non_negative(self, before, after):
        assert 0 <= RaplCounter.delta(before, after) < 2 ** 32

    @given(st.lists(st.floats(min_value=0.0, max_value=500.0), min_size=1,
                    max_size=20))
    def test_counter_monotone_modulo_wrap(self, powers):
        counter = RaplCounter()
        total = 0.0
        for p in powers:
            counter.accumulate(p, 1.0)
            total += p
        expected = int(total / counter.energy_unit_j) % 2 ** 32
        assert abs(counter.read() - expected) <= 1


class TestTimerProperties:
    @given(st.floats(min_value=0.0, max_value=1e3),
           st.floats(min_value=1e-9, max_value=1.0),
           st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=10))
    def test_fires_exactly_deadline_after_last_reset(self, start, deadline,
                                                     increments):
        timer = DeadlineTimer()
        timer.arm(start, deadline)
        now = start
        for inc in increments:
            now += inc
            timer.reset(now)
        assert timer.fires_at == pytest.approx(now + deadline)


class TestAggregateProperties:
    @given(st.lists(st.floats(min_value=-0.9, max_value=9.0), min_size=1,
                    max_size=30))
    def test_geomean_bounded_by_extremes(self, changes):
        gm = geomean_change(changes)
        assert min(changes) - 1e-9 <= gm <= max(changes) + 1e-9

    @given(st.lists(st.floats(min_value=-0.9, max_value=9.0), min_size=1,
                    max_size=30))
    def test_median_is_an_order_statistic(self, changes):
        med = median_change(changes)
        assert min(changes) <= med <= max(changes)

    @given(st.floats(min_value=-0.5, max_value=2.0))
    def test_geomean_of_constant(self, c):
        assert geomean_change([c, c, c]) == pytest.approx(c, abs=1e-9)


class TestTierProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_tier_ladder_invariants_over_random_chips(self, chip_seed):
        from repro.core.tiers import derive_tiers
        from repro.faults.model import FaultModel
        from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS

        chip = FaultModel().sample_chip(
            DVFSCurve(I9_9900K_CURVE_POINTS), 4,
            np.random.default_rng(chip_seed), exhibits=True)
        tiers = derive_tiers(chip, (2e9, 4e9))
        offsets = [t.offset_v for t in tiers]
        # Deeper tiers disable supersets, offsets strictly decrease.
        assert offsets == sorted(offsets, reverse=True)
        for shallow, deep in zip(tiers, tiers[1:]):
            assert shallow.disabled < deep.disabled


class TestPerCoreProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_per_core_never_worse_than_uniform(self, chip_seed):
        from repro.core.percore import per_core_gain, plan_per_core_offsets
        from repro.faults.model import FaultModel
        from repro.hardware.models import cpu_c_xeon_4208

        cpu = cpu_c_xeon_4208()
        chip = FaultModel(core_sigma_v=0.012).sample_chip(
            cpu.conservative_curve, 8,
            np.random.default_rng(chip_seed), exhibits=True)
        plan = plan_per_core_offsets(chip, (2e9, 3e9))
        assert per_core_gain(cpu, plan) >= -1e-12
        # Every core's offset is at least as deep as the uniform one.
        assert all(off <= plan.uniform_offset_v + 1e-12
                   for off in plan.per_core_offsets_v)
