"""Property-based tests of the trace simulator's invariants.

Random small traces and parameters; for every run the physical
accounting must hold: time splits exactly across states, energy implies
a power between the Cf floor and the CV baseline, every trap fires a
deadline return, and the run is deterministic for a given seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import StrategyParams
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.hardware.models import cpu_c_xeon_4208
from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

_CPU = cpu_c_xeon_4208()

_N = 20_000_000


def _make_trace(event_positions):
    indices = np.array(sorted(set(event_positions)), dtype=np.int64)
    return FaultableTrace(
        name="prop", n_instructions=_N, ipc=1.5, indices=indices,
        opcodes=np.zeros(indices.size, dtype=np.uint8),
        opcode_table=(Opcode.VOR,))


_PROFILE = WorkloadProfile(
    name="prop", suite="SPECint", n_instructions=_N, ipc=1.5,
    efficient_occupancy=0.5, n_episodes=1, dense_gap=1000,
    imul_density=0.0, opcode_mix={Opcode.VOR: 1.0})

events_strategy = st.lists(
    st.integers(min_value=0, max_value=_N - 1), min_size=0, max_size=40)

strategy_names = st.sampled_from(["fV", "f", "V", "e"])

deadlines = st.sampled_from([10e-6, 30e-6, 100e-6])


@settings(max_examples=40, deadline=None)
@given(events=events_strategy, strategy_name=strategy_names,
       deadline=deadlines)
def test_accounting_invariants(events, strategy_name, deadline):
    params = StrategyParams(deadline, 450e-6, 3, 14.0)
    sim = TraceSimulator(_CPU, _PROFILE, _make_trace(events),
                         strategy_for(strategy_name, params), -0.097,
                         seed=1, harden_imul=False)
    result = sim.run()

    # 1. Time closes: states + stall == duration.
    assert sum(result.state_time.values()) == pytest.approx(
        result.duration_s, rel=1e-9, abs=1e-12)

    # 2. Power bounded by the physical extremes.
    points = _CPU.operating_points(-0.097)
    lo = min(points.power_cf, points.power_e) - 1e-6
    assert lo <= result.power_ratio <= 1.0 + 1e-6

    # 3. Every event is consumed exactly once.
    assert result.n_exceptions <= len(set(events))

    # 4. Duration at least the best-case run time.
    best = _N / (1.5 * _CPU.nominal_frequency * points.speed_e)
    assert result.duration_s >= best * (1 - 1e-9)


@settings(max_examples=20, deadline=None)
@given(events=events_strategy)
def test_switching_strategies_fire_timer_per_conservative_visit(events):
    params = StrategyParams(30e-6, 450e-6, 3, 14.0)
    sim = TraceSimulator(_CPU, _PROFILE, _make_trace(events),
                         strategy_for("fV", params), -0.097, seed=1,
                         harden_imul=False)
    result = sim.run()
    # Each exception arms the deadline; the timer must eventually fire
    # once per trap (no lost returns), except a trailing episode that
    # may reach the end of the trace while still conservative.
    assert result.n_exceptions - result.n_timer_fires in (0, 1)


@settings(max_examples=15, deadline=None)
@given(events=events_strategy, seed=st.integers(min_value=0, max_value=2 ** 16))
def test_determinism(events, seed):
    params = StrategyParams(30e-6, 450e-6, 3, 14.0)
    runs = [
        TraceSimulator(_CPU, _PROFILE, _make_trace(events),
                       strategy_for("fV", params), -0.097, seed=seed,
                       harden_imul=False).run()
        for _ in range(2)
    ]
    assert runs[0].duration_s == runs[1].duration_s
    assert runs[0].energy_rel == runs[1].energy_rel
    assert runs[0].n_exceptions == runs[1].n_exceptions


@settings(max_examples=15, deadline=None)
@given(events=st.lists(st.integers(min_value=0, max_value=_N - 1),
                       min_size=1, max_size=30))
def test_emulation_strategy_consumes_all_events(events):
    params = StrategyParams(30e-6, 450e-6, 3, 14.0)
    trace = _make_trace(events)
    sim = TraceSimulator(_CPU, _PROFILE, trace,
                         strategy_for("e", params), -0.097, seed=1,
                         harden_imul=False)
    result = sim.run()
    assert result.n_exceptions == trace.n_events
    assert result.n_switches == 0


@settings(max_examples=15, deadline=None)
@given(offset=st.floats(min_value=-0.12, max_value=-0.02))
def test_deeper_undervolt_never_increases_power(offset):
    trace = _make_trace([5_000_000, 12_000_000])
    params = StrategyParams(30e-6, 450e-6, 3, 14.0)
    shallow = TraceSimulator(_CPU, _PROFILE, trace,
                             strategy_for("fV", params), -0.02, seed=1,
                             harden_imul=False).run()
    deep = TraceSimulator(_CPU, _PROFILE, trace,
                          strategy_for("fV", params), offset, seed=1,
                          harden_imul=False).run()
    assert deep.power_ratio <= shallow.power_ratio + 1e-9
