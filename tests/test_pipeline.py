"""Tests for the out-of-order pipeline simulator (Fig 14 substrate)."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.config import GEM5_REFERENCE_CONFIG, PipelineConfig
from repro.pipeline.generator import StreamSpec, generate_stream
from repro.pipeline.scoreboard import OutOfOrderCore
from repro.workloads.spec import spec_profile


@pytest.fixture(scope="module")
def core():
    return OutOfOrderCore(GEM5_REFERENCE_CONFIG)


class TestConfig:
    def test_reference_dimensions(self):
        cfg = GEM5_REFERENCE_CONFIG
        assert cfg.rob_size >= 100
        assert cfg.issue_width >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(rob_size=0)


class TestScoreboardBasics:
    def test_empty_stream(self, core):
        stats = core.run([])
        assert stats.cycles == 0

    def test_independent_alus_superscalar(self, core):
        stream = [Instruction(Opcode.ALU) for _ in range(1000)]
        stats = core.run(stream)
        # 4 ALU pipes, issue width 6: must beat 1 IPC comfortably.
        assert stats.ipc > 2.0

    def test_serial_dependency_chain_is_latency_bound(self, core):
        stream = [Instruction(Opcode.ALU, sources=(i - 1,) if i else ())
                  for i in range(500)]
        stats = core.run(stream)
        assert stats.cycles >= 500  # one cycle per link, minimum

    def test_imul_chain_bound_by_latency(self, core):
        n = 200
        stream = [Instruction(Opcode.IMUL, sources=(i - 1,) if i else ())
                  for i in range(n)]
        stats = core.run(stream)
        assert stats.cycles >= 3 * (n - 1)

    def test_latency_override(self):
        n = 200
        stream = [Instruction(Opcode.IMUL, sources=(i - 1,) if i else ())
                  for i in range(n)]
        base = OutOfOrderCore(GEM5_REFERENCE_CONFIG).run(stream)
        slow = OutOfOrderCore(GEM5_REFERENCE_CONFIG,
                              {Opcode.IMUL: 4}).run(stream)
        assert slow.cycles / base.cycles == pytest.approx(4 / 3, rel=0.05)

    def test_div_unpipelined_throughput(self, core):
        stream = [Instruction(Opcode.DIV) for _ in range(100)]
        stats = core.run(stream)
        assert stats.cycles >= 100 * 19  # throughput-limited

    def test_invalid_override(self):
        with pytest.raises(ValueError):
            OutOfOrderCore(GEM5_REFERENCE_CONFIG, {Opcode.IMUL: 0})


class TestStreamGenerator:
    def test_imul_density_respected(self):
        spec = StreamSpec(n_instructions=20_000, imul_density=0.01,
                          imul_chain_fraction=0.5)
        stream = generate_stream(spec, seed=1)
        density = sum(1 for i in stream if i.opcode is Opcode.IMUL) / len(stream)
        assert density == pytest.approx(0.01, rel=0.25)

    def test_sources_point_backwards(self):
        stream = generate_stream(StreamSpec(n_instructions=5_000), seed=2)
        for i, instr in enumerate(stream):
            for src in instr.sources:
                assert 0 <= src < i

    def test_chained_imuls_reference_previous_imul(self):
        spec = StreamSpec(n_instructions=30_000, imul_density=0.01,
                          imul_chain_fraction=1.0)
        stream = generate_stream(spec, seed=3)
        imul_positions = {i for i, ins in enumerate(stream)
                          if ins.opcode is Opcode.IMUL}
        chained = sum(
            1 for i in imul_positions
            if stream[i].sources and stream[i].sources[0] in imul_positions)
        assert chained > 0.3 * len(imul_positions)

    def test_from_profile(self):
        spec = StreamSpec.from_profile(spec_profile("525.x264"), 10_000)
        assert spec.imul_density == pytest.approx(0.0099)


class TestFig14Behaviour:
    def test_one_extra_cycle_nearly_free_on_average_code(self, core):
        spec = StreamSpec(n_instructions=20_000, imul_density=0.0007,
                          imul_chain_fraction=0.1)
        stream = generate_stream(spec, seed=4)
        sweep = core.imul_latency_sweep(stream, (3, 4))
        assert sweep[4].slowdown_vs(sweep[3]) < 0.003

    def test_x264_like_code_visibly_slower(self, core):
        spec = StreamSpec(n_instructions=20_000, imul_density=0.0099,
                          imul_chain_fraction=0.9)
        stream = generate_stream(spec, seed=5)
        sweep = core.imul_latency_sweep(stream, (3, 4))
        assert 0.005 < sweep[4].slowdown_vs(sweep[3]) < 0.035

    def test_slowdown_monotone_in_latency(self, core):
        spec = StreamSpec(n_instructions=15_000, imul_density=0.005,
                          imul_chain_fraction=0.5)
        stream = generate_stream(spec, seed=6)
        sweep = core.imul_latency_sweep(stream, (3, 4, 6, 15, 30))
        cycles = [sweep[lat].cycles for lat in (3, 4, 6, 15, 30)]
        assert cycles == sorted(cycles)
