"""Tests for consolidated (mixed-workload) shared-domain runs."""

import pytest

from repro.core.suit import SuitSystem
from repro.workloads.spec import spec_profile


class TestRunConsolidated:
    def test_mixed_tasks_interact_on_shared_domain(self, small_profile,
                                                   dense_profile):
        suit = SuitSystem.for_cpu("A", strategy_name="fV",
                                  voltage_offset=-0.097)
        alone = suit.run_profile(small_profile)
        together = suit.run_consolidated([small_profile, dense_profile])
        # The dense co-runner drags the shared domain conservative.
        assert together.efficient_occupancy < alone.efficient_occupancy

    def test_single_task_consolidation_matches_solo(self, small_profile):
        suit = SuitSystem.for_cpu("A", strategy_name="fV",
                                  voltage_offset=-0.097)
        solo = suit.run_profile(small_profile)
        cons = suit.run_consolidated([small_profile])
        assert cons.n_exceptions == solo.n_exceptions
        assert cons.duration_s == pytest.approx(solo.duration_s, rel=1e-6)

    def test_per_core_domain_rejected(self, small_profile):
        suit = SuitSystem.for_cpu("C")
        with pytest.raises(ValueError, match="per-core"):
            suit.run_consolidated([small_profile])

    def test_task_count_bounded(self, small_profile):
        suit = SuitSystem.for_cpu("A")
        with pytest.raises(ValueError):
            suit.run_consolidated([small_profile] * 99)
        with pytest.raises(ValueError):
            suit.run_consolidated([])


class TestSeedSensitivityExperiment:
    def test_headline_is_seed_robust(self):
        from repro.experiments import ext_seed_sensitivity

        result = ext_seed_sensitivity.run(seed=0, fast=True)
        assert result.metric("eff_always_positive").measured == 1.0
        assert result.metric("spread_below_1pp").measured == 1.0
