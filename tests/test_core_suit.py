"""Tests for the SuitSystem facade, multicore merging and estimates."""

import numpy as np
import pytest

from repro.core.estimates import emulation_estimate, nosimd_estimate
from repro.core.multicore import merged_multicore_trace
from repro.core.suit import SuiteResult, SuitSystem
from repro.workloads.generator import generate_trace
from repro.workloads.spec import spec_profile


class TestSuitSystemConstruction:
    def test_for_cpu_shortnames(self):
        for name in ("A", "B", "C", "i5"):
            suit = SuitSystem.for_cpu(name)
            assert suit.cpu.name

    def test_unknown_cpu(self):
        with pytest.raises(ValueError):
            SuitSystem.for_cpu("Z")

    def test_default_params_follow_vendor(self):
        assert SuitSystem.for_cpu("A").params.deadline_s == pytest.approx(30e-6)
        assert SuitSystem.for_cpu("B").params.deadline_s == pytest.approx(700e-6)

    def test_core_count_validated(self):
        with pytest.raises(ValueError):
            SuitSystem.for_cpu("A", n_cores=99)
        with pytest.raises(ValueError):
            SuitSystem.for_cpu("A", n_cores=0)

    def test_prime_trace_checks_name(self, small_profile, small_trace):
        suit = SuitSystem.for_cpu("C")
        suit.prime_trace(small_profile, small_trace)
        other = spec_profile("557.xz")
        with pytest.raises(ValueError):
            suit.prime_trace(other, small_trace)


class TestRunProfile:
    def test_caches_traces(self, small_profile):
        suit = SuitSystem.for_cpu("C", strategy_name="fV")
        first = suit.run_profile(small_profile)
        second = suit.run_profile(small_profile)
        assert first.duration_s == second.duration_s

    def test_emulation_uses_estimate(self, small_profile):
        suit = SuitSystem.for_cpu("C", strategy_name="e")
        result = suit.run_profile(small_profile)
        assert result.strategy == "e"
        assert result.n_exceptions > 0

    def test_nosimd_run(self, small_profile):
        suit = SuitSystem.for_cpu("C")
        result = suit.run_profile_nosimd(small_profile)
        assert result.efficient_occupancy == pytest.approx(1.0)
        assert result.n_exceptions == 0


class TestSuiteResult:
    def test_aggregates(self, small_profile, dense_profile):
        suit = SuitSystem.for_cpu("C", strategy_name="fV")
        suite = suit.evaluate_suite([small_profile, dense_profile])
        assert len(suite.results) == 2
        assert suite.perf_gmean < suite.results[0].perf_change + 0.1
        assert -1.0 < suite.power_gmean < 0.0
        assert suite.by_name("small").workload == "small"
        with pytest.raises(KeyError):
            suite.by_name("missing")

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            SuiteResult([])


class TestMulticoreMerging:
    def test_merged_event_count(self, small_trace):
        merged = merged_multicore_trace(small_trace, 4)
        assert merged.n_events == 4 * small_trace.n_events
        assert merged.n_instructions == small_trace.n_instructions

    def test_single_core_is_identity(self, small_trace):
        assert merged_multicore_trace(small_trace, 1) is small_trace

    def test_merged_sorted(self, small_trace):
        merged = merged_multicore_trace(small_trace, 3)
        assert np.all(np.diff(merged.indices) >= 0)

    def test_invalid_args(self, small_trace):
        with pytest.raises(ValueError):
            merged_multicore_trace(small_trace, 0)
        with pytest.raises(ValueError):
            merged_multicore_trace(small_trace, 2, stagger_fraction=2.0)

    def test_more_cores_more_conservative(self, small_profile):
        """Shared-domain scaling (section 6.4): with more active cores the
        domain spends less time on the efficient curve."""
        one = SuitSystem.for_cpu("A", n_cores=1).run_profile(small_profile)
        four = SuitSystem.for_cpu("A", n_cores=4).run_profile(small_profile)
        assert four.efficient_occupancy < one.efficient_occupancy
        assert four.efficiency_change < one.efficiency_change

    def test_per_core_domains_ignore_core_count(self, small_profile,
                                                small_trace):
        # CPU C has per-core domains: the merged path must not trigger.
        suit = SuitSystem.for_cpu("C", n_cores=4)
        suit.prime_trace(small_profile, small_trace)
        four = suit.run_profile(small_profile)
        solo = SuitSystem.for_cpu("C", n_cores=1)
        solo.prime_trace(small_profile, small_trace)
        one = solo.run_profile(small_profile)
        assert four.n_exceptions == one.n_exceptions


class TestEstimates:
    def test_nosimd_estimate_shape(self, cpu_c, small_profile):
        result = nosimd_estimate(cpu_c, small_profile, -0.097)
        points = cpu_c.operating_points(-0.097)
        assert result.power_ratio == pytest.approx(points.power_e)
        # -2 % noSIMD cost against a ~+3 % efficient-curve speedup.
        assert -0.02 < result.perf_change < 0.04

    def test_emulation_estimate_adds_call_costs(self, cpu_c, small_profile,
                                                small_trace):
        base = nosimd_estimate(cpu_c, small_profile, -0.097)
        emu = emulation_estimate(cpu_c, small_profile, small_trace, -0.097)
        expected_stall = small_trace.n_events * cpu_c.emulation_call_delay.mean_s
        assert emu.duration_s == pytest.approx(base.duration_s + expected_stall)
        assert emu.n_exceptions == small_trace.n_events

    def test_emulation_catastrophic_for_dense_traces(self, cpu_c,
                                                     dense_profile,
                                                     dense_trace):
        emu = emulation_estimate(cpu_c, dense_profile, dense_trace, -0.097)
        assert emu.perf_change < -0.20

    def test_nosimd_speedup_benchmarks_gain(self, cpu_c):
        # x264 is faster without SIMD (AVX throttling): big win on E.
        result = nosimd_estimate(cpu_c, spec_profile("525.x264"), -0.097)
        assert result.perf_change > 0.08
