"""Integration tests: whole-system scenarios across modules."""

import pytest

from repro import (
    SuitSystem,
    all_spec_profiles,
    geomean_change,
    spec_profile,
)
from repro.core.params import StrategyParams
from repro.workloads.network import NGINX_PROFILE


class TestPaperHeadlines:
    """The abstract's headline claims, end to end (on a SPEC subset)."""

    SUBSET = ("557.xz", "502.gcc", "520.omnetpp", "525.x264", "549.fotonik3d",
              "527.cam4")

    @pytest.fixture(scope="class")
    def results(self):
        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097)
        return [suit.run_profile(spec_profile(n)) for n in self.SUBSET]

    def test_efficiency_gain_without_performance_loss(self, results):
        eff = geomean_change([r.efficiency_change for r in results])
        perf = geomean_change([r.perf_change for r in results])
        assert eff > 0.05  # paper: +11 % over the full suite
        assert perf > -0.02  # paper: ~no performance impact

    def test_trap_sparse_benchmarks_stay_efficient(self, results):
        xz = next(r for r in results if r.workload == "557.xz")
        assert xz.efficient_occupancy > 0.9
        assert xz.efficiency_change > 0.15

    def test_trap_dense_benchmarks_stay_conservative(self, results):
        omnetpp = next(r for r in results if r.workload == "520.omnetpp")
        assert omnetpp.efficient_occupancy < 0.1
        # ...but lose almost nothing (the point of SUIT's design).
        assert omnetpp.perf_change > -0.01

    def test_every_benchmark_gains_efficiency_with_fv(self, results):
        # Paper section 6.6: with fV, all SPEC benchmarks gain.
        for r in results:
            assert r.efficiency_change > 0.0, r.workload


class TestOffsetScaling:
    def test_efficiency_roughly_doubles_from_70_to_97(self):
        # Paper section 6.3: quadratic voltage dependency.
        gains = {}
        for offset in (-0.070, -0.097):
            suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                      voltage_offset=offset)
            r = suit.run_profile(spec_profile("557.xz"))
            gains[offset] = r.efficiency_change
        ratio = gains[-0.097] / gains[-0.070]
        assert 1.3 < ratio < 2.6


class TestStrategySelection:
    def test_fv_beats_emulation_on_crypto_workloads(self):
        fv = SuitSystem.for_cpu("A", strategy_name="fV",
                                voltage_offset=-0.097)
        emu = SuitSystem.for_cpu("A", strategy_name="e",
                                 voltage_offset=-0.097)
        trace = fv._trace(NGINX_PROFILE)
        emu.prime_trace(NGINX_PROFILE, trace)
        r_fv = fv.run_profile(NGINX_PROFILE)
        r_emu = emu.run_profile(NGINX_PROFILE)
        assert r_fv.efficiency_change > 0.0
        assert r_emu.perf_change < -0.9  # paper: -98 %

    def test_emulation_beats_switching_on_trap_free_work(self, small_profile):
        import numpy as np

        from repro.workloads.trace import FaultableTrace
        from repro.isa.opcodes import Opcode

        empty = FaultableTrace(
            name=small_profile.name, n_instructions=small_profile.n_instructions,
            ipc=small_profile.ipc, indices=np.array([], dtype=np.int64),
            opcodes=np.array([], dtype=np.uint8), opcode_table=(Opcode.VOR,))
        emu = SuitSystem.for_cpu("A", strategy_name="e", voltage_offset=-0.097)
        emu.prime_trace(small_profile, empty)
        result = emu.run_profile(small_profile)
        # Zero traps: pure efficient-curve execution.
        assert result.n_exceptions == 0
        assert result.efficiency_change > 0.07


class TestParameterRobustness:
    def test_deadline_plateau(self):
        """Section 6.4: varying the deadline +-10 us barely moves the
        average efficiency — SUIT works as a single OS-wide policy."""
        profile = spec_profile("502.gcc")
        effs = []
        for dl in (20e-6, 30e-6, 40e-6):
            suit = SuitSystem.for_cpu(
                "C", strategy_name="fV", voltage_offset=-0.097,
                params=StrategyParams(dl, 450e-6, 3, 14.0))
            effs.append(suit.run_profile(profile).efficiency_change)
        assert max(effs) - min(effs) < 0.02


class TestSecurityEndToEnd:
    def test_no_faultable_executes_enabled_on_e(self):
        """The simulator's core invariant: every faultable execution
        happens either disabled (trapped) or on the conservative curve."""
        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097)
        result = suit.run_profile(spec_profile("502.gcc"),
                                  record_timeline=True)
        # Timeline sanity: every E-state entry has instructions disabled.
        for _, label in result.timeline:
            state, _, flags = label.partition("/")
            if state == "E":
                assert flags == "disabled"
