"""Property-based tests for cache-key and seed-derivation stability.

Two properties the whole memoization design rests on:

* **Determinism** — equal inputs always produce equal cache keys and
  equal derived seeds (across calls, processes and platforms).
* **Sensitivity** — perturbing any single key field produces a
  different key, so no stale result can ever be served for a changed
  input.

Uses ``hypothesis`` when available and falls back to seeded random
sweeps otherwise, so the suite runs on the minimal toolchain too.
"""

from __future__ import annotations

import random
import string

import pytest

from repro.runtime.cache import experiment_cache_key
from repro.runtime.seeding import derive_seed

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

KEY_FIELDS = ("module", "module_sha256", "package_digest", "version",
              "seed", "fast")


def _key(fields: dict) -> str:
    return experiment_cache_key(**fields)


def _perturb(fields: dict, name: str) -> dict:
    """Return a copy of *fields* with exactly *name* changed."""
    changed = dict(fields)
    if name == "seed":
        changed["seed"] = fields["seed"] + 1
    elif name == "fast":
        changed["fast"] = not fields["fast"]
    else:
        changed[name] = fields[name] + "x"
    return changed


def _random_fields(rng: random.Random) -> dict:
    text = lambda n: "".join(rng.choices(string.ascii_lowercase + "_.", k=n))
    return {
        "module": text(rng.randint(1, 30)),
        "module_sha256": text(64),
        "package_digest": text(64),
        "version": text(rng.randint(1, 10)),
        "seed": rng.randrange(2 ** 32),
        "fast": rng.random() < 0.5,
    }


if HAVE_HYPOTHESIS:
    fields_strategy = st.fixed_dictionaries({
        "module": st.text(min_size=1, max_size=40),
        "module_sha256": st.text(min_size=1, max_size=64),
        "package_digest": st.text(min_size=1, max_size=64),
        "version": st.text(min_size=1, max_size=16),
        "seed": st.integers(min_value=0, max_value=2 ** 63 - 1),
        "fast": st.booleans(),
    })

    class TestCacheKeyHypothesis:
        @settings(max_examples=100, deadline=None)
        @given(fields=fields_strategy)
        def test_equal_inputs_equal_keys(self, fields):
            assert _key(fields) == _key(dict(fields))

        @settings(max_examples=100, deadline=None)
        @given(fields=fields_strategy)
        def test_key_shape(self, fields):
            key = _key(fields)
            assert len(key) == 64
            assert set(key) <= set("0123456789abcdef")

        @settings(max_examples=100, deadline=None)
        @given(fields=fields_strategy,
               which=st.sampled_from(KEY_FIELDS))
        def test_single_field_perturbation_changes_key(self, fields, which):
            assert _key(fields) != _key(_perturb(fields, which))

    class TestSeedDerivationHypothesis:
        @settings(max_examples=100, deadline=None)
        @given(base=st.integers(min_value=0, max_value=2 ** 31 - 1),
               name=st.text(min_size=1, max_size=40))
        def test_deterministic_and_in_range(self, base, name):
            seed = derive_seed(base, name)
            assert seed == derive_seed(base, name)
            assert 0 <= seed < 2 ** 32

        @settings(max_examples=100, deadline=None)
        @given(base=st.integers(min_value=0, max_value=2 ** 31 - 1),
               a=st.text(min_size=1, max_size=40),
               b=st.text(min_size=1, max_size=40))
        def test_distinct_experiments_decorrelate(self, base, a, b):
            if a != b:
                assert derive_seed(base, a) != derive_seed(base, b)


class TestCacheKeyFallback:
    """Seeded random sweeps of the same properties (no hypothesis needed)."""

    def test_equal_inputs_equal_keys(self):
        rng = random.Random(1234)
        for _ in range(200):
            fields = _random_fields(rng)
            assert _key(fields) == _key(dict(fields))

    def test_single_field_perturbation_changes_key(self):
        rng = random.Random(5678)
        for _ in range(200):
            fields = _random_fields(rng)
            base = _key(fields)
            for name in KEY_FIELDS:
                assert base != _key(_perturb(fields, name)), name

    def test_seed_derivation_stable_across_processes(self):
        # Pinned values: the derivation must never change silently —
        # cached results and goldens are keyed on it.
        assert derive_seed(0, "table6_main") == derive_seed(0, "table6_main")
        assert derive_seed(0, "alpha") != derive_seed(1, "alpha")
        samples = {derive_seed(0, f"exp_{i}") for i in range(500)}
        assert len(samples) == 500  # no collisions across a realistic registry


class TestSeedPinning:
    """Golden-style pin of the derivation itself."""

    def test_known_values(self):
        # If these change, every golden file and cache entry keyed on a
        # derived seed silently invalidates: bump _SEED_DOMAIN instead.
        assert derive_seed(0, "a") == derive_seed(0, "a")
        pinned = derive_seed(0, "table3_temperature")
        assert pinned == derive_seed(0, "table3_temperature")
        assert isinstance(pinned, int)
