"""Tests for the security analysis, monitor and attack demos."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.model import FaultModel
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.security.analysis import (
    check_conservative_curve,
    check_efficient_curve,
    imul_hardening_headroom,
    reductionist_argument,
)
from repro.security.attacks import (
    AesFaultDemo,
    RsaCrtSigner,
    bellcore_attack,
    rsa_keygen,
)
from repro.security.invariants import ExecutionRecord, SecurityMonitor

FREQS = (2.0e9, 3.0e9, 4.0e9)


@pytest.fixture(scope="module")
def curve():
    return DVFSCurve(I9_9900K_CURVE_POINTS)


@pytest.fixture(scope="module")
def chip(curve):
    rng = np.random.default_rng(11)
    return FaultModel().sample_chip(curve, n_cores=4, rng=rng, exhibits=True)


class TestReductionistArgument:
    def test_conservative_curve_is_safe(self, chip):
        report = check_conservative_curve(chip, FREQS)
        assert report.safe
        assert report.checked > 0

    def test_efficient_curve_safe_with_suit(self, chip):
        report = check_efficient_curve(chip, -0.070, FREQS, harden_imul=True)
        assert report.safe, report.violations

    def test_efficient_curve_unsafe_without_imul_hardening(self, chip):
        # Un-hardened IMUL faults at -70 mV: the hardening is load-bearing.
        report = check_efficient_curve(chip, -0.070, FREQS, harden_imul=False)
        assert not report.safe
        assert all(op is Opcode.IMUL for op, _, _ in report.violations)

    def test_full_argument_holds(self, chip):
        result = reductionist_argument(chip, -0.070, FREQS)
        assert result.holds

    def test_excessive_offset_breaks_even_suit(self, chip):
        # Way past every margin: even non-faultable instructions fault.
        report = check_efficient_curve(chip, -0.300, FREQS)
        assert not report.safe

    def test_positive_offset_rejected(self, chip):
        with pytest.raises(ValueError):
            check_efficient_curve(chip, +0.05, FREQS)

    def test_headroom_function(self, curve):
        assert imul_hardening_headroom(curve, 5e9) == pytest.approx(0.22, abs=0.03)
        assert imul_hardening_headroom(curve, 1e9) < 0.03


class TestSecurityMonitor:
    def test_safe_executions_pass(self, chip, curve):
        monitor = SecurityMonitor(chip)
        record = ExecutionRecord(Opcode.VOR, 0, 4e9, curve.voltage_at(4e9))
        assert monitor.observe(record)
        assert monitor.report.secure

    def test_undervolted_faultable_flagged(self, chip, curve):
        monitor = SecurityMonitor(chip)
        v = curve.voltage_at(4e9) - 0.120
        report = monitor.audit_operating_point(TRAPPED_OPCODES, 0, 4e9, v)
        assert not report.secure
        assert report.observed == len(TRAPPED_OPCODES)

    def test_non_faultable_never_flagged(self, chip, curve):
        monitor = SecurityMonitor(chip)
        v = curve.voltage_at(4e9) - 0.120
        assert monitor.observe(ExecutionRecord(Opcode.ALU, 0, 4e9, v))

    def test_hardened_imul_safe_where_stock_faults(self, chip, curve):
        v = curve.voltage_at(4e9) - 0.070
        record = ExecutionRecord(Opcode.IMUL, 0, 4e9, v)
        assert SecurityMonitor(chip, hardened_imul=True).observe(record)
        assert not SecurityMonitor(chip, hardened_imul=False).observe(record)


class TestRsa:
    def test_keygen_produces_working_keys(self):
        key = rsa_keygen(bits=256, seed=1)
        message = 0x1234567890ABCDEF
        signer = RsaCrtSigner(key)
        sig = signer.sign(message)
        assert signer.verify(message, sig)

    def test_crt_parameters_consistent(self):
        key = rsa_keygen(bits=256, seed=2)
        assert key.p * key.q == key.n
        assert (key.q_inv * key.q) % key.p == 1

    def test_message_range_checked(self):
        key = rsa_keygen(bits=256, seed=1)
        with pytest.raises(ValueError):
            RsaCrtSigner(key).sign(key.n + 1)


class TestBellcoreAttack:
    def _faulty_signer(self, chip, curve, key):
        rng = np.random.default_rng(5)
        injector = FaultInjector(chip, rng)
        # Deep undervolt, no SUIT: IMUL faults deterministically.
        voltage = curve.voltage_at(4e9) - 0.10
        return RsaCrtSigner(key, injector, core=0, frequency=4e9,
                            voltage=voltage)

    def test_attack_recovers_factor(self, chip, curve):
        key = rsa_keygen(bits=256, seed=3)
        signer = self._faulty_signer(chip, curve, key)
        message = 0xC0FFEE
        for _ in range(10):
            sig = signer.sign(message)
            if signer.verify(message, sig):
                continue
            factor = bellcore_attack(key.n, key.e, message, sig)
            if factor is not None:
                assert factor in (key.p, key.q)
                return
        pytest.fail("no usable faulty signature produced")

    def test_correct_signature_reveals_nothing(self):
        key = rsa_keygen(bits=256, seed=4)
        signer = RsaCrtSigner(key)
        sig = signer.sign(0xBEEF)
        assert bellcore_attack(key.n, key.e, 0xBEEF, sig) is None

    def test_suit_blocks_the_attack(self, chip, curve):
        """With SUIT, IMUL is hardened: the same -100 mV efficient-curve
        point produces no faults and no factorisation."""
        key = rsa_keygen(bits=256, seed=3)
        hardened = chip.with_hardened_imul()
        rng = np.random.default_rng(5)
        injector = FaultInjector(hardened, rng)
        voltage = curve.voltage_at(4e9) - 0.10
        signer = RsaCrtSigner(key, injector, core=0, frequency=4e9,
                              voltage=voltage)
        message = 0xC0FFEE
        for _ in range(10):
            sig = signer.sign(message)
            assert signer.verify(message, sig)
        assert injector.fault_count == 0


class TestAesFaultDemo:
    def test_faults_corrupt_ciphertext_without_suit(self, chip, curve):
        rng = np.random.default_rng(6)
        injector = FaultInjector(chip, rng)
        voltage = curve.voltage_at(4e9) - 0.15
        demo = AesFaultDemo(b"k" * 16, injector, core=0, frequency=4e9,
                            voltage=voltage)
        block = b"p" * 16
        assert demo.encrypt_block(block) != demo.reference(block)

    def test_suit_conservative_voltage_is_correct(self, chip, curve):
        """SUIT traps AESENC and re-executes on the conservative curve:
        full voltage, correct ciphertext."""
        rng = np.random.default_rng(6)
        injector = FaultInjector(chip, rng)
        demo = AesFaultDemo(b"k" * 16, injector, core=0, frequency=4e9,
                            voltage=curve.voltage_at(4e9))
        block = b"p" * 16
        assert demo.encrypt_block(block) == demo.reference(block)
        assert injector.fault_count == 0
