"""Unit tests for operating strategies against a scripted CpuControl."""

from typing import List

import pytest

from repro.core.params import DEFAULT_PARAMS_INTEL, StrategyParams
from repro.core.strategy import (
    CpuControl,
    EmulationStrategy,
    FrequencyStrategy,
    FVStrategy,
    SuitState,
    VoltageStrategy,
    strategy_for,
)


class ScriptedCpu(CpuControl):
    """Records the calls a strategy makes (a Listing 1 test double)."""

    def __init__(self, exception_count: int = 0) -> None:
        self.calls: List[tuple] = []
        self._exception_count = exception_count
        self._now = 0.0

    def change_pstate_wait(self, target: SuitState) -> None:
        self.calls.append(("wait", target))

    def change_pstate_async(self, target: SuitState) -> None:
        self.calls.append(("async", target))

    def set_instructions_disabled(self, disabled: bool) -> None:
        self.calls.append(("disable", disabled))

    def set_timer_interrupt(self, deadline_s: float) -> None:
        self.calls.append(("timer", deadline_s))

    def exception_count_in_timespan(self, timespan_s: float) -> int:
        return self._exception_count

    def emulate_current_instruction(self) -> None:
        self.calls.append(("emulate",))

    @property
    def now_s(self) -> float:
        return self._now


class TestFVStrategy:
    def test_listing1_sequence(self):
        cpu = ScriptedCpu()
        FVStrategy(DEFAULT_PARAMS_INTEL).on_disabled_instruction(cpu)
        assert cpu.calls == [
            ("wait", SuitState.CF),
            ("async", SuitState.CV),
            ("disable", False),
            ("timer", pytest.approx(30e-6)),
        ]

    def test_thrashing_stretches_deadline(self):
        cpu = ScriptedCpu(exception_count=3)
        FVStrategy(DEFAULT_PARAMS_INTEL).on_disabled_instruction(cpu)
        assert cpu.calls[-1] == ("timer", pytest.approx(30e-6 * 14))

    def test_below_threshold_keeps_deadline(self):
        cpu = ScriptedCpu(exception_count=2)
        FVStrategy(DEFAULT_PARAMS_INTEL).on_disabled_instruction(cpu)
        assert cpu.calls[-1] == ("timer", pytest.approx(30e-6))

    def test_timer_returns_to_e(self):
        cpu = ScriptedCpu()
        FVStrategy(DEFAULT_PARAMS_INTEL).on_timer_interrupt(cpu)
        assert cpu.calls == [("disable", True), ("async", SuitState.E)]


class TestFrequencyStrategy:
    def test_only_frequency_path(self):
        cpu = ScriptedCpu()
        FrequencyStrategy(DEFAULT_PARAMS_INTEL).on_disabled_instruction(cpu)
        targets = [c[1] for c in cpu.calls if c[0] in ("wait", "async")]
        assert targets == [SuitState.CF]


class TestVoltageStrategy:
    def test_waits_for_cv(self):
        cpu = ScriptedCpu()
        VoltageStrategy(DEFAULT_PARAMS_INTEL).on_disabled_instruction(cpu)
        assert cpu.calls[0] == ("wait", SuitState.CV)


class TestEmulationStrategy:
    def test_emulates_without_switching(self):
        cpu = ScriptedCpu()
        EmulationStrategy(DEFAULT_PARAMS_INTEL).on_disabled_instruction(cpu)
        assert cpu.calls == [("emulate",)]

    def test_never_switches_flag(self):
        assert not EmulationStrategy.switches_curves
        assert FVStrategy.switches_curves

    def test_timer_is_a_bug(self):
        with pytest.raises(RuntimeError):
            EmulationStrategy(DEFAULT_PARAMS_INTEL).on_timer_interrupt(
                ScriptedCpu())


class TestStrategyFactory:
    @pytest.mark.parametrize("name,cls", [
        ("fV", FVStrategy), ("f", FrequencyStrategy),
        ("V", VoltageStrategy), ("e", EmulationStrategy)])
    def test_lookup(self, name, cls):
        strategy = strategy_for(name, DEFAULT_PARAMS_INTEL)
        assert isinstance(strategy, cls)
        assert strategy.name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            strategy_for("warp", DEFAULT_PARAMS_INTEL)
