"""Tests for the SUIT MSR software interface (sections 3.2/3.3)."""

import pytest

from repro.hardware.interface import (
    CurveSelectError,
    SuitMsrInterface,
    decode_disable_mask,
    encode_disable_mask,
)
from repro.hardware.msr import Msr
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.power.dvfs import CurveKind


class TestDisableMask:
    def test_roundtrip(self):
        subset = {Opcode.AESENC, Opcode.VOR, Opcode.VPADDQ}
        assert decode_disable_mask(encode_disable_mask(subset)) == subset

    def test_imul_encodable(self):
        # IMUL is in the faultable set (bit 0: most sensitive), even
        # though SUIT ships it hardened instead of disabling it.
        assert encode_disable_mask([Opcode.IMUL]) == 1

    def test_non_faultable_rejected(self):
        with pytest.raises(ValueError):
            encode_disable_mask([Opcode.ALU])

    def test_empty_mask(self):
        assert encode_disable_mask([]) == 0
        assert decode_disable_mask(0) == frozenset()


class TestSuitMsrInterface:
    def test_starts_conservative_all_enabled(self):
        suit = SuitMsrInterface()
        assert suit.current_curve() is CurveKind.CONSERVATIVE
        assert suit.disabled_opcodes() == frozenset()

    def test_efficient_curve_refused_while_enabled(self):
        suit = SuitMsrInterface()
        with pytest.raises(CurveSelectError):
            suit.select_curve(CurveKind.EFFICIENT)
        assert suit.current_curve() is CurveKind.CONSERVATIVE

    def test_efficient_curve_refused_with_partial_disable(self):
        suit = SuitMsrInterface()
        suit.disable([Opcode.AESENC])
        with pytest.raises(CurveSelectError):
            suit.select_curve(CurveKind.EFFICIENT)

    def test_enter_efficient_mode(self):
        suit = SuitMsrInterface()
        suit.enter_efficient_mode(deadline_s=30e-6)
        assert suit.current_curve() is CurveKind.EFFICIENT
        assert TRAPPED_OPCODES <= suit.disabled_opcodes()
        assert suit.deadline_seconds() == pytest.approx(30e-6, rel=1e-6)

    def test_cannot_reenable_on_efficient_curve(self):
        suit = SuitMsrInterface()
        suit.enter_efficient_mode(30e-6)
        with pytest.raises(CurveSelectError):
            suit.enable_all()
        assert TRAPPED_OPCODES <= suit.disabled_opcodes()

    def test_switch_back_then_enable(self):
        suit = SuitMsrInterface()
        suit.enter_efficient_mode(30e-6)
        suit.select_curve(CurveKind.CONSERVATIVE)
        suit.enable_all()
        assert suit.disabled_opcodes() == frozenset()

    def test_raw_msr_write_also_guarded(self):
        # Even bypassing the wrapper, the register write hook refuses.
        suit = SuitMsrInterface()
        with pytest.raises(CurveSelectError):
            suit.msrs.write(Msr.SUIT_CURVE_SELECT, 1)

    def test_deadline_quantised_to_tsc_ticks(self):
        suit = SuitMsrInterface(tsc_frequency=3.0e9)
        suit.set_deadline(30e-6)
        assert suit.msrs.read(Msr.SUIT_DEADLINE) == 90_000

    def test_validation(self):
        suit = SuitMsrInterface()
        with pytest.raises(ValueError):
            suit.set_deadline(0.0)
        with pytest.raises(ValueError):
            suit.msrs.write(Msr.SUIT_CURVE_SELECT, 2)
        with pytest.raises(ValueError):
            SuitMsrInterface(tsc_frequency=0.0)

    def test_is_disabled(self):
        suit = SuitMsrInterface()
        suit.disable([Opcode.VOR])
        assert suit.is_disabled(Opcode.VOR)
        assert not suit.is_disabled(Opcode.AESENC)
