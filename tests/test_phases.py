"""Tests for phase-structured workloads and phase-aware policy runs."""

import dataclasses

import numpy as np
import pytest

from repro.core.metrics import SimResult
from repro.core.policy import AdaptiveStrategyPolicy
from repro.isa.opcodes import Opcode
from repro.workloads.phases import Phase, PhasedWorkload
from repro.workloads.profile import WorkloadProfile


def _profile(name, occ, n=50_000_000, gap=2_000, episodes=4,
             mix=None):
    return WorkloadProfile(
        name=name, suite="SPECint", n_instructions=n, ipc=1.5,
        efficient_occupancy=occ, n_episodes=episodes, dense_gap=gap,
        sparse_events=2,
        opcode_mix=mix or {Opcode.VOR: 1.0})


@pytest.fixture(scope="module")
def workload():
    return PhasedWorkload("build-job", [
        Phase(_profile("compile", 0.9)),
        Phase(_profile("crypto", 0.2, mix={Opcode.AESENC: 1.0})),
        Phase(_profile("link", 0.95)),
    ])


class TestPhasedWorkload:
    def test_boundaries(self, workload):
        starts = workload.boundaries()
        assert starts == [0, 50_000_000, 100_000_000]
        assert workload.n_instructions == 150_000_000

    def test_concatenated_trace_is_valid(self, workload):
        trace = workload.concatenated_trace(seed=1)
        assert trace.n_instructions == workload.n_instructions
        assert np.all(np.diff(trace.indices) >= 0)
        assert {op for op in trace.opcode_table} == {Opcode.VOR, Opcode.AESENC}

    def test_phase_events_land_in_their_phase(self, workload):
        trace = workload.concatenated_trace(seed=1)
        starts = workload.boundaries()
        aes_code = trace.opcode_table.index(Opcode.AESENC)
        aes_positions = trace.indices[trace.opcodes == aes_code]
        assert aes_positions.min() >= starts[1]
        assert aes_positions.max() < starts[2]

    def test_phase_traces_per_phase(self, workload):
        pairs = workload.phase_traces(seed=1)
        assert len(pairs) == 3
        assert pairs[1][1].faultable_rate > pairs[0][1].faultable_rate

    def test_needs_phases(self):
        with pytest.raises(ValueError):
            PhasedWorkload("empty", [])


class TestPhaseAwarePolicy:
    def test_policy_can_differ_per_phase(self, cpu_a, workload):
        policy = AdaptiveStrategyPolicy(cpu_a, rate_margin=1.0)
        decisions = [policy.decide(trace).strategy
                     for _, trace in workload.phase_traces(seed=1)]
        # The crypto phase must be handled by switching; quiet phases
        # may choose differently — at minimum the policy is exercised
        # on every phase.
        assert decisions[1] in ("fV", "f")
        assert len(decisions) == 3

    def test_phasewise_run_aggregates(self, cpu_a, workload):
        policy = AdaptiveStrategyPolicy(cpu_a)
        total_eff_num = 0.0
        total_base = 0.0
        for phase, trace in workload.phase_traces(seed=1):
            _, result = policy.run(phase.profile, trace, -0.097)
            assert isinstance(result, SimResult)
            total_eff_num += result.duration_s * result.power_ratio
            total_base += result.baseline_duration_s
        # Whole-job efficiency positive.
        assert total_base / total_eff_num > 1.0
