"""Tests for the SUIT state-machine model checker."""

import pytest

from repro.security.model_check import (
    EVENTS,
    INITIAL_STATE,
    AbstractState,
    check_state,
    explore,
    step,
)


class TestTransitionRelation:
    def test_trap_from_steady_state(self):
        after = step(INITIAL_STATE, "faultable_instr")
        assert after == AbstractState(curve="Cf", disabled=False,
                                      timer_armed=True, pending="CV")

    def test_enabled_execution_only_rearms(self):
        conservative = AbstractState(curve="CV", disabled=False,
                                     timer_armed=True, pending=None)
        assert step(conservative, "faultable_instr") == conservative

    def test_timer_fires_only_when_armed(self):
        assert step(INITIAL_STATE, "timer_fire") is None

    def test_timer_returns_to_e_and_cancels_cv(self):
        at_cf = AbstractState(curve="Cf", disabled=False,
                              timer_armed=True, pending="CV")
        after = step(at_cf, "timer_fire")
        assert after.curve == "E"
        assert after.disabled
        assert after.pending == "E"  # the CV request was replaced

    def test_voltage_done_applies_cv(self):
        at_cf = AbstractState(curve="Cf", disabled=False,
                              timer_armed=True, pending="CV")
        after = step(at_cf, "voltage_done")
        assert after.curve == "CV"
        assert after.pending is None

    def test_stale_completion_ignored(self):
        weird = AbstractState(curve="E", disabled=True,
                              timer_armed=False, pending="CV")
        assert step(weird, "voltage_done") is None

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            step(INITIAL_STATE, "meteor_strike")


class TestInvariants:
    def test_steady_state_clean(self):
        assert check_state(INITIAL_STATE) == []

    def test_enabled_on_e_flagged(self):
        bad = AbstractState(curve="E", disabled=False, timer_armed=False)
        assert "enabled-on-efficient-curve" in check_state(bad)

    def test_conservative_without_deadline_flagged(self):
        stuck = AbstractState(curve="CV", disabled=False, timer_armed=False)
        assert "conservative-without-deadline" in check_state(stuck)


class TestExhaustiveExploration:
    def test_fv_machine_verified(self):
        result = explore()
        assert result.holds
        assert result.violations == []
        assert result.non_returning == []

    def test_explores_all_reachable_states(self):
        result = explore()
        # E-disabled, Cf-pending-CV, CV-armed, E-pending-E.
        assert result.states_explored == 4

    def test_every_event_covered_somewhere(self):
        result = explore()
        assert result.transitions >= len(EVENTS)


class TestMutationCatching:
    """The checker must reject buggy variants of the machine."""

    def test_forgetting_to_disable_is_caught(self, monkeypatch):
        import repro.security.model_check as mc

        original = mc.step

        def buggy(state, event):
            out = original(state, event)
            if event == "timer_fire" and out is not None:
                # BUG: return to E without disabling the trapped set.
                return mc.AbstractState(curve="E", disabled=False,
                                        timer_armed=False, pending="E")
            return out

        monkeypatch.setattr(mc, "step", buggy)
        result = mc.explore()
        assert not result.holds
        assert any(v.invariant == "enabled-on-efficient-curve"
                   for v in result.violations)

    def test_forgetting_the_deadline_is_caught(self, monkeypatch):
        import repro.security.model_check as mc

        original = mc.step

        def buggy(state, event):
            out = original(state, event)
            if event == "faultable_instr" and state.disabled:
                # BUG: trap without arming the deadline.
                return mc.AbstractState(curve="Cf", disabled=False,
                                        timer_armed=False, pending="CV")
            return out

        monkeypatch.setattr(mc, "step", buggy)
        result = mc.explore()
        assert not result.holds

    def test_violation_carries_a_witness_trace(self, monkeypatch):
        import repro.security.model_check as mc

        original = mc.step

        def buggy(state, event):
            out = original(state, event)
            if event == "timer_fire" and out is not None:
                return mc.AbstractState(curve="E", disabled=False,
                                        timer_armed=False, pending="E")
            return out

        monkeypatch.setattr(mc, "step", buggy)
        result = mc.explore()
        violation = result.violations[0]
        assert violation.trace  # a concrete event sequence reproduces it
        assert violation.trace[-1] == "timer_fire"


class TestBoundedExploration:
    """The planted-violation coverage the campaign work leans on: a bug
    anywhere in the transition relation must surface within the default
    exploration bound, and the bound itself must stay effective."""

    def _plant_timerless_cv(self, monkeypatch):
        # BUG: the regulator completion applies CV but drops the armed
        # deadline, so the domain can sit conservative forever.
        import repro.security.model_check as mc

        original = mc.step

        def buggy(state, event):
            out = original(state, event)
            if (event == "voltage_done" and out is not None
                    and out.curve == "CV"):
                return mc.AbstractState(curve="CV", disabled=False,
                                        timer_armed=False, pending=None)
            return out

        monkeypatch.setattr(mc, "step", buggy)
        return mc

    def test_planted_violation_found_within_default_bound(self, monkeypatch):
        mc = self._plant_timerless_cv(monkeypatch)
        result = mc.explore()
        assert not result.holds
        assert any(v.invariant == "conservative-without-deadline"
                   for v in result.violations)
        # The witness fits well inside the depth-12 default bound.
        witness = min((v.trace for v in result.violations
                       if v.invariant == "conservative-without-deadline"),
                      key=len)
        assert 0 < len(witness) <= 12
        # Replaying the witness from the initial state reproduces it.
        state = mc.INITIAL_STATE
        for event in witness:
            state = mc.step(state, event)
        assert "conservative-without-deadline" in mc.check_state(state)

    def test_shallow_bound_misses_deep_violation(self, monkeypatch):
        # The violating state is >= 2 events from boot (trap, then the
        # completion); a depth-1 exploration must not find it — the
        # bound is real, not decorative.
        mc = self._plant_timerless_cv(monkeypatch)
        shallow = mc.explore(max_depth=1)
        assert not any(v.invariant == "conservative-without-deadline"
                       for v in shallow.violations)

    def test_exploration_is_bounded_by_the_abstract_space(self):
        result = explore(max_depth=1000)
        # 3 curves x 2 disabled x 2 armed x 3 pending = 36 states max;
        # the healthy machine reaches only its 4 legal ones.
        assert result.states_explored <= 36
        assert result.states_explored == 4

    def test_explore_from_arbitrary_initial_state(self):
        # A mid-flight state (conservative, timer running) still
        # verifies and still drains back to the efficient steady state.
        mid = AbstractState(curve="CV", disabled=False,
                            timer_armed=True, pending=None)
        result = explore(initial=mid, max_depth=12)
        assert result.holds
        assert result.non_returning == []
