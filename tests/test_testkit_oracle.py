"""Tests for the differential oracle and the seeded chaos soak.

The oracle's whole job is the *degraded vs wrong* distinction: explicit
failures are tolerated under chaos, silently different ``ok`` payloads
never are.  These tests pin the canonical request set, each channel on
a clean stack, the wrong-answer detector itself (with a lying fake
service), and a deterministic thread-tier soak end to end.
"""

import asyncio
import copy

import pytest

from repro.service.request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    SimRequest,
    SimResponse,
)
from repro.testkit.oracle import ChannelReport, DifferentialOracle
from repro.testkit.soak import ChaosSoak, SoakConfig

run = asyncio.run


class TestCanonicalRequests:
    def test_deterministic_for_seed(self):
        one = DifferentialOracle.canonical_requests(n=8, seed=3)
        two = DifferentialOracle.canonical_requests(n=8, seed=3)
        assert one == two

    def test_varies_with_seed(self):
        assert (DifferentialOracle.canonical_requests(n=8, seed=0)
                != DifferentialOracle.canonical_requests(n=8, seed=1))

    def test_requests_are_valid_and_varied(self):
        requests = DifferentialOracle.canonical_requests(n=8)
        for request in requests:
            request.validate()
        assert len({r.cpu for r in requests}) > 1
        assert len({r.workload for r in requests}) > 1

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            DifferentialOracle.canonical_requests(n=0)

    def test_rejects_hook_workloads(self):
        bad = SimRequest(cpu="A", workload="__crash__", strategy="fV")
        with pytest.raises(ValueError):
            DifferentialOracle([bad])


class TestChannelReport:
    def test_buckets(self):
        report = ChannelReport("t")
        request = SimRequest(cpu="A", workload="557.xz", strategy="fV")
        report.record(request, {"a": 1}, {"a": 1})
        report.record(request, {"a": 1}, None, status=STATUS_FAILED)
        report.record(request, {"a": 1}, None, status=STATUS_TIMEOUT)
        report.record(request, {"a": 1}, {"a": 2})
        assert (report.checked, report.ok, report.degraded, report.wrong) \
            == (4, 1, 2, 1)
        assert len(report.mismatches) == 1
        assert report.mismatches[0]["request"] == request.to_dict()

    def test_mismatch_cap(self):
        report = ChannelReport("t")
        for _ in range(40):
            report.record(None, {"a": 1}, {"a": 2})
        assert report.wrong == 40
        assert len(report.mismatches) == ChannelReport._MISMATCH_CAP


class TestCleanChannels:
    """On a fault-free stack every channel must agree exactly."""

    def test_sweep_and_batch_match_scalar(self):
        oracle = DifferentialOracle(
            DifferentialOracle.canonical_requests(n=6))
        outcome = oracle.run_local(engine=False)
        assert outcome.passed
        for channel in outcome.channels:
            assert channel.checked == 6
            assert channel.ok == 6

    def test_engine_channel_self_consistent(self):
        oracle = DifferentialOracle(
            DifferentialOracle.canonical_requests(n=2))
        report = oracle.check_engine()
        assert report.wrong == 0
        assert report.ok == 1

    def test_reference_is_cached(self):
        oracle = DifferentialOracle(
            DifferentialOracle.canonical_requests(n=2))
        assert oracle.reference() is oracle.reference()


class _LyingService:
    """A fake service: answers 'ok' but perturbs one field."""

    def __init__(self, reference, tamper_index):
        self._reference = reference
        self._tamper = tamper_index
        self._i = 0

    async def submit(self, request):
        payload = copy.deepcopy(self._reference[self._i])
        if self._i == self._tamper:
            key = sorted(payload)[0]
            payload[key] = "tampered"
        self._i += 1
        return SimResponse(request=request, status=STATUS_OK,
                           payload=payload)


class TestWrongAnswerDetection:
    def test_service_channel_flags_silent_corruption(self):
        oracle = DifferentialOracle(
            DifferentialOracle.canonical_requests(n=4))
        service = _LyingService(oracle.reference(), tamper_index=2)
        report = run(oracle.check_service(service))
        assert report.checked == 4
        assert report.wrong == 1
        assert report.ok == 3
        assert report.mismatches[0]["request"] \
            == oracle.requests[2].to_dict()


class TestChaosSoak:
    def test_fault_schedule_is_pure_function_of_seed(self):
        cfg = SoakConfig(seed=5)
        assert cfg.build_plan().to_json_dict() \
            == SoakConfig(seed=5).build_plan().to_json_dict()
        assert cfg.build_plan().to_json_dict() \
            != SoakConfig(seed=6).build_plan().to_json_dict()

    def test_zero_rates_drop_out_of_the_spec_set(self):
        cfg = SoakConfig(worker_kill_rate=0.0, shm_unlink_rate=0.0,
                         manifest_corrupt_rate=0.0, cache_corrupt_rate=0.5,
                         admission_reject_rate=0.0)
        sites = {spec.site for spec in cfg.fault_specs()}
        assert sites == {"cache.entry"}

    def test_thread_tier_soak_passes_with_zero_wrong_answers(self):
        cfg = SoakConfig(seed=13, passes=2, n_requests=4,
                         use_processes=False,
                         worker_kill_rate=0.0, shm_unlink_rate=0.0,
                         manifest_corrupt_rate=0.0,
                         cache_corrupt_rate=0.3,
                         admission_reject_rate=0.1,
                         horizon=2000, n_shards=1, workers_per_shard=2)
        result = run(ChaosSoak(cfg).run())
        assert result.passed
        assert result.passes == 2
        assert result.wrong_answers == 0
        report = result.to_json_dict()
        assert report["summary"]["injected"] > 0
        assert report["summary"]["wrong_answers"] == 0
        assert report["summary"]["recovered"] \
            == report["summary"]["injected"]
        assert report["fault_schedule"] == cfg.build_plan().to_json_dict()
        assert report["service_metrics"]["requests_submitted"] == 8
