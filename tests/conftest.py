"""Shared fixtures: CPUs, small workloads, seeded RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.models import (
    cpu_a_i9_9900k,
    cpu_b_ryzen_7700x,
    cpu_c_xeon_4208,
    cpu_i5_1035g1,
)
from repro.isa.opcodes import Opcode
from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def cpu_a():
    return cpu_a_i9_9900k()


@pytest.fixture(scope="session")
def cpu_b():
    return cpu_b_ryzen_7700x()


@pytest.fixture(scope="session")
def cpu_c():
    return cpu_c_xeon_4208()


@pytest.fixture(scope="session")
def cpu_i5():
    return cpu_i5_1035g1()


@pytest.fixture(scope="session")
def small_profile():
    """A small, fast-to-simulate workload profile."""
    return WorkloadProfile(
        name="small",
        suite="SPECint",
        n_instructions=200_000_000,
        ipc=1.5,
        efficient_occupancy=0.7,
        n_episodes=20,
        dense_gap=5_000,
        sparse_events=5,
        imul_density=0.001,
        imul_chain_fraction=0.2,
        nosimd_overhead={"intel": -0.02, "amd": -0.03},
        opcode_mix={Opcode.VOR: 0.5, Opcode.VXOR: 0.5},
    )


@pytest.fixture(scope="session")
def small_trace(small_profile):
    return generate_trace(small_profile, seed=1)


@pytest.fixture(scope="session")
def dense_profile():
    """A trap-dense profile (omnetpp-like)."""
    return WorkloadProfile(
        name="dense",
        suite="SPECint",
        n_instructions=100_000_000,
        ipc=1.0,
        efficient_occupancy=0.05,
        n_episodes=4,
        dense_gap=2_000,
        sparse_events=0,
        opcode_mix={Opcode.VPADDQ: 1.0},
    )


@pytest.fixture(scope="session")
def dense_trace(dense_profile):
    return generate_trace(dense_profile, seed=2)
