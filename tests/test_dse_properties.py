"""Property suite: the DSE's dominance and decision algebra.

Pinned here, per the issue:

* Pareto-front invariants — no front member dominates another, every
  excluded point is dominated by some front member, and the front (as
  a set of points) is invariant under input permutation;
* crowding distance — per-objective boundary points are infinite;
* MCDM — weighted-sum and TOPSIS rankings are stable under any
  positive affine rescaling of an objective column (volts vs
  millivolts must not change the recommendation).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.mcdm import (minmax_normalize, rank_rows, topsis_closeness,
                            weighted_sum_scores)
from repro.dse.pareto import (crowding_distance, dominates, hypervolume,
                              non_dominated_sort, pareto_front_indices)

# Integer-valued floats keep every affine transform exactly
# representable, so rank comparisons are never at the mercy of
# last-ulp rounding (the invariance is exact, see test below).
coords = st.integers(-50, 50).map(float)


def point_lists(n_obj: int, min_size: int = 1, max_size: int = 24):
    """Strategy: a list of *n_obj*-dimensional objective vectors."""
    return st.lists(st.tuples(*[coords] * n_obj),
                    min_size=min_size, max_size=max_size)


def violation_lists(points):
    """Strategy: one non-negative violation per point (many zeros)."""
    return st.lists(st.sampled_from((0.0, 0.0, 0.0, 1.0, 2.5)),
                    min_size=len(points), max_size=len(points))


class TestParetoFrontInvariants:
    @settings(max_examples=120, deadline=None)
    @given(point_lists(3))
    def test_no_front_member_dominates_another(self, points):
        front = pareto_front_indices(points)
        for i in front:
            for j in front:
                assert not dominates(points[i], points[j])

    @settings(max_examples=120, deadline=None)
    @given(point_lists(3))
    def test_every_excluded_point_is_dominated(self, points):
        front = set(pareto_front_indices(points))
        for j in range(len(points)):
            if j not in front:
                assert any(dominates(points[i], points[j]) for i in front)

    @settings(max_examples=80, deadline=None)
    @given(point_lists(3, max_size=12), st.randoms(use_true_random=False))
    def test_front_is_permutation_invariant(self, points, rng):
        shuffled = list(points)
        rng.shuffle(shuffled)
        original = {tuple(points[i]) for i in pareto_front_indices(points)}
        permuted = {tuple(shuffled[i])
                    for i in pareto_front_indices(shuffled)}
        assert original == permuted

    @settings(max_examples=80, deadline=None)
    @given(point_lists(2).flatmap(
        lambda pts: st.tuples(st.just(pts), violation_lists(pts))))
    def test_constrained_front_has_no_mutual_domination(self, case):
        points, violations = case
        front = pareto_front_indices(points, violations)
        for i in front:
            for j in front:
                assert not dominates(points[i], points[j],
                                     violations[i], violations[j])
        # Deb's rules: one feasible point anywhere evicts every
        # infeasible point from the front.
        if any(v == 0.0 for v in violations):
            assert all(violations[i] == 0.0 for i in front)

    @settings(max_examples=80, deadline=None)
    @given(point_lists(3, max_size=16))
    def test_fronts_partition_the_points(self, points):
        fronts = non_dominated_sort(points)
        flat = [i for front in fronts for i in front]
        assert sorted(flat) == list(range(len(points)))

    @settings(max_examples=60, deadline=None)
    @given(point_lists(3, max_size=12))
    def test_later_fronts_are_dominated_by_earlier_ones(self, points):
        fronts = non_dominated_sort(points)
        for rank in range(1, len(fronts)):
            for j in fronts[rank]:
                assert any(dominates(points[i], points[j])
                           for i in fronts[rank - 1])


class TestCrowdingDistance:
    @settings(max_examples=100, deadline=None)
    @given(point_lists(3, min_size=2))
    def test_boundary_points_are_infinite(self, points):
        distance = crowding_distance(points)
        for m in range(3):
            lo = min(range(len(points)), key=lambda i: (points[i][m], i))
            hi = max(range(len(points)), key=lambda i: (points[i][m], i))
            assert math.isinf(distance[lo])
            assert math.isinf(distance[hi])

    @settings(max_examples=100, deadline=None)
    @given(point_lists(3))
    def test_distances_are_non_negative(self, points):
        assert all(d >= 0.0 for d in crowding_distance(points))

    def test_single_point_is_boundary_everywhere(self):
        assert crowding_distance([(1.0, 2.0, 3.0)]) == [float("inf")]


class TestHypervolume:
    REF = (60.0, 60.0, 60.0)

    @settings(max_examples=80, deadline=None)
    @given(point_lists(3, max_size=10))
    def test_bounded_by_reference_box(self, points):
        volume = hypervolume(points, self.REF)
        assert 0.0 <= volume <= 110.0 ** 3

    @settings(max_examples=60, deadline=None)
    @given(point_lists(3, max_size=8), st.tuples(coords, coords, coords))
    def test_adding_a_point_never_shrinks_it(self, points, extra):
        before = hypervolume(points, self.REF)
        after = hypervolume(points + [extra], self.REF)
        assert after >= before - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(point_lists(3, max_size=10), st.randoms(use_true_random=False))
    def test_permutation_invariant(self, points, rng):
        shuffled = list(points)
        rng.shuffle(shuffled)
        assert hypervolume(points, self.REF) == \
            hypervolume(shuffled, self.REF)

    def test_matches_hand_computed_boxes(self):
        # One point dominates [0,1]x[0,1]x[0,1] against reference 1s.
        assert hypervolume([(0.0, 0.0, 0.0)], (1.0, 1.0, 1.0)) == 1.0
        # Two staircase points: union of 2x1 and 1x2 columns = 3,
        # extruded over dz=1.
        assert hypervolume([(0.0, 1.0, 0.0), (1.0, 0.0, 0.0)],
                           (2.0, 2.0, 1.0)) == 3.0


# One affine transform per objective column: exact in float arithmetic
# because scale, shift and the raw coordinates are all small integers.
affines = st.tuples(st.integers(1, 8).map(float),
                    st.integers(-30, 30).map(float))


def apply_affine(matrix, transforms):
    """Column-wise ``a * x + b`` with per-column ``(a, b)``."""
    return [[a * x + b for x, (a, b) in zip(row, transforms)]
            for row in matrix]


class TestMcdmRankStability:
    WEIGHTS = (0.45, 0.3, 0.25)

    @settings(max_examples=120, deadline=None)
    @given(point_lists(3, min_size=2, max_size=16),
           st.tuples(affines, affines, affines))
    def test_weighted_sum_ranks_survive_affine_rescaling(
            self, matrix, transforms):
        original = rank_rows(weighted_sum_scores(matrix, self.WEIGHTS))
        rescaled = rank_rows(weighted_sum_scores(
            apply_affine(matrix, transforms), self.WEIGHTS))
        assert original == rescaled

    @settings(max_examples=120, deadline=None)
    @given(point_lists(3, min_size=2, max_size=16),
           st.tuples(affines, affines, affines))
    def test_topsis_ranks_survive_affine_rescaling(
            self, matrix, transforms):
        original = rank_rows(
            topsis_closeness(matrix, self.WEIGHTS), descending=True)
        rescaled = rank_rows(
            topsis_closeness(apply_affine(matrix, transforms),
                             self.WEIGHTS), descending=True)
        assert original == rescaled

    @settings(max_examples=100, deadline=None)
    @given(point_lists(3, min_size=1, max_size=16))
    def test_normalization_lands_in_unit_box(self, matrix):
        for row in minmax_normalize(matrix):
            assert all(0.0 <= x <= 1.0 for x in row)

    @settings(max_examples=100, deadline=None)
    @given(point_lists(3, min_size=1, max_size=12))
    def test_ranks_are_a_permutation(self, matrix):
        ranks = rank_rows(weighted_sum_scores(matrix, self.WEIGHTS))
        assert sorted(ranks) == list(range(len(matrix)))

    @settings(max_examples=60, deadline=None)
    @given(point_lists(3, min_size=2, max_size=10))
    def test_topsis_closeness_is_a_unit_interval_score(self, matrix):
        for c in topsis_closeness(matrix, self.WEIGHTS):
            assert 0.0 <= c <= 1.0
