"""The fleet gateway: routing, reroute-on-failure, health, fan-out,
and the JSON-lines front door.
"""

import asyncio

import pytest

from repro.fleet import (
    FleetGateway,
    GatewayConfig,
    NodeConfig,
    NodeSupervisor,
    start_fleet_server,
)
from repro.fleet.ring import route_key
from repro.service import ServiceClient, SimRequest
from repro.service.request import STATUS_FAILED, STATUS_OK
from repro.testkit.chaos import ChaosController, FaultPlan, FaultSpec


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


class _Fleet:
    """N in-process nodes behind one gateway, torn down reliably."""

    def __init__(self, n=3, **gateway_kwargs):
        self.n = n
        self.gateway_kwargs = gateway_kwargs

    async def __aenter__(self):
        self.supervisor = NodeSupervisor(NodeConfig(in_process=True))
        self.gateway = FleetGateway(GatewayConfig(**self.gateway_kwargs))
        for _ in range(self.n):
            handle = await self.supervisor.spawn()
            self.gateway.add_node(handle.name, handle.host, handle.port)
        return self

    async def __aexit__(self, *exc):
        await self.gateway.close()
        await self.supervisor.stop_all(drain=False)


class TestRouting:
    def test_equal_keys_land_on_one_node(self):
        async def scenario():
            async with _Fleet(3) as fleet:
                for i in range(6):
                    response = await fleet.gateway.submit(
                        SimRequest("A", "557.xz", seed=i))
                    assert response.status == STATUS_OK
                return fleet.gateway._m_forwards.series()

        series = run(scenario())
        # All six requests share (cpu, workload): exactly one node
        # sees forwards.
        assert sum(1 for v in series.values() if v) == 1
        assert sum(series.values()) == 6

    def test_placement_follows_the_ring(self):
        async def scenario():
            async with _Fleet(3) as fleet:
                owner = fleet.gateway.ring.route(route_key("C", "vlc"))
                response = await fleet.gateway.submit(
                    SimRequest("C", "vlc"))
                assert response.status == STATUS_OK
                return owner, fleet.gateway._m_forwards.series()

        owner, series = run(scenario())
        assert series.get((owner,)) == 1

    def test_invalid_request_fails_without_forwarding(self):
        async def scenario():
            async with _Fleet(2) as fleet:
                response = await fleet.gateway.submit(
                    SimRequest("A", "557.xz", voltage_offset=0.5))
                return response, fleet.gateway._m_forwards.series()

        response, series = run(scenario())
        assert response.status == STATUS_FAILED
        assert response.source == "gateway"
        assert not any(series.values())

    def test_empty_fleet_fails_explicitly(self):
        async def scenario():
            gateway = FleetGateway()
            response = await gateway.submit(SimRequest("A", "557.xz"))
            await gateway.close()
            return response

        response = run(scenario())
        assert response.status == STATUS_FAILED
        assert "no healthy fleet nodes" in response.error


class TestReroute:
    def test_killed_node_reroutes_with_right_answer(self):
        async def scenario():
            async with _Fleet(3) as fleet:
                request = SimRequest("A", "557.xz")
                reference = await fleet.gateway.submit(request)
                owner = fleet.gateway.ring.route(
                    route_key(request.cpu, request.workload))
                await fleet.supervisor.kill(owner)
                rerouted = await fleet.gateway.submit(request)
                reroutes = dict(fleet.gateway._m_reroutes.series())
                return reference, rerouted, owner, reroutes

        reference, rerouted, owner, reroutes = run(scenario())
        assert reference.status == STATUS_OK
        assert rerouted.status == STATUS_OK
        assert rerouted.payload == reference.payload  # same pure answer
        assert sum(reroutes.values()) >= 1

    def test_forward_failures_demote_the_node(self):
        async def scenario():
            async with _Fleet(2, health_fail_threshold=2) as fleet:
                request = SimRequest("A", "557.xz")
                owner = fleet.gateway.ring.route(
                    route_key(request.cpu, request.workload))
                await fleet.supervisor.kill(owner)
                for _ in range(2):
                    response = await fleet.gateway.submit(request)
                    assert response.status == STATUS_OK
                return owner, fleet.gateway.healthy_nodes

        owner, healthy = run(scenario())
        assert owner not in healthy

    def test_all_nodes_down_fails_explicitly(self):
        async def scenario():
            async with _Fleet(2) as fleet:
                for handle in list(fleet.supervisor.nodes):
                    await fleet.supervisor.kill(handle.name)
                return await fleet.gateway.submit(SimRequest("A", "557.xz"))

        response = run(scenario())
        assert response.status == STATUS_FAILED
        assert response.source == "gateway"

    def test_injected_forward_fault_reroutes(self):
        async def scenario():
            plan = FaultPlan.generate(7, [FaultSpec(
                "fleet.forward", "raise", 1.0, max_fires=1,
                exception="ConnectionResetError")], horizon=100)
            controller = ChaosController(plan)
            controller.activate(export=False)
            try:
                async with _Fleet(3) as fleet:
                    response = await fleet.gateway.submit(
                        SimRequest("A", "557.xz"))
                    reroutes = dict(fleet.gateway._m_reroutes.series())
                    return response, reroutes
            finally:
                controller.cleanup()

        response, reroutes = run(scenario())
        assert response.status == STATUS_OK
        assert reroutes.get(("connection",)) == 1


class TestHealth:
    def test_probe_demotes_and_recovers(self):
        async def scenario():
            async with _Fleet(2, health_fail_threshold=1) as fleet:
                victim = fleet.supervisor.nodes[0]
                # Simulate an unreachable node by pointing its state at
                # a dead port (kill would stop the service for good).
                fleet.gateway._nodes[victim.name].port = 1
                await fleet.gateway._drop_connections(
                    fleet.gateway._nodes[victim.name])
                verdicts = await fleet.gateway.check_health_once()
                assert verdicts[victim.name] is False
                demoted = list(fleet.gateway.healthy_nodes)
                fleet.gateway._nodes[victim.name].port = victim.port
                await fleet.gateway.check_health_once()
                return victim.name, demoted, fleet.gateway.healthy_nodes

        name, demoted, recovered = run(scenario())
        assert name not in demoted
        assert name in recovered

    def test_unhealthy_node_leaves_the_ring(self):
        async def scenario():
            async with _Fleet(3, health_fail_threshold=1) as fleet:
                victim = fleet.supervisor.nodes[0].name
                fleet.gateway._nodes[victim].port = 1
                await fleet.gateway._drop_connections(
                    fleet.gateway._nodes[victim])
                await fleet.gateway.check_health_once()
                return victim, fleet.gateway.ring.nodes

        victim, ring_nodes = run(scenario())
        assert victim not in ring_nodes


class TestFanOutAndMetrics:
    def test_metrics_aggregates_gateway_and_nodes(self):
        async def scenario():
            async with _Fleet(2) as fleet:
                await fleet.gateway.submit(SimRequest("A", "557.xz"))
                return await fleet.gateway.metrics()

        snapshot = run(scenario())
        assert "gateway" in snapshot and "nodes" in snapshot
        assert len(snapshot["nodes"]) == 2
        counters = snapshot["gateway"]["counters"]
        assert counters['fleet_requests_total{verb="submit"}'] == 1

    def test_prometheus_text_exposes_fleet_families(self):
        async def scenario():
            async with _Fleet(2) as fleet:
                await fleet.gateway.submit(SimRequest("A", "557.xz"))
                return fleet.gateway.metrics_text()

        text = run(scenario())
        for family in ("fleet_size", "fleet_nodes_healthy",
                       "fleet_node_inflight", "fleet_requests_total",
                       "fleet_reroutes_total"):
            assert family in text

    def test_node_signals_shape(self):
        async def scenario():
            async with _Fleet(2) as fleet:
                return await fleet.gateway.node_signals()

        signals = run(scenario())
        assert len(signals) == 2
        for entry in signals.values():
            assert set(entry) >= {"queue_depth", "inflight", "draining"}
            assert entry["draining"] is False


class TestFrontDoor:
    def test_client_cannot_tell_gateway_from_node(self):
        async def scenario():
            async with _Fleet(2) as fleet:
                server = await start_fleet_server(fleet.gateway, port=0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect("127.0.0.1", port)
                try:
                    response = await client.submit(SimRequest("A", "557.xz"))
                    pong = await client.ping()
                    metrics = await client.metrics()
                    status = await client.fleet_status()
                    return response, pong, metrics, status
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()

        response, pong, metrics, status = run(scenario())
        assert response.status == STATUS_OK
        assert pong["role"] == "gateway"
        assert pong["fleet_size"] == 2
        assert "gateway" in metrics
        assert len(status["nodes"]) == 2
        assert status["ring_size"] == 2

    def test_front_door_rejects_garbage_frames(self):
        async def scenario():
            async with _Fleet(1) as fleet:
                server = await start_fleet_server(fleet.gateway, port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                try:
                    writer.write(b"not json\n[1,2]\n")
                    await writer.drain()
                    first = await reader.readline()
                    second = await reader.readline()
                    return first, second
                finally:
                    writer.close()
                    server.close()
                    await server.wait_closed()

        first, second = run(scenario())
        assert b"bad json" in first
        assert b"JSON object" in second

    def test_unknown_op_is_answered(self):
        async def scenario():
            async with _Fleet(1) as fleet:
                server = await start_fleet_server(fleet.gateway, port=0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                try:
                    writer.write(b'{"op": "explode", "id": 1}\n')
                    await writer.drain()
                    return await reader.readline()
                finally:
                    writer.close()
                    server.close()
                    await server.wait_closed()

        line = run(scenario())
        assert b"unknown op" in line
