"""Property-based fuzzing of the request model and the frame parser.

Two attack surfaces, two suites:

* :class:`SimRequest` canonicalization/validation — hypothesis-generated
  valid requests must round-trip through the wire form, keep a stable
  canonical key that ignores scheduling hints, and every single-field
  corruption must be rejected by exactly the validation layer.
* The JSON-lines connection handler — arbitrary garbage, partial
  frames, valid-JSON-non-object frames and fuzzed ``submit`` bodies
  must each produce an explicit protocol reply (or a clean skip), never
  an unhandled exception, and must leave the connection usable for the
  next frame.
"""

import asyncio
import json
import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.request import (
    KNOWN_STRATEGIES,
    STATUS_OK,
    InvalidRequestError,
    SimRequest,
    SimResponse,
)
from repro.service.server import _handle_connection

run = asyncio.run

#: Moderate example counts: the suite rides in tier-1.
FUZZ = settings(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

_NAME_ALPHABET = string.ascii_letters + string.digits + "._-"

valid_requests = st.builds(
    SimRequest,
    cpu=st.sampled_from(("A", "B", "C", "i5")),
    workload=st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=16),
    strategy=st.sampled_from(KNOWN_STRATEGIES),
    voltage_offset=st.floats(min_value=-0.3, max_value=0.0),
    seed=st.integers(min_value=0, max_value=2**31),
    n_cores=st.integers(min_value=1, max_value=8),
    priority=st.integers(min_value=-10, max_value=20),
    deadline_s=st.one_of(st.none(),
                         st.floats(min_value=1e-3, max_value=1e3)),
)


class TestRequestProperties:
    @given(valid_requests)
    @FUZZ
    def test_valid_requests_validate(self, request):
        request.validate()

    @given(valid_requests)
    @FUZZ
    def test_wire_round_trip_is_identity(self, request):
        clone = SimRequest.from_dict(request.to_dict())
        assert clone == request
        # ... and survives an actual JSON hop.
        rewired = SimRequest.from_dict(
            json.loads(json.dumps(request.to_dict())))
        assert rewired == request

    @given(valid_requests)
    @FUZZ
    def test_canonical_key_is_stable_and_hex(self, request):
        key = request.canonical_key()
        assert len(key) == 64
        int(key, 16)  # pure hex
        assert SimRequest.from_dict(request.to_dict()).canonical_key() == key

    @given(valid_requests, st.integers(-10, 20),
           st.one_of(st.none(), st.floats(min_value=1e-3, max_value=1e3)))
    @FUZZ
    def test_scheduling_hints_do_not_split_identity(self, request,
                                                    priority, deadline_s):
        twin = SimRequest(cpu=request.cpu, workload=request.workload,
                          strategy=request.strategy,
                          voltage_offset=request.voltage_offset,
                          seed=request.seed, n_cores=request.n_cores,
                          priority=priority, deadline_s=deadline_s)
        assert twin.canonical_key() == request.canonical_key()
        assert "priority" not in request.canonical_dict()
        assert "deadline_s" not in request.canonical_dict()

    @given(valid_requests,
           st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=12))
    @FUZZ
    def test_unknown_fields_rejected(self, request, name):
        payload = request.to_dict()
        if name in payload:
            name = name + "_x"
        payload[name] = 1
        with pytest.raises(InvalidRequestError):
            SimRequest.from_dict(payload)

    @given(valid_requests, st.sampled_from([
        ("cpu", ""), ("cpu", 7), ("workload", ""), ("workload", None),
        ("strategy", "fVe"), ("strategy", ""), ("voltage_offset", 0.05),
        ("voltage_offset", "deep"), ("seed", -1), ("seed", 1.5),
        ("n_cores", 0), ("n_cores", -2), ("priority", "high"),
        ("deadline_s", 0.0), ("deadline_s", -1.0),
    ]))
    @FUZZ
    def test_single_field_corruption_rejected(self, request, corruption):
        field, bad = corruption
        payload = request.to_dict()
        payload[field] = bad
        with pytest.raises(InvalidRequestError):
            SimRequest.from_dict(payload).validate()

    @given(st.one_of(st.none(), st.integers(), st.text(),
                     st.lists(st.integers())))
    @FUZZ
    def test_non_dict_payload_rejected(self, payload):
        with pytest.raises(InvalidRequestError):
            SimRequest.from_dict(payload)


# -- frame-parser fuzzing ------------------------------------------------


class _StubService:
    """submit() answers instantly; lets the parser run without workers."""

    class _Metrics:
        def prometheus_text(self):
            return "# stub\n"

        def snapshot(self):
            return {"stub": True}

    def __init__(self):
        self.metrics = self._Metrics()
        self.submitted = []

    async def submit(self, request):
        self.submitted.append(request)
        return SimResponse(request=request, status=STATUS_OK,
                           payload={"echo": request.canonical_key()})


class _FakeWriter:
    """Collects everything the handler writes; never raises."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(bytes(data))

    async def drain(self):
        pass

    def close(self):
        pass

    def replies(self):
        return [json.loads(line)
                for line in b"".join(self.chunks).splitlines() if line]


def _serve(payload: bytes):
    """Feed *payload* (+EOF) through one connection; return the replies."""
    async def go():
        service = _StubService()
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        writer = _FakeWriter()
        await _handle_connection(service, reader, writer)
        return service, writer.replies()

    return run(go())


_PING = b'{"op": "ping", "id": "probe"}\n'


class TestFrameParserFuzz:
    @given(st.binary(min_size=0, max_size=200))
    @FUZZ
    def test_garbage_frames_never_kill_the_connection(self, garbage):
        # Strip newlines so the garbage is exactly one frame, then
        # prove the connection still answers a well-formed ping.
        frame = garbage.replace(b"\n", b"\xaa").replace(b"\r", b"\xaa")
        _, replies = _serve(frame + b"\n" + _PING)
        assert replies, "handler died without answering"
        pong = replies[-1]
        assert pong["op"] == "pong" and pong["id"] == "probe"
        for reply in replies[:-1]:
            assert reply["op"] in ("error", "response", "metrics",
                                   "trace", "pong")

    @given(st.binary(min_size=1, max_size=80))
    @FUZZ
    def test_partial_trailing_frame_is_handled(self, garbage):
        # No trailing newline: readline() returns the partial frame at
        # EOF and the parser must still answer or skip it cleanly.
        frame = garbage.replace(b"\n", b"\xaa").replace(b"\r", b"\xaa")
        _, replies = _serve(_PING + frame)
        # The ping reply comes from a concurrently scheduled task, so
        # it may land before or after the partial frame's error.
        assert any(reply["op"] == "pong" for reply in replies)
        assert all(reply["op"] in ("pong", "error") for reply in replies)

    @given(st.one_of(st.integers(), st.floats(allow_nan=False,
                                              allow_infinity=False),
                     st.text(max_size=20), st.booleans(), st.none(),
                     st.lists(st.integers(), max_size=4)))
    @FUZZ
    def test_json_non_object_frames_get_explicit_error(self, value):
        frame = json.dumps(value).encode() + b"\n"
        _, replies = _serve(frame + _PING)
        assert replies[0] == {"op": "error",
                              "error": "frame must be a JSON object"}
        assert replies[-1]["op"] == "pong"

    @given(st.dictionaries(
        st.sampled_from(["cpu", "workload", "strategy", "voltage_offset",
                         "seed", "n_cores", "bogus"]),
        st.one_of(st.none(), st.integers(-5, 5), st.text(max_size=6),
                  st.floats(allow_nan=False, allow_infinity=False)),
        max_size=5))
    @FUZZ
    def test_fuzzed_submit_bodies_answer_or_reject(self, body):
        frame = json.dumps({"op": "submit", "id": 1,
                            "request": body}).encode() + b"\n"
        service, replies = _serve(frame)
        assert len(replies) == 1
        assert replies[0]["op"] in ("error", "response")
        if replies[0]["op"] == "response":
            # Only well-formed requests may reach the execution tier.
            assert len(service.submitted) == 1

    def test_bad_json_reply_is_the_documented_literal(self):
        _, replies = _serve(b"{not json\n")
        assert replies[0] == {"op": "error", "error": "bad json"}

    def test_blank_lines_are_skipped(self):
        _, replies = _serve(b"\n   \n" + _PING)
        assert len(replies) == 1
        assert replies[0]["op"] == "pong"

    def test_unknown_op_is_reported(self):
        _, replies = _serve(b'{"op": "reboot"}\n')
        assert replies[0]["op"] == "error"
        assert "unknown op" in replies[0]["error"]
