"""Tests for the deterministic chaos harness (repro.testkit.chaos).

The harness's contract has three legs: the *plan* is a pure function
of its seed (replay-exactness), the *controller* fires exactly the
planned faults at the planned invocation indices (schedule fidelity),
and the *hooks* are free when chaos is off (production safety).
"""

import json
import os

import pytest

from repro.obs.registry import MetricsRegistry, get_registry, set_registry
from repro.testkit import chaos
from repro.testkit.chaos import (
    ENV_PLAN,
    ChaosController,
    FaultPlan,
    FaultSpec,
    inject,
    install_controller,
)


@pytest.fixture(autouse=True)
def _clean_chaos():
    """Every test starts and ends with chaos fully off."""
    install_controller(None)
    os.environ.pop(ENV_PLAN, None)
    yield
    install_controller(None)
    os.environ.pop(ENV_PLAN, None)


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        specs = [FaultSpec("s.a", "raise", 0.3),
                 FaultSpec("s.b", "kill_worker", 0.1)]
        one = FaultPlan.generate(11, specs, 500)
        two = FaultPlan.generate(11, specs, 500)
        assert one.to_json_dict() == two.to_json_dict()

    def test_different_seed_different_plan(self):
        specs = [FaultSpec("s.a", "raise", 0.3)]
        assert (FaultPlan.generate(1, specs, 500).to_json_dict()
                != FaultPlan.generate(2, specs, 500).to_json_dict())

    def test_rate_zero_never_fires_rate_one_always(self):
        plan = FaultPlan.generate(0, [FaultSpec("a", "x", 0.0),
                                      FaultSpec("b", "y", 1.0)], 50)
        assert not plan.at("a", 1) and "a" not in plan.sites
        assert all(plan.at("b", i) for i in range(1, 51))

    def test_rate_is_approximately_honoured(self):
        plan = FaultPlan.generate(5, [FaultSpec("s", "x", 0.2)], 5000)
        assert 800 <= len(plan.entries) <= 1200

    def test_crash_kinds_skip_first_invocation(self):
        plan = FaultPlan.generate(3, [FaultSpec("s", "crash", 1.0)], 20)
        assert not plan.at("s", 1)
        assert plan.at("s", 2)

    def test_max_fires_caps_the_schedule(self):
        plan = FaultPlan.generate(9, [FaultSpec("s", "x", 1.0,
                                                max_fires=3)], 100)
        assert len(plan.entries) == 3

    def test_json_round_trip(self):
        plan = FaultPlan.generate(7, [FaultSpec("s.a", "sleep", 0.4,
                                                param=0.25),
                                      FaultSpec("s.b", "raise", 0.2,
                                                exception="ValueError")], 80)
        clone = FaultPlan.from_json_dict(
            json.loads(json.dumps(plan.to_json_dict())))
        assert clone.to_json_dict() == plan.to_json_dict()
        for site in plan.sites:
            for i in range(1, 81):
                assert ([e.kind for e in clone.at(site, i)]
                        == [e.kind for e in plan.at(site, i)])

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(0, [], 0)


class TestController:
    def test_site_interpreted_kinds_are_returned(self):
        plan = FaultPlan.generate(0, [FaultSpec("x", "kill_worker", 1.0)], 5)
        with ChaosController(plan) as controller:
            assert inject("x") == ("kill_worker",)
            assert controller.invocations() == {"x": 1}

    def test_unplanned_invocations_fire_nothing(self):
        plan = FaultPlan.generate(0, [FaultSpec("x", "k", 1.0,
                                                max_fires=1)], 5)
        with ChaosController(plan):
            assert inject("x") == ("k",)
            assert inject("x") == ()
            assert inject("other") == ()

    def test_raise_effect(self):
        plan = FaultPlan.generate(0, [FaultSpec("x", "raise", 1.0,
                                                exception="ValueError")], 3)
        with ChaosController(plan):
            with pytest.raises(ValueError):
                inject("x")

    def test_admission_error_factory(self):
        from repro.service.scheduler import AdmissionError

        plan = FaultPlan.generate(
            0, [FaultSpec("x", "raise", 1.0, exception="AdmissionError")], 3)
        with ChaosController(plan):
            with pytest.raises(AdmissionError) as excinfo:
                inject("x")
        assert excinfo.value.retry_after_s > 0

    def test_corrupt_effect_damages_file(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_text(json.dumps({"payload": {"v": 1}}))
        original = victim.read_bytes()
        plan = FaultPlan.generate(0, [FaultSpec("x", "corrupt", 1.0)], 3)
        with ChaosController(plan):
            inject("x", path=str(victim))
        damaged = victim.read_bytes()
        assert damaged != original
        assert len(damaged) < len(original)  # truncated
        with pytest.raises(ValueError):
            json.loads(damaged)

    def test_unlink_effect_removes_file(self, tmp_path):
        victim = tmp_path / "gone.txt"
        victim.write_text("x")
        plan = FaultPlan.generate(0, [FaultSpec("x", "unlink", 1.0)], 3)
        with ChaosController(plan):
            inject("x", path=str(victim))
        assert not victim.exists()

    def test_fired_report_replays_exactly(self):
        """Equal seeds + equal invocation sequences => equal reports."""
        specs = [FaultSpec("a", "k1", 0.5), FaultSpec("b", "k2", 0.3)]
        sequence = ["a", "a", "b", "a", "b", "b", "a", "b"] * 4

        def drive():
            controller = ChaosController(FaultPlan.generate(21, specs, 100))
            with controller:
                for site in sequence:
                    inject(site)
                return controller.report()

        first, second = drive(), drive()
        assert first == second
        assert first["injected"]["total"] > 0
        assert "pid" not in json.dumps(first["injected"]["fired"])

    def test_report_counts_by_site(self):
        plan = FaultPlan.generate(0, [FaultSpec("x", "k", 1.0)], 10)
        with ChaosController(plan) as controller:
            inject("x")
            inject("x")
            report = controller.report()
        assert report["injected"]["by_site"] == {"x": 2}
        assert report["schedule"] == plan.to_json_dict()

    def test_metrics_counter_increments(self):
        previous = set_registry(MetricsRegistry())
        try:
            plan = FaultPlan.generate(0, [FaultSpec("x", "k", 1.0)], 5)
            with ChaosController(plan):
                inject("x")
                inject("x")
            counter = get_registry().counter("chaos_injections_total",
                                             label_names=("site",))
            assert counter.value(site="x") == 2
        finally:
            set_registry(previous)


class TestActivationAndEnv:
    def test_inject_is_noop_without_controller(self):
        assert inject("anything", path="/nonexistent") == ()

    def test_activate_exports_plan_and_cleanup_retracts(self):
        plan = FaultPlan.generate(4, [FaultSpec("x", "k", 0.5)], 20)
        controller = ChaosController(plan).activate()
        try:
            plan_path = os.environ[ENV_PLAN]
            assert FaultPlan.from_json_dict(
                json.loads(open(plan_path).read())).to_json_dict() \
                == plan.to_json_dict()
        finally:
            controller.cleanup()
        assert ENV_PLAN not in os.environ
        assert not os.path.exists(plan_path)

    def test_worker_side_lazy_load_from_env(self):
        """A process seeing only REPRO_CHAOS_PLAN reconstructs the
        controller and logs its firings to the shared JSONL file."""
        plan = FaultPlan.generate(0, [FaultSpec("w", "k", 1.0)], 5)
        owner = ChaosController(plan).activate()
        try:
            # Simulate a fresh worker process: no in-process controller,
            # no previously loaded plan.
            install_controller(None)
            chaos._LOADED_PLAN = None
            assert inject("w") == ("k",)
            fired = owner.fired()
            assert [e["site"] for e in fired] == ["w"]
        finally:
            owner.cleanup()

    def test_pool_workers_inherit_chaos(self, tmp_path):
        """Real subprocess check: a spawned worker fires worker-side
        faults and appends them to the shared log."""
        from concurrent.futures import ProcessPoolExecutor

        plan = FaultPlan.generate(0, [FaultSpec("workers.request", "boom",
                                                1.0)], 10)
        owner = ChaosController(plan).activate()
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                kinds = pool.submit(inject, "workers.request").result(30)
            assert kinds == ("boom",)
            assert any(e["site"] == "workers.request"
                       and e["pid"] != os.getpid()
                       for e in owner.fired())
        finally:
            owner.cleanup()
