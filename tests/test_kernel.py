"""Unit tests for the kernel model: exceptions, dispatch, deadline timer."""

import numpy as np
import pytest

from repro.hardware.counters import DelaySpec
from repro.kernel.exceptions import (
    DisabledOpcodeError,
    ExceptionVector,
    TrapFrame,
)
from repro.kernel.handler import ExceptionTable, KernelCosts
from repro.kernel.timer import DeadlineTimer
from repro.isa.opcodes import Opcode


@pytest.fixture
def costs():
    return KernelCosts(
        exception_delay=DelaySpec(0.34e-6, 0.04e-6),
        emulation_call_delay=DelaySpec(0.77e-6, 0.14e-6),
    )


class TestTrapFrame:
    def test_preserves_state(self):
        frame = TrapFrame(rip=0x1000, opcode=Opcode.AESENC,
                          registers={"rax": 5}, core=2, timestamp_s=1.5)
        assert frame.registers["rax"] == 5
        assert frame.core == 2

    def test_advance_skips_instruction(self):
        frame = TrapFrame(rip=0x1000)
        frame.advance(5)
        assert frame.rip == 0x1005

    def test_do_uses_reserved_vector_21(self):
        assert ExceptionVector.DISABLED_OPCODE == 21
        assert ExceptionVector.INVALID_OPCODE == 6


class TestExceptionTable:
    def test_dispatch_invokes_handler(self, costs):
        table = ExceptionTable(costs)
        seen = []
        table.register(ExceptionVector.DISABLED_OPCODE, seen.append)
        frame = TrapFrame(rip=0x42, opcode=Opcode.VOR)
        cost = table.dispatch(ExceptionVector.DISABLED_OPCODE, frame)
        assert seen == [frame]
        assert cost == pytest.approx(0.34e-6)

    def test_dispatch_counts(self, costs):
        table = ExceptionTable(costs)
        table.register(ExceptionVector.DISABLED_OPCODE, lambda f: None)
        for _ in range(3):
            table.dispatch(ExceptionVector.DISABLED_OPCODE, TrapFrame(0))
        assert table.dispatch_count[ExceptionVector.DISABLED_OPCODE] == 3

    def test_unhandled_do_panics(self, costs):
        table = ExceptionTable(costs)
        with pytest.raises(DisabledOpcodeError):
            table.dispatch(ExceptionVector.DISABLED_OPCODE, TrapFrame(0))

    def test_unhandled_other_vector(self, costs):
        table = ExceptionTable(costs)
        with pytest.raises(KeyError):
            table.dispatch(ExceptionVector.INVALID_OPCODE, TrapFrame(0))

    def test_sampled_cost(self, costs):
        table = ExceptionTable(costs)
        table.register(ExceptionVector.DISABLED_OPCODE, lambda f: None)
        rng = np.random.default_rng(0)
        cost = table.dispatch(ExceptionVector.DISABLED_OPCODE, TrapFrame(0), rng)
        assert 0.1e-6 < cost < 1.0e-6


class TestDeadlineTimer:
    def test_arm_and_fire(self):
        timer = DeadlineTimer()
        timer.arm(now_s=1.0, deadline_s=30e-6)
        assert timer.armed
        assert timer.fires_at == pytest.approx(1.0 + 30e-6)
        assert not timer.expired(1.0 + 29e-6)
        assert timer.expired(1.0 + 31e-6)

    def test_reset_restarts_countdown(self):
        timer = DeadlineTimer()
        timer.arm(0.0, 30e-6)
        timer.reset(20e-6)
        assert timer.fires_at == pytest.approx(50e-6)

    def test_reset_unarmed_is_noop(self):
        timer = DeadlineTimer()
        timer.reset(5.0)
        assert not timer.armed

    def test_cancel(self):
        timer = DeadlineTimer()
        timer.arm(0.0, 30e-6)
        timer.cancel()
        assert not timer.armed
        assert not timer.expired(10.0)

    def test_defer_during_stall(self):
        timer = DeadlineTimer()
        timer.arm(0.0, 30e-6)
        timer.defer(10e-6)
        assert timer.fires_at == pytest.approx(40e-6)

    def test_defer_unarmed_is_noop(self):
        timer = DeadlineTimer()
        timer.defer(10e-6)
        assert not timer.armed

    def test_rearm_changes_deadline(self):
        timer = DeadlineTimer()
        timer.arm(0.0, 30e-6)
        timer.arm(0.0, 420e-6)  # thrashing stretch
        timer.reset(1.0)
        assert timer.fires_at == pytest.approx(1.0 + 420e-6)

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            DeadlineTimer().arm(0.0, 0.0)
        with pytest.raises(ValueError):
            DeadlineTimer().defer(-1.0)
