"""Tests for trap-aware multi-domain scheduling."""

import numpy as np
import pytest

from repro.core.scheduler import (
    Task,
    evaluate_plan,
    plan_partition,
    plan_round_robin,
)
from repro.isa.opcodes import Opcode
from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile


def _task(name, occupancy, episodes=8, dense_gap=2000, n=100_000_000,
          seed=0):
    profile = WorkloadProfile(
        name=name, suite="SPECint", n_instructions=n, ipc=1.5,
        efficient_occupancy=occupancy, n_episodes=episodes,
        dense_gap=dense_gap, sparse_events=2,
        opcode_mix={Opcode.VOR: 1.0})
    return Task(profile=profile, trace=generate_trace(profile, seed=seed))


@pytest.fixture(scope="module")
def mixed_tasks():
    return [
        _task("dirty-1", 0.05, seed=1),
        _task("dirty-2", 0.10, seed=2),
        _task("clean-1", 0.97, episodes=2, dense_gap=20_000, seed=3),
        _task("clean-2", 0.95, episodes=2, dense_gap=20_000, seed=4),
    ]


class TestPlacementPolicies:
    def test_round_robin_spreads(self, mixed_tasks):
        plan = plan_round_robin(mixed_tasks, 2)
        assert [len(d) for d in plan.domains] == [2, 2]
        # Interleaved: each domain got one dirty, one clean.
        for domain in plan.domains:
            rates = sorted(t.trap_rate for t in domain)
            assert rates[0] < rates[1] / 3

    def test_partition_groups_by_trap_rate(self, mixed_tasks):
        plan = plan_partition(mixed_tasks, 2)
        rates = [[t.trap_rate for t in domain] for domain in plan.domains]
        assert min(rates[0]) >= max(rates[1])  # dirty domain first

    def test_partition_handles_uneven_counts(self, mixed_tasks):
        plan = plan_partition(mixed_tasks[:3], 2)
        assert sum(len(d) for d in plan.domains) == 3
        assert max(len(d) for d in plan.domains) == 2

    def test_single_domain_degenerate(self, mixed_tasks):
        plan = plan_partition(mixed_tasks, 1)
        assert len(plan.domains) == 1
        assert len(plan.domains[0]) == 4

    def test_invalid_domain_count(self, mixed_tasks):
        with pytest.raises(ValueError):
            plan_partition(mixed_tasks, 0)


class TestPlanEvaluation:
    def test_partition_beats_round_robin(self, cpu_a, mixed_tasks):
        rr = evaluate_plan(cpu_a, plan_round_robin(mixed_tasks, 2))
        pa = evaluate_plan(cpu_a, plan_partition(mixed_tasks, 2))
        assert pa.efficiency_gmean > rr.efficiency_gmean

    def test_clean_domain_stays_efficient(self, cpu_a, mixed_tasks):
        outcome = evaluate_plan(cpu_a, plan_partition(mixed_tasks, 2))
        occupancies = [r.efficient_occupancy
                       for r in outcome.domain_results if r]
        assert max(occupancies) > 0.85
        assert min(occupancies) < 0.4

    def test_idle_domains_allowed(self, cpu_a, mixed_tasks):
        plan = plan_partition(mixed_tasks[:1], 2)
        outcome = evaluate_plan(cpu_a, plan)
        assert outcome.domain_results.count(None) == 1
        assert len(outcome.per_task_efficiency) == 1

    def test_every_task_attributed(self, cpu_a, mixed_tasks):
        outcome = evaluate_plan(cpu_a, plan_partition(mixed_tasks, 2))
        assert set(outcome.per_task_efficiency) == {t.name for t in mixed_tasks}
