"""The load harness: open/closed loops, SLO verdicts, the breaking
point, and the report shape — driven against a fast stub service so
the tests pin harness logic, not simulator speed.
"""

import asyncio
import json

import pytest

from repro.fleet.loadgen import (
    LoadGenConfig,
    LoadReport,
    default_mix,
    run_breaking_point,
    run_closed_loop,
    run_step,
    stall_mix,
    step_population,
    warm_population,
    write_bench,
)
from repro.service.request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    SimResponse,
)


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


def _stub(delay_s=0.0, status=STATUS_OK):
    """An async submit stub with a fixed latency and status."""
    async def submit(request):
        if delay_s:
            await asyncio.sleep(delay_s)
        return SimResponse(request=request, status=status,
                           payload={"echo": request.seed})
    return submit


class TestDefaultMix:
    def test_deterministic(self):
        assert [r.to_dict() for r in default_mix(16, seed=3)] == \
            [r.to_dict() for r in default_mix(16, seed=3)]

    def test_all_requests_validate(self):
        for request in default_mix(64, seed=9):
            request.validate()

    def test_fresh_fraction_controls_repeats(self):
        all_fresh = default_mix(16, seed=1, fresh_fraction=1.0)
        assert len({r.canonical_key() for r in all_fresh}) == 16
        none_fresh = default_mix(16, seed=1, fresh_fraction=0.0)
        repeated = default_mix(16, seed=2, fresh_fraction=0.0)
        # Without fresh requests the population ignores the seed.
        assert [r.to_dict() for r in none_fresh] == \
            [r.to_dict() for r in repeated]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            default_mix(0)


class TestStallMix:
    def test_deterministic_and_valid(self):
        assert [r.to_dict() for r in stall_mix(32, seed=3)] == \
            [r.to_dict() for r in stall_mix(32, seed=3)]
        for request in stall_mix(32, seed=3):
            request.validate()
            assert request.workload.startswith("__sleep__:")

    def test_every_request_is_a_distinct_identity(self):
        # No dedup, no cache hits: each answer must really occupy a
        # worker slot, within a step and across steps.
        a = stall_mix(64, seed=1)
        b = stall_mix(64, seed=2)
        assert len({r.canonical_key() for r in a + b}) == 128

    def test_lanes_spread_routing_keys(self):
        keys = {(r.cpu, r.workload) for r in stall_mix(96, lanes=48)}
        assert len(keys) == 48
        few = {(r.cpu, r.workload) for r in stall_mix(96, lanes=4)}
        assert len(few) == 4

    def test_durations_stay_near_stall_s(self):
        for request in stall_mix(96, stall_s=0.05):
            duration = float(request.workload.split(":", 1)[1])
            assert 0.05 <= duration <= 0.05 * 1.05

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            stall_mix(0)
        with pytest.raises(ValueError):
            stall_mix(4, stall_s=0.0)
        with pytest.raises(ValueError):
            stall_mix(4, lanes=0)

    def test_step_population_dispatches_on_mode(self):
        sim = step_population(LoadGenConfig(), 8, seed=1)
        assert not any(r.workload.startswith("__sleep__:") for r in sim)
        stalls = step_population(LoadGenConfig(stall_s=0.01), 8, seed=1)
        assert all(r.workload.startswith("__sleep__:") for r in stalls)

    def test_stall_mode_needs_no_warmup(self):
        assert warm_population(LoadGenConfig(stall_s=0.01)) == []
        assert warm_population(LoadGenConfig()) != []

    def test_report_records_the_mix(self):
        report = LoadReport(config=LoadGenConfig(stall_s=0.02))
        ramp = report.to_json_dict()["ramp"]
        assert ramp["mix"] == "stall" and ramp["stall_s"] == 0.02
        assert LoadReport(
            config=LoadGenConfig()).to_json_dict()["ramp"]["mix"] == "sim"


class TestRunStep:
    def test_counts_and_percentiles(self):
        step = run(run_step(_stub(delay_s=0.002),
                            default_mix(20), target_rps=500))
        assert step.offered == 20 and step.ok == 20
        assert step.failed == step.rejected == 0
        assert step.p50_s is not None and step.p50_s >= 0.002
        assert step.p50_s <= step.p95_s <= step.p99_s
        assert step.achieved_rps > 0

    def test_open_loop_paces_arrivals(self):
        async def scenario():
            stamps = []
            loop = asyncio.get_running_loop()

            async def submit(request):
                stamps.append(loop.time())
                return SimResponse(request=request, status=STATUS_OK)

            await run_step(submit, default_mix(10), target_rps=100)
            return stamps

        stamps = run(scenario())
        # 10 arrivals at 100 rps span ~90ms regardless of completions.
        assert stamps[-1] - stamps[0] >= 0.05

    def test_statuses_bucketed(self):
        step = run(run_step(_stub(status=STATUS_REJECTED),
                            default_mix(5), target_rps=1000))
        assert step.rejected == 5 and step.ok == 0
        assert step.error_rate == 1.0
        step = run(run_step(_stub(status=STATUS_FAILED),
                            default_mix(5), target_rps=1000))
        assert step.failed == 5

    def test_rejects_nonpositive_rps(self):
        with pytest.raises(ValueError):
            run(run_step(_stub(), default_mix(2), target_rps=0))


class TestClosedLoop:
    def test_backpressure_throughput(self):
        step = run(run_closed_loop(_stub(delay_s=0.005),
                                   default_mix(20), clients=4))
        assert step.ok == 20
        # 4 clients x 5ms service time ~= 800 rps ceiling; well under
        # that but far over the single-client 200 rps.
        assert step.achieved_rps > 250


class TestBreakingPoint:
    def test_ramp_stops_at_slo_violation(self):
        async def scenario():
            load = {"n": 0}

            async def submit(request):
                load["n"] += 1
                # Latency grows with cumulative load: the third step's
                # p95 blows the SLO.
                await asyncio.sleep(0.0002 * load["n"])
                return SimResponse(request=request, status=STATUS_OK)

            return await run_breaking_point(submit, LoadGenConfig(
                start_rps=200, step_rps=200, max_steps=6,
                requests_per_step=20, slo_p95_s=0.012, warmup=False))

        report = run(scenario())
        assert report.breaking_point_rps is not None
        assert not report.steps[-1].slo_ok
        assert report.steps[-1].violations
        assert all(s.slo_ok for s in report.steps[:-1])
        assert report.max_sustainable_rps is not None

    def test_never_breaking_runs_all_steps(self):
        report = run(run_breaking_point(_stub(), LoadGenConfig(
            start_rps=500, step_rps=500, max_steps=3,
            requests_per_step=10, slo_p95_s=5.0, warmup=False)))
        assert len(report.steps) == 3
        assert report.breaking_point_rps is None

    def test_error_rate_slo(self):
        report = run(run_breaking_point(
            _stub(status=STATUS_REJECTED), LoadGenConfig(
                start_rps=500, step_rps=500, max_steps=3,
                requests_per_step=10, slo_p95_s=5.0,
                slo_error_rate=0.5, warmup=False)))
        assert len(report.steps) == 1  # first step already violates
        assert "error rate" in report.steps[0].violations[0]

    def test_scaling_events_embedded(self):
        class _Event:
            def to_json_dict(self):
                return {"action": "scale_up"}

        report = run(run_breaking_point(_stub(), LoadGenConfig(
            max_steps=1, requests_per_step=5, warmup=False),
            events=[_Event()]))
        assert report.scaling_events == [{"action": "scale_up"}]

    def test_closed_loop_phase_included(self):
        report = run(run_breaking_point(_stub(), LoadGenConfig(
            max_steps=1, requests_per_step=5, closed_requests=8,
            warmup=False)))
        assert report.closed_loop is not None
        assert report.closed_loop.ok == 8


class TestReportShape:
    def test_json_roundtrip_and_write(self, tmp_path):
        report = run(run_breaking_point(_stub(), LoadGenConfig(
            max_steps=2, requests_per_step=5, warmup=False)))
        payload = report.to_json_dict()
        assert {"slo", "ramp", "steps", "breaking_point_rps",
                "max_sustainable_rps",
                "scaling_events"} <= set(payload)
        path = tmp_path / "BENCH_fleet.json"
        write_bench(path, {"fleet": payload})
        parsed = json.loads(path.read_text())
        assert parsed["fleet"]["steps"][0]["offered"] == 5
