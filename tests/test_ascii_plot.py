"""Tests for the terminal plotting helpers and figure renderers."""

import pytest

from repro.experiments import ascii_plot
from repro.experiments.figures import RENDERERS, render


class TestSparkline:
    def test_monotone_series(self):
        line = ascii_plot.sparkline([0, 1, 2, 3])
        assert line[0] != line[-1]
        assert len(line) == 4

    def test_resampled_to_width(self):
        line = ascii_plot.sparkline(range(1000), width=20)
        assert len(line) == 20

    def test_constant_series(self):
        line = ascii_plot.sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty(self):
        assert ascii_plot.sparkline([]) == ""


class TestScatter:
    def test_dimensions(self):
        chart = ascii_plot.scatter([0, 1, 2], [0, 1, 4], width=30, height=8)
        rows = chart.split("\n")
        assert len(rows) >= 8

    def test_contains_points(self):
        chart = ascii_plot.scatter([0, 1], [0, 1], width=10, height=5)
        assert "•" in chart

    def test_title_and_labels(self):
        chart = ascii_plot.scatter([0, 1], [0, 1], title="T", y_label="volts")
        assert chart.startswith("T")
        assert "volts" in chart

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_plot.scatter([1, 2], [1])

    def test_empty(self):
        assert "empty" in ascii_plot.scatter([], [])


class TestBars:
    def test_signed_bars(self):
        out = ascii_plot.bars(["a", "b"], [0.1, -0.05])
        lines = out.split("\n")
        assert "+10.00%" in lines[0]
        assert "-5.00%" in lines[1]

    def test_bar_direction(self):
        out = ascii_plot.bars(["pos", "neg"], [0.1, -0.1])
        pos_line, neg_line = out.split("\n")
        assert pos_line.index("|") < pos_line.index("█")
        assert neg_line.index("█") < neg_line.index("|")

    def test_mismatched(self):
        with pytest.raises(ValueError):
            ascii_plot.bars(["a"], [1.0, 2.0])


class TestStepSeries:
    def test_renders_levels(self):
        out = ascii_plot.step_series([(0.0, 1.0), (1.0, 0.0), (2.0, 1.0)])
        assert "•" in out


class TestFigureRenderers:
    @pytest.mark.parametrize("figure_id", sorted(RENDERERS))
    def test_each_figure_renders(self, figure_id):
        text = render(figure_id, fast=True)
        assert "Fig" in text
        assert len(text.splitlines()) > 3

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            render("fig99")
