"""Unit tests for the TDP model, undervolt response and fan curve."""

import pytest

from repro.power.cmos import CmosPowerModel
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.power.thermal import FanCurve, TdpModel, UndervoltResponse


@pytest.fixture
def curve():
    return DVFSCurve(I9_9900K_CURVE_POINTS)


@pytest.fixture
def tdp(curve):
    cmos = CmosPowerModel.calibrated(4.5e9, curve.voltage_at(4.5e9), 95.0)
    return TdpModel(cmos=cmos, curve=curve, power_limit=95.0, f_max=5.0e9)


class TestTdpModel:
    def test_sustained_frequency_respects_limit(self, tdp):
        f = tdp.sustained_frequency(0.0)
        assert tdp.power_at(f) <= tdp.power_limit * 1.001

    def test_unconstrained_hits_fmax(self, curve):
        cmos = CmosPowerModel.calibrated(4.5e9, curve.voltage_at(4.5e9), 50.0)
        model = TdpModel(cmos=cmos, curve=curve, power_limit=500.0, f_max=5.0e9)
        assert model.sustained_frequency(0.0) == pytest.approx(5.0e9)

    def test_undervolting_raises_sustained_frequency(self, tdp):
        assert tdp.sustained_frequency(-0.097) > tdp.sustained_frequency(0.0)

    def test_bisection_converges_tightly(self, tdp):
        f = tdp.sustained_frequency(0.0)
        if f < tdp.f_max:
            assert tdp.power_at(f) == pytest.approx(tdp.power_limit, rel=1e-6)


class TestUndervoltResponse:
    def _response(self, tdp, **kwargs):
        defaults = dict(nominal_frequency=4.5e9, tdp_bound_fraction=0.1,
                        perf_sensitivity=1.0, thermal_boost_per_volt=0.3)
        defaults.update(kwargs)
        return UndervoltResponse(tdp=tdp, **defaults)

    def test_zero_offset_is_identity(self, tdp):
        r = self._response(tdp)
        assert r.frequency_ratio(0.0) == pytest.approx(1.0)
        assert r.power_ratio(0.0) == pytest.approx(1.0)
        assert r.score_ratio(0.0) == pytest.approx(1.0)
        assert r.efficiency_ratio(0.0) == pytest.approx(1.0)

    def test_undervolting_saves_power(self, tdp):
        r = self._response(tdp)
        assert r.power_ratio(-0.097) < 1.0

    def test_deeper_offset_saves_more(self, tdp):
        r = self._response(tdp)
        assert r.power_ratio(-0.097) < r.power_ratio(-0.070)

    def test_fully_tdp_bound_power_is_flat(self, tdp):
        r = self._response(tdp, tdp_bound_fraction=1.0)
        assert r.power_ratio(-0.097) == pytest.approx(1.0)

    def test_undervolting_boosts_frequency(self, tdp):
        r = self._response(tdp)
        assert r.frequency_ratio(-0.097) > 1.0

    def test_frequency_capped_at_fmax(self, tdp):
        r = self._response(tdp, thermal_boost_per_volt=10.0)
        assert r.frequency_ratio(-0.097) * 4.5e9 <= tdp.f_max * 1.0001

    def test_perf_sensitivity_scales_score(self, tdp):
        fast = self._response(tdp, perf_sensitivity=1.0)
        slow = self._response(tdp, perf_sensitivity=0.5)
        f_gain = fast.score_ratio(-0.097) - 1.0
        s_gain = slow.score_ratio(-0.097) - 1.0
        assert s_gain == pytest.approx(f_gain * 0.5, rel=0.01)

    def test_efficiency_combines_score_and_power(self, tdp):
        r = self._response(tdp)
        off = -0.097
        expected = r.score_ratio(off) / r.power_ratio(off)
        assert r.efficiency_ratio(off) == pytest.approx(expected)

    def test_leverage_slope_weakens_shallow_offsets(self, tdp):
        flat = self._response(tdp, voltage_leverage=1.25,
                              voltage_leverage_slope=0.0, tdp_bound_fraction=0.0)
        sloped = self._response(tdp, voltage_leverage=1.25,
                                voltage_leverage_slope=18.0, tdp_bound_fraction=0.0)
        # Same at the -97 mV reference point...
        assert sloped.power_ratio(-0.097) == pytest.approx(flat.power_ratio(-0.097))
        # ...but weaker at -70 mV.
        assert sloped.power_ratio(-0.070) > flat.power_ratio(-0.070)


class TestFanCurve:
    def test_paper_anchor_temperatures(self):
        fan = FanCurve()
        assert fan.core_temperature(120.0, 1800) == pytest.approx(50.0, abs=1.0)
        assert fan.core_temperature(120.0, 300) == pytest.approx(88.0, abs=3.0)

    def test_more_airflow_cooler(self):
        fan = FanCurve()
        assert fan.core_temperature(120.0, 1800) < fan.core_temperature(120.0, 600)

    def test_zero_power_is_ambient(self):
        fan = FanCurve(ambient_c=25.0)
        assert fan.core_temperature(0.0, 1000) == pytest.approx(25.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            FanCurve().core_temperature(100.0, 0)
        with pytest.raises(ValueError):
            FanCurve().core_temperature(-5.0, 1000)
