"""Unit tests for SUIT core components: params, thrashing, metrics."""

import pytest

from repro.core.metrics import (
    SimResult,
    geomean_change,
    imul_latency_overhead,
    median_change,
)
from repro.core.params import (
    DEFAULT_PARAMS_AMD,
    DEFAULT_PARAMS_INTEL,
    StrategyParams,
    default_params_for,
)
from repro.core.thrashing import ThrashingMonitor
from repro.workloads.spec import spec_profile


class TestStrategyParams:
    def test_table7_intel_values(self):
        p = DEFAULT_PARAMS_INTEL
        assert p.deadline_s == pytest.approx(30e-6)
        assert p.thrash_timespan_s == pytest.approx(450e-6)
        assert p.thrash_exception_count == 3
        assert p.thrash_deadline_factor == 14.0

    def test_table7_amd_values(self):
        p = DEFAULT_PARAMS_AMD
        assert p.deadline_s == pytest.approx(700e-6)
        assert p.thrash_timespan_s == pytest.approx(14e-3)
        assert p.thrash_exception_count == 4
        assert p.thrash_deadline_factor == 9.0

    def test_scaled_deadline(self):
        p = DEFAULT_PARAMS_INTEL
        assert p.scaled_deadline(False) == pytest.approx(30e-6)
        assert p.scaled_deadline(True) == pytest.approx(30e-6 * 14)

    def test_vendor_lookup(self):
        assert default_params_for("intel") is DEFAULT_PARAMS_INTEL
        assert default_params_for("amd") is DEFAULT_PARAMS_AMD
        with pytest.raises(ValueError):
            default_params_for("via")

    def test_validation(self):
        with pytest.raises(ValueError):
            StrategyParams(deadline_s=0.0)
        with pytest.raises(ValueError):
            StrategyParams(thrash_exception_count=0)
        with pytest.raises(ValueError):
            StrategyParams(thrash_deadline_factor=0.5)


class TestThrashingMonitor:
    def test_counts_within_window(self):
        monitor = ThrashingMonitor(timespan_s=450e-6, threshold=3)
        for t in (0.0, 100e-6, 200e-6):
            monitor.record(t)
        assert monitor.count_in_window(200e-6) == 3

    def test_evicts_old_entries(self):
        monitor = ThrashingMonitor(450e-6, 3)
        monitor.record(0.0)
        monitor.record(1.0)
        assert monitor.count_in_window(1.0) == 1

    def test_detects_thrashing_at_threshold(self):
        monitor = ThrashingMonitor(450e-6, 3)
        monitor.record(0.0)
        monitor.record(1e-6)
        assert not monitor.is_thrashing(2e-6)
        monitor.record(2e-6)
        assert monitor.is_thrashing(3e-6)
        assert monitor.trigger_count == 1

    def test_rejects_time_travel(self):
        monitor = ThrashingMonitor(450e-6, 3)
        monitor.record(1.0)
        with pytest.raises(ValueError):
            monitor.record(0.5)

    def test_reset(self):
        monitor = ThrashingMonitor(450e-6, 1)
        monitor.record(0.0)
        monitor.reset()
        assert monitor.count_in_window(0.0) == 0


class TestImulOverhead:
    def test_x264_is_worst(self):
        x264 = imul_latency_overhead(spec_profile("525.x264"))
        others = [imul_latency_overhead(p) for p in
                  (spec_profile("502.gcc"), spec_profile("557.xz"))]
        assert x264 > 5 * max(others)
        assert x264 == pytest.approx(0.016, abs=0.004)

    def test_average_is_tiny(self):
        gcc = imul_latency_overhead(spec_profile("502.gcc"))
        assert gcc < 0.001

    def test_scales_with_extra_cycles(self):
        p = spec_profile("525.x264")
        assert imul_latency_overhead(p, 2) == pytest.approx(
            2 * imul_latency_overhead(p, 1))
        assert imul_latency_overhead(p, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            imul_latency_overhead(spec_profile("502.gcc"), -1)


class TestSimResultMetrics:
    def _result(self, duration, baseline, energy):
        return SimResult(
            workload="w", cpu_name="c", strategy="fV", voltage_offset=-0.097,
            duration_s=duration, baseline_duration_s=baseline,
            energy_rel=energy, state_time={"E": duration * 0.8})

    def test_perf_change(self):
        r = self._result(duration=0.9, baseline=1.0, energy=0.9)
        assert r.perf_change == pytest.approx(1 / 0.9 - 1)

    def test_power_change(self):
        r = self._result(duration=1.0, baseline=1.0, energy=0.85)
        assert r.power_change == pytest.approx(-0.15)

    def test_efficiency_definition(self):
        # Paper example: half the time at half the power -> +300 %.
        r = self._result(duration=0.5, baseline=1.0, energy=0.25)
        assert r.efficiency_change == pytest.approx(3.0)

    def test_occupancy(self):
        r = self._result(1.0, 1.0, 1.0)
        assert r.efficient_occupancy == pytest.approx(0.8)


class TestAggregates:
    def test_geomean_of_ratios(self):
        # ratios 1.1 and 0.95: geomean sqrt(1.045) - 1
        gm = geomean_change([0.10, -0.05])
        assert gm == pytest.approx((1.10 * 0.95) ** 0.5 - 1)

    def test_geomean_identity(self):
        assert geomean_change([0.0, 0.0]) == pytest.approx(0.0)

    def test_geomean_rejects_impossible(self):
        with pytest.raises(ValueError):
            geomean_change([-1.0])
        with pytest.raises(ValueError):
            geomean_change([])

    def test_median(self):
        assert median_change([0.1, -0.2, 0.05]) == pytest.approx(0.05)
        assert median_change([0.1, 0.2]) == pytest.approx(0.15)
