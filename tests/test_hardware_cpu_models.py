"""Unit tests for the CPU models and their operating points."""

import pytest

from repro.hardware.domains import DomainKind
from repro.hardware.models import ALL_CPU_FACTORIES
from repro.hardware.domains import DomainTopology


class TestDomainTopology:
    def test_shared_domain_affects_all_cores(self):
        topo = DomainTopology(4, DomainKind.SHARED, DomainKind.SHARED)
        assert topo.cores_affected_by_frequency_change(1) == (0, 1, 2, 3)

    def test_per_core_domain_affects_one(self):
        topo = DomainTopology(4, DomainKind.PER_CORE, DomainKind.PER_CORE)
        assert topo.cores_affected_by_frequency_change(2) == (2,)
        assert topo.cores_affected_by_voltage_change(2) == (2,)

    def test_invalid_core_rejected(self):
        topo = DomainTopology(2, DomainKind.SHARED, DomainKind.SHARED)
        with pytest.raises(ValueError):
            topo.cores_affected_by_frequency_change(5)

    def test_impossible_topology_rejected(self):
        with pytest.raises(ValueError):
            DomainTopology(2, DomainKind.SHARED, DomainKind.PER_CORE)

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            DomainTopology(0, DomainKind.SHARED, DomainKind.SHARED)


class TestCpuModels:
    def test_all_factories_build(self):
        for factory in ALL_CPU_FACTORIES.values():
            cpu = factory()
            assert cpu.nominal_frequency > 0
            assert cpu.nominal_voltage > 0.5

    def test_paper_topologies(self, cpu_a, cpu_b, cpu_c):
        # A: single domain; B: per-core frequency only; C: fully per-core.
        assert not cpu_a.topology.per_core_frequency
        assert not cpu_a.topology.per_core_voltage
        assert cpu_b.topology.per_core_frequency
        assert not cpu_b.topology.per_core_voltage
        assert cpu_c.topology.per_core_frequency
        assert cpu_c.topology.per_core_voltage

    def test_b_has_no_voltage_control(self, cpu_b):
        assert cpu_b.transitions.voltage is None

    def test_c_is_voltage_first(self, cpu_c):
        assert cpu_c.transitions.voltage_first

    def test_xeon_not_undervoltable(self, cpu_c):
        assert not cpu_c.allows_undervolting

    def test_amd_exceptions_faster_than_intel(self, cpu_a, cpu_b):
        # Paper section 5.3: 0.11 us on AMD vs 0.34 us on Intel.
        assert cpu_b.exception_delay.mean_s < cpu_a.exception_delay.mean_s

    def test_efficient_curve_requires_negative_offset(self, cpu_a):
        with pytest.raises(ValueError):
            cpu_a.efficient_curve(0.01)
        eff = cpu_a.efficient_curve(-0.097)
        assert eff.voltage_at(4e9) == pytest.approx(0.991 - 0.097)


class TestOperatingPoints:
    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_invariants(self, name):
        cpu = ALL_CPU_FACTORIES[name]()
        points = cpu.operating_points(-0.097)
        # E saves power; Cf is slower and cheaper than CV; CV is baseline.
        assert points.power_e < 1.0
        assert points.power_cf < 1.0
        assert points.speed_cf < 1.0
        assert points.speed_cv == 1.0
        assert points.power_cv == 1.0

    def test_e_is_slightly_faster_than_baseline(self, cpu_a):
        # Undervolting buys boost headroom (Table 2).
        assert cpu_a.operating_points(-0.097).speed_e > 1.0

    def test_deeper_offset_saves_more_power(self, cpu_c):
        shallow = cpu_c.operating_points(-0.070)
        deep = cpu_c.operating_points(-0.097)
        assert deep.power_e < shallow.power_e

    def test_cf_frequency_below_nominal(self, cpu_a):
        assert cpu_a.cf_frequency(-0.097) < cpu_a.nominal_frequency
