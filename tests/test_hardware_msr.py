"""Unit tests for the MSR file and register encodings."""

import pytest

from repro.hardware.msr import (
    Msr,
    MsrFile,
    decode_voltage_offset,
    decode_voltage_reading,
    encode_voltage_offset,
    encode_voltage_reading,
)


class TestVoltageOffsetEncoding:
    @pytest.mark.parametrize("offset", [-0.097, -0.070, -0.050, 0.0, 0.025])
    def test_roundtrip(self, offset):
        decoded = decode_voltage_offset(encode_voltage_offset(offset))
        assert decoded == pytest.approx(offset, abs=0.001)

    def test_quantisation_step_is_about_1mv(self):
        # The mailbox step is 1/1.024 mV.
        one_step = decode_voltage_offset(encode_voltage_offset(0.001))
        assert one_step == pytest.approx(0.0009766, abs=1e-6)

    def test_negative_offsets_use_twos_complement(self):
        value = encode_voltage_offset(-0.097)
        raw = (value >> 21) & 0x7FF
        assert raw > 0x400  # sign bit set

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_voltage_offset(-2.0)


class TestVoltageReadingEncoding:
    @pytest.mark.parametrize("volts", [0.75, 0.991, 1.174])
    def test_roundtrip(self, volts):
        assert decode_voltage_reading(encode_voltage_reading(volts)) == pytest.approx(
            volts, abs=2 ** -13)

    def test_reading_is_in_bits_47_32(self):
        value = encode_voltage_reading(1.0)
        assert value >> 32 == round(1.0 * 8192)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_voltage_reading(-0.1)


class TestMsrFile:
    def test_unwritten_reads_zero(self):
        assert MsrFile().read(Msr.IA32_PERF_CTL) == 0

    def test_write_read(self):
        msrs = MsrFile()
        msrs.write(Msr.SUIT_DEADLINE, 12345)
        assert msrs.read(Msr.SUIT_DEADLINE) == 12345

    def test_write_hook_fires(self):
        msrs = MsrFile()
        seen = []
        msrs.install_write_hook(Msr.IA32_PERF_CTL, seen.append)
        msrs.write(Msr.IA32_PERF_CTL, 0x1D00)
        assert seen == [0x1D00]
        assert msrs.read(Msr.IA32_PERF_CTL) == 0x1D00

    def test_read_hook_overrides_storage(self):
        msrs = MsrFile()
        msrs.install_read_hook(Msr.IA32_PERF_STATUS, lambda: 77)
        msrs.write(Msr.IA32_PERF_STATUS, 1)
        assert msrs.read(Msr.IA32_PERF_STATUS) == 77
        assert msrs.stored(Msr.IA32_PERF_STATUS) == 1

    def test_rejects_non_64bit_values(self):
        msrs = MsrFile()
        with pytest.raises(ValueError):
            msrs.write(Msr.SUIT_CURVE_SELECT, -1)
        with pytest.raises(ValueError):
            msrs.write(Msr.SUIT_CURVE_SELECT, 1 << 64)

    def test_suit_msrs_have_distinct_addresses(self):
        addresses = [m.value for m in Msr]
        assert len(addresses) == len(set(addresses))
