"""Smoke + headline tests for the ablation and extension experiments."""

import pytest

from repro.experiments import (
    ext_adaptive_policy,
    ext_baselines,
    ext_covert_channel,
    ext_heterogeneous,
    ext_scheduler,
    ext_thermal_adaptive,
)
from repro.experiments import ablation_uarch
from repro.experiments.table6_main import evaluate_config


class TestTable6Config:
    def test_headline_configuration(self):
        cells = evaluate_config("C.fV", "C", 1, "fV", -0.097, fast=True)
        assert cells.cells["eff"]["SPECnoSIMD"] > 0.08
        assert cells.cells["pwr"]["nginx"] < -0.02
        assert -0.05 < cells.cells["perf"]["SPECgmean"] < 0.05


class TestAdaptivePolicyExperiment:
    def test_policy_matches_oracle(self):
        result = ext_adaptive_policy.run(seed=0, fast=True)
        assert result.metric("never_catastrophic").measured == 1.0
        assert result.metric("policy_within_2pp_of_oracle").measured == 1.0


class TestCovertChannelExperiment:
    def test_channel_properties(self):
        result = ext_covert_channel.run(seed=0, fast=True)
        assert result.metric("per_core_domain_closes_channel").measured == 1.0
        assert result.metric("stretch_slows_channel").measured == 1.0
        assert result.metric("shared_domain_capacity_bps").measured > 100


class TestBaselinesExperiment:
    def test_security_efficiency_tradeoffs(self):
        result = ext_baselines.run(seed=0, fast=True)
        assert result.metric("suit_secure_and_positive").measured == 1.0
        assert result.metric("naive_deep_insecure").measured == 1.0
        assert result.metric("ecc_x86_insecure").measured == 1.0
        assert result.metric("ecc_itanium_secure").measured == 1.0


class TestSchedulerExperiment:
    def test_trap_aware_placement_wins(self):
        result = ext_scheduler.run(seed=0, fast=True)
        assert result.metric("trap_aware_wins").measured == 1.0
        assert result.metric("clean_domain_occupancy").measured > 0.7


class TestThermalExperiment:
    def test_adaptive_offset_saves(self):
        result = ext_thermal_adaptive.run(seed=0, fast=True)
        assert result.metric("adaptive_saves_energy").measured == 1.0
        assert result.metric("offset_never_exceeds_cap").measured == 1.0


class TestHeterogeneousExperiment:
    def test_suit_wins_on_edp(self):
        result = ext_heterogeneous.run(seed=0, fast=True)
        assert result.metric("suit_wins_every_mix_on_edp").measured == 1.0
        assert result.metric("suit_throughput_never_below_static").measured == 1.0


class TestUarchAblation:
    def test_hardening_robust_to_realism(self):
        result = ablation_uarch.run(seed=0, fast=True)
        assert result.metric("hardening_stays_cheap").measured == 1.0
        assert result.metric("realism_reduces_ipc").measured == 1.0


class TestGovernorExperiment:
    def test_orthogonality_claims(self):
        from repro.experiments import ext_governor

        result = ext_governor.run(seed=0, fast=True)
        assert result.metric("saving_positive_on_every_rung").measured == 1.0
        assert result.metric("timescale_separation").measured > 100


class TestAgingLifetimeExperiment:
    def test_lifetime_boundaries(self):
        from repro.experiments import ext_aging_lifetime

        result = ext_aging_lifetime.run(seed=0, fast=True)
        assert result.metric(
            "minus70_safe_full_life_worst_case").measured == 1.0
        assert result.metric(
            "minus97_safe_controlled_full_life").measured == 1.0
        # The -97 budget expires before end-of-life at worst-case temps.
        assert result.metric("minus97_worst_case_safe_years").measured < 10.0


class TestAgedChipModel:
    def test_aging_shrinks_margins(self):
        import numpy as np

        from repro.faults.model import FaultModel
        from repro.isa.opcodes import Opcode
        from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS

        chip = FaultModel().sample_chip(
            DVFSCurve(I9_9900K_CURVE_POINTS), 2,
            np.random.default_rng(1), exhibits=True)
        old = chip.aged(10.0, temp_c=100.0)
        assert (old.margins[Opcode.ALU] > chip.margins[Opcode.ALU]).all()

    def test_year_zero_cool_is_identity(self):
        import numpy as np

        from repro.faults.model import FaultModel
        from repro.isa.opcodes import Opcode
        from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS

        chip = FaultModel().sample_chip(
            DVFSCurve(I9_9900K_CURVE_POINTS), 2,
            np.random.default_rng(1), exhibits=True)
        same = chip.aged(0.0, temp_c=50.0)
        assert np.allclose(same.margins[Opcode.IMUL],
                           chip.margins[Opcode.IMUL])

    def test_hotter_is_worse(self):
        import numpy as np

        from repro.faults.model import FaultModel
        from repro.isa.opcodes import Opcode
        from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS

        chip = FaultModel().sample_chip(
            DVFSCurve(I9_9900K_CURVE_POINTS), 2,
            np.random.default_rng(1), exhibits=True)
        cool = chip.aged(5.0, temp_c=55.0)
        hot = chip.aged(5.0, temp_c=95.0)
        assert (hot.margins[Opcode.VOR] > cool.margins[Opcode.VOR]).all()


class TestAvxLicensingExperiment:
    def test_table4_sign_structure(self):
        from repro.experiments import ext_avx_licensing

        result = ext_avx_licensing.run(seed=0, fast=True)
        assert result.metric("sparse_simd_loses").measured == 1.0
        assert result.metric("dense_simd_wins").measured == 1.0
        assert result.metric("x264_nosimd_gain").measured > 0.02


class TestModelCheckExperiment:
    def test_machine_verified_and_checker_sound(self):
        from repro.experiments import ext_model_check

        result = ext_model_check.run(seed=0, fast=True)
        assert result.metric("machine_verified").measured == 1.0
        assert result.metric("mutant_caught").measured == 1.0


class TestTiersExperiment:
    def test_ladder_and_selection(self):
        from repro.experiments import ext_tiers

        result = ext_tiers.run(seed=0, fast=True)
        assert result.metric("ladder_has_multiple_tiers").measured == 1.0
        assert result.metric("quiet_workload_goes_deepest").measured == 1.0
        assert result.metric("deep_over_shallow_power_gain").measured > 0.03


class TestPerCoreExperiment:
    def test_binning_recovers_power(self):
        from repro.experiments import ext_percore

        result = ext_percore.run(seed=0, fast=True)
        assert result.metric("gain_non_negative").measured == 1.0
        assert result.metric("some_package_benefits").measured == 1.0
