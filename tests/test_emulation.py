"""Unit tests for the emulation layer: vectors, AES, CLMUL, dispatch."""

import math
import struct

import pytest

from repro.emulation import vector as v
from repro.emulation.aes import (
    SBOX,
    aes128_encrypt_block,
    aes128_expand_key,
    aesenc,
    sbox_lookup,
)
from repro.emulation.bitsliced_aes import (
    aes128_encrypt_block_ct,
    aesenc_constant_time,
    sbox_constant_time,
)
from repro.emulation.clmul import clmul64, gf128_mul, pclmulqdq
from repro.emulation.dispatch import (
    EMULATION_CYCLE_COSTS,
    emulate,
    emulation_cycles,
    reference_result,
)
from repro.emulation.vector import Vec128
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode

# FIPS-197 appendix C.1 test vector.
_FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
_FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
_FIPS_CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestVec128:
    def test_u64_roundtrip(self):
        x = Vec128.from_u64([0x1122334455667788, 0xAABBCCDDEEFF0011])
        assert x.u64() == [0x1122334455667788, 0xAABBCCDDEEFF0011]

    def test_u32_roundtrip(self):
        lanes = [1, 2 ** 31, 0xFFFFFFFF, 7]
        assert Vec128.from_u32(lanes).u32() == lanes

    def test_f64_roundtrip(self):
        lanes = [3.5, -0.125]
        assert Vec128.from_f64(lanes).f64() == lanes

    def test_bytes_roundtrip(self):
        data = bytes(range(16))
        assert Vec128.from_bytes(data).to_bytes() == data

    def test_signed_lanes(self):
        x = Vec128.from_u32([0xFFFFFFFF, 1, 0, 0])
        assert x.i32()[0] == -1

    def test_range_check(self):
        with pytest.raises(ValueError):
            Vec128(-1)
        with pytest.raises(ValueError):
            Vec128(1 << 128)


class TestScalarSimdOps:
    def test_logic_ops(self):
        a = Vec128(0b1100)
        b = Vec128(0b1010)
        assert v.vor(a, b).value == 0b1110
        assert v.vand(a, b).value == 0b1000
        assert v.vxor(a, b).value == 0b0110

    def test_vandn_operand_order(self):
        # x86 ANDN computes (~a) & b.
        a = Vec128(0b1100)
        b = Vec128(0b1010)
        assert v.vandn(a, b).value == 0b0010

    def test_vpaddq_wraps_per_lane(self):
        a = Vec128.from_u64([2 ** 64 - 1, 10])
        b = Vec128.from_u64([1, 20])
        assert v.vpaddq(a, b).u64() == [0, 30]

    def test_vpmaxsd_signed(self):
        a = Vec128.from_u32([0xFFFFFFFF, 5, 0, 9])  # -1 in lane 0
        b = Vec128.from_u32([1, 3, 7, 9])
        assert v.vpmaxsd(a, b).i32() == [1, 5, 7, 9]

    def test_vpcmpeqd(self):
        a = Vec128.from_u32([1, 2, 3, 4])
        b = Vec128.from_u32([1, 0, 3, 0])
        assert v.vpcmpeqd(a, b).u32() == [0xFFFFFFFF, 0, 0xFFFFFFFF, 0]

    def test_vpsrad_arithmetic_shift(self):
        a = Vec128.from_u32([0x80000000, 8, 0, 0])
        out = v.vpsrad(a, 1)
        assert out.i32()[0] == -(2 ** 30)
        assert out.u32()[1] == 4

    def test_vpsrad_saturates_count(self):
        a = Vec128.from_u32([0xFFFFFFFF, 2, 0, 0])
        out = v.vpsrad(a, 40)
        assert out.i32()[0] == -1
        assert out.u32()[1] == 0

    def test_vsqrtpd(self):
        x = Vec128.from_f64([4.0, 2.25])
        assert v.vsqrtpd(x).f64() == [2.0, 1.5]

    def test_vsqrtpd_negative_is_nan(self):
        out = v.vsqrtpd(Vec128.from_f64([-1.0, 9.0])).f64()
        assert math.isnan(out[0])
        assert out[1] == 3.0


class TestAes:
    def test_fips_vector(self):
        assert aes128_encrypt_block(_FIPS_PLAIN, _FIPS_KEY) == _FIPS_CIPHER

    def test_key_schedule_first_and_last(self):
        keys = aes128_expand_key(_FIPS_KEY)
        assert len(keys) == 11
        assert keys[0].to_bytes() == _FIPS_KEY
        # FIPS-197 round 10 key.
        assert keys[10].to_bytes() == bytes.fromhex(
            "13111d7fe3944a17f307a78b4d2b30c5")

    def test_sbox_involution_properties(self):
        # The AES S-box has no fixed points and maps 0 to 0x63.
        assert SBOX[0] == 0x63
        assert all(SBOX[i] != i for i in range(256))
        assert len(set(SBOX)) == 256

    def test_aesenc_differs_from_aesenclast(self):
        state = Vec128.from_bytes(_FIPS_PLAIN)
        rk = Vec128.from_bytes(_FIPS_KEY)
        from repro.emulation.aes import aesenclast
        assert aesenc(state, rk).value != aesenclast(state, rk).value

    def test_block_size_checked(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block(b"short", _FIPS_KEY)
        with pytest.raises(ValueError):
            aes128_expand_key(b"short")


class TestConstantTimeAes:
    def test_sbox_matches_table(self):
        for x in range(256):
            assert sbox_constant_time(x) == sbox_lookup(x)

    def test_fips_vector(self):
        assert aes128_encrypt_block_ct(_FIPS_PLAIN, _FIPS_KEY) == _FIPS_CIPHER

    def test_round_matches_reference(self, rng):
        for _ in range(10):
            state = Vec128(int(rng.integers(0, 2 ** 63)))
            rk = Vec128(int(rng.integers(0, 2 ** 63)))
            assert (aesenc_constant_time(state, rk).value
                    == aesenc(state, rk).value)


class TestClmul:
    def test_simple_products(self):
        assert clmul64(0, 12345) == 0
        assert clmul64(1, 12345) == 12345
        assert clmul64(2, 3) == 6  # x * (x+1) = x^2 + x

    def test_polynomial_identity(self):
        # (x^63) * (x^63) = x^126: no carries in GF(2).
        assert clmul64(1 << 63, 1 << 63) == 1 << 126

    def test_distributive(self, rng):
        for _ in range(20):
            a, b, c = (int(x) for x in rng.integers(0, 2 ** 63, 3))
            assert clmul64(a, b ^ c) == clmul64(a, b) ^ clmul64(a, c)

    def test_commutative(self, rng):
        for _ in range(20):
            a, b = (int(x) for x in rng.integers(0, 2 ** 63, 2))
            assert clmul64(a, b) == clmul64(b, a)

    def test_pclmulqdq_lane_select(self):
        a = Vec128.from_u64([3, 5])
        b = Vec128.from_u64([7, 9])
        assert pclmulqdq(a, b, 0x00).value == clmul64(3, 7)
        assert pclmulqdq(a, b, 0x11).value == clmul64(5, 9)
        assert pclmulqdq(a, b, 0x01).value == clmul64(5, 7)

    def test_gf128_mul_identity(self, rng):
        one = 1
        for _ in range(10):
            a = int(rng.integers(0, 2 ** 63))
            assert gf128_mul(a, one) == a

    def test_gf128_mul_associative(self, rng):
        for _ in range(5):
            a, b, c = (int(x) for x in rng.integers(1, 2 ** 63, 3))
            assert gf128_mul(gf128_mul(a, b), c) == gf128_mul(a, gf128_mul(b, c))


class TestDispatch:
    def test_every_trapped_opcode_has_a_cost(self):
        for op in TRAPPED_OPCODES:
            assert emulation_cycles(op) > 0

    def test_aes_is_most_expensive(self):
        assert EMULATION_CYCLE_COSTS[Opcode.AESENC] == max(
            EMULATION_CYCLE_COSTS.values())

    def test_emulate_matches_reference(self, rng):
        two_ops = (Opcode.VOR, Opcode.VAND, Opcode.VANDN, Opcode.VXOR,
                   Opcode.VPADDQ, Opcode.VPMAX, Opcode.VPCMP, Opcode.AESENC)
        for op in two_ops:
            a = Vec128(int(rng.integers(0, 2 ** 63)))
            b = Vec128(int(rng.integers(0, 2 ** 63)))
            assert emulate(op, (a, b)).value == reference_result(op, (a, b)).value

    def test_emulate_imm8_ops(self):
        a = Vec128.from_u32([16, 0, 0, 0])
        assert emulate(Opcode.VPSRAD, (a,), imm8=2).u32()[0] == 4
        x = Vec128.from_u64([3, 0])
        y = Vec128.from_u64([7, 0])
        assert emulate(Opcode.VPCLMULQDQ, (x, y), imm8=0).value == clmul64(3, 7)

    def test_imul_not_emulatable(self):
        with pytest.raises(ValueError):
            emulate(Opcode.IMUL, (Vec128(1), Vec128(2)))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            emulate(Opcode.VOR, (Vec128(1),))
