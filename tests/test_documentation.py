"""Documentation meta-tests: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
walks the package and enforces it, so the guarantee cannot rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, obj


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                        attr.__doc__ and attr.__doc__.strip()):
                    # Properties/dataclass fields are described in the
                    # class docstring; methods need their own.
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")
