"""Property tests of the fleet's consistent-hash ring.

Pins the two guarantees routing depends on:

* **bounded remapping** — removing 1 of N nodes moves only the keys
  that node owned (~K/N of them); every other key keeps its owner.
  Adding a node back restores the original placement exactly.
* **cross-process determinism** — the ring is a pure function of the
  member set, so a fresh interpreter with the same members routes
  every key to the same node (a restarted gateway routes identically
  with zero coordination).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.ring import ConsistentHashRing, route_key

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

node_names = st.lists(
    st.text(alphabet="abcdefghij-0123456789", min_size=1, max_size=12),
    min_size=2, max_size=8, unique=True)

keys_strategy = st.lists(
    st.text(alphabet="ABCDEFXYZ.xz0123456789", min_size=1, max_size=16),
    min_size=20, max_size=200, unique=True)


class TestPlacementBasics:
    def test_route_key_separator_prevents_collisions(self):
        assert route_key("A", "B.xz") != route_key("AB", ".xz")

    def test_empty_ring_routes_nowhere(self):
        ring = ConsistentHashRing()
        assert ring.route("anything") is None
        assert ring.preference("anything") == []
        assert len(ring) == 0

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        for i in range(50):
            assert ring.route(f"key-{i}") == "only"

    def test_add_and_remove_are_idempotent(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.add("a")
        assert len(ring) == 2
        ring.remove("c")
        ring.remove("b")
        ring.remove("b")
        assert ring.nodes == ("a",)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)

    def test_node_name_must_be_non_empty(self):
        with pytest.raises(ValueError):
            ConsistentHashRing().add("")

    def test_preference_is_distinct_permutation(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        for i in range(30):
            order = ring.preference(f"key-{i}")
            assert order[0] == ring.route(f"key-{i}")
            assert sorted(order) == ["a", "b", "c", "d"]

    def test_preference_n_truncates(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert len(ring.preference("key", n=2)) == 2
        assert len(ring.preference("key", n=99)) == 3


class TestRemappingBound:
    @settings(max_examples=30, deadline=None)
    @given(nodes=node_names, keys=keys_strategy)
    def test_removing_one_node_remaps_only_its_keys(self, nodes, keys):
        ring = ConsistentHashRing(nodes)
        before = ring.placement(keys)
        victim = nodes[0]
        ring.remove(victim)
        after = ring.placement(keys)
        for key in keys:
            if before[key] != victim:
                # Keys owned by survivors must not move at all.
                assert after[key] == before[key]
            else:
                assert after[key] != victim

    @settings(max_examples=20, deadline=None)
    @given(nodes=node_names, keys=keys_strategy)
    def test_remap_fraction_is_about_one_over_n(self, nodes, keys):
        ring = ConsistentHashRing(nodes)
        before = ring.placement(keys)
        ring.remove(nodes[0])
        after = ring.placement(keys)
        moved = sum(1 for key in keys if before[key] != after[key])
        # Exactly the victim's keys move; their expected count is
        # K/N.  Virtual-replica variance is real on small K, so allow
        # a generous factor plus an additive cushion — the property
        # being pinned is "nowhere near all keys", which modulo
        # hashing would violate immediately.
        expected = len(keys) / len(nodes)
        assert moved <= 3.0 * expected + 10

    @settings(max_examples=20, deadline=None)
    @given(nodes=node_names, keys=keys_strategy)
    def test_remove_then_add_restores_placement(self, nodes, keys):
        ring = ConsistentHashRing(nodes)
        before = ring.placement(keys)
        ring.remove(nodes[0])
        ring.add(nodes[0])
        assert ring.placement(keys) == before


class TestDeterminism:
    def test_two_rings_agree(self):
        keys = [route_key(cpu, wl) for cpu in "ACX"
                for wl in ("557.xz", "541.leela", "nginx", "vlc")]
        a = ConsistentHashRing(["n0", "n1", "n2"])
        b = ConsistentHashRing(["n2", "n0", "n1"])  # insertion order differs
        assert a.placement(keys) == b.placement(keys)

    def test_fresh_interpreter_routes_identically(self):
        nodes = ["node-0", "node-1", "node-2", "node-3"]
        keys = [f"key-{i}" for i in range(64)]
        local = ConsistentHashRing(nodes).placement(keys)
        script = (
            "import json, sys\n"
            "from repro.fleet.ring import ConsistentHashRing\n"
            "nodes, keys = json.load(sys.stdin)\n"
            "print(json.dumps(ConsistentHashRing(nodes).placement(keys)))\n")
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([nodes, keys]), capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"})
        assert json.loads(out.stdout) == local
