"""Unit tests for the fault-injection campaign subsystem.

The outcome classifier (all five classes, including the edges the ISSUE
calls out: degraded-but-correct is NOT silent data corruption, and a
SecurityMonitor trip wins over SDC), the faultload spec machinery, the
plan expansion, the runner's checkpoint semantics and the HTML report
builder.
"""

from __future__ import annotations

import json
from html.parser import HTMLParser

import pytest

from repro.campaigns import (CANNED_CAMPAIGNS, CampaignRunner,
                             CheckpointMismatchError, FaultloadSpec,
                             HTML_NAME, OUTCOMES, REPORT_NAME, ReportBuilder,
                             classify_pair, classify_run, canned_campaign,
                             expand, load_checkpoint_spec, load_spec,
                             resolve_spec, tally)
from repro.campaigns.plan import trapped_mask_order
from repro.campaigns.spec import MSR_TARGET_WIDTHS


def summary(digest="aa", duration=100.0, energy=50.0, n_traps=3,
            n_timer_returns=3, violations=0):
    return {"digest": digest, "duration_cycles": duration, "energy": energy,
            "n_traps": n_traps, "n_timer_returns": n_timer_returns,
            "n_fault_events": 0, "violations": violations, "observed": 10}


#: A spec small enough for in-test execution (8 runs, 60 events each).
TINY = FaultloadSpec(name="tiny", scope="msr", fault_model="bit_flip",
                     samples=4, seed=3, offsets_v=(-0.080, -0.140),
                     n_ops=60)


class TestClassifier:
    def test_masked_when_identical(self):
        assert classify_pair(summary(), summary()) == "masked"

    def test_degraded_on_duration_shift(self):
        assert classify_pair(summary(),
                             summary(duration=140.0)) == "degraded"

    def test_degraded_on_trap_count_shift(self):
        assert classify_pair(summary(), summary(n_traps=9)) == "degraded"

    def test_degraded_on_energy_shift(self):
        assert classify_pair(summary(), summary(energy=61.0)) == "degraded"

    def test_degraded_but_correct_is_not_sdc(self):
        # The ISSUE's edge: slower and hungrier, but every result bit
        # correct — a quality loss, never silent data corruption.
        slow = summary(duration=400.0, energy=300.0, n_traps=20,
                       n_timer_returns=1)
        assert classify_pair(summary(), slow) == "degraded"

    def test_sdc_on_digest_mismatch(self):
        assert classify_pair(summary(), summary(digest="bb")) == "sdc"

    def test_monitor_trip_wins_over_sdc(self):
        # The ISSUE's edge: corrupted results AND a tripped invariant
        # monitor — the system saw it, so it is detected, not silent.
        corrupted = summary(digest="bb", violations=4)
        assert classify_pair(summary(), corrupted) == "detected"

    def test_detected_without_corruption(self):
        assert classify_pair(summary(),
                             summary(violations=2)) == "detected"

    def test_baseline_violations_are_subtracted(self):
        # A chip whose baseline already violates (deep undervolt near
        # the hardened-IMUL margin) must not mark every faulted run
        # detected: only NEW violations count.
        assert classify_pair(summary(violations=2),
                             summary(violations=2)) == "masked"

    def test_crashed_status(self):
        assert classify_run({"status": "crashed", "faulted": None}) == "crashed"

    def test_ok_status_delegates_to_pair(self):
        outcome = {"status": "ok", "baseline": summary(),
                   "faulted": summary(digest="bb")}
        assert classify_run(outcome) == "sdc"

    def test_tally_zero_fills_every_class(self):
        counts = tally(["sdc", "masked", "sdc"])
        assert counts == {"crashed": 0, "detected": 0, "sdc": 2,
                          "degraded": 0, "masked": 1}
        assert list(counts) == list(OUTCOMES)

    def test_tally_rejects_unknown_labels(self):
        with pytest.raises(ValueError, match="unknown outcome"):
            tally(["exploded"])


class TestSpec:
    def test_validation_rejects_unknown_scope(self):
        with pytest.raises(ValueError, match="unknown scope"):
            FaultloadSpec(name="x", scope="ram", fault_model="bit_flip")

    def test_validation_rejects_model_scope_mismatch(self):
        with pytest.raises(ValueError, match="invalid for scope"):
            FaultloadSpec(name="x", scope="vmin", fault_model="bit_flip")

    def test_validation_rejects_positive_offsets(self):
        with pytest.raises(ValueError, match="negative"):
            FaultloadSpec(name="x", scope="msr", fault_model="bit_flip",
                          offsets_v=(0.05,))

    def test_validation_rejects_unknown_msr_targets(self):
        with pytest.raises(ValueError, match="unknown MSR target"):
            FaultloadSpec(name="x", scope="msr", fault_model="bit_flip",
                          targets=("SUIT_TURBO",))

    def test_json_round_trip(self):
        spec = CANNED_CAMPAIGNS["vmin_drift_nginx"]
        assert FaultloadSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_unknown_json_field_fails_loudly(self):
        payload = TINY.to_json_dict()
        payload["sample"] = 9  # typo of "samples"
        with pytest.raises(ValueError, match="unknown spec field"):
            FaultloadSpec.from_json_dict(payload)

    def test_digest_pins_content(self):
        assert TINY.digest() == TINY.digest()
        assert TINY.digest() != TINY.with_overrides(seed=4).digest()

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(TINY.to_json_dict()))
        assert load_spec(path) == TINY

    def test_load_spec_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            '[campaign]\nname = "t"\nscope = "injector"\n'
            'fault_model = "bit_flip"\nsamples = 2\n'
            'offsets_v = [-0.05]\nflip_rate = 0.01\n')
        spec = load_spec(path)
        assert spec.name == "t" and spec.scope == "injector"

    def test_resolve_spec_canned_and_unknown(self):
        assert resolve_spec("msr_bitflip_nginx") is \
            CANNED_CAMPAIGNS["msr_bitflip_nginx"]
        with pytest.raises(ValueError, match="unknown canned campaign"):
            canned_campaign("warp_core_breach")


class TestPlanExpansion:
    def test_matrix_size_and_offset_major_order(self):
        plans = expand(TINY)
        assert len(plans) == TINY.n_runs
        assert [p.index for p in plans] == list(range(TINY.n_runs))
        assert [p.offset_v for p in plans[:TINY.samples]] == \
            [TINY.offsets_v[0]] * TINY.samples

    def test_msr_bits_within_target_width(self):
        for plan in expand(TINY):
            for injection in plan.injections:
                assert 0 <= injection.bit < \
                    MSR_TARGET_WIDTHS[injection.target]

    def test_vmin_unknown_target_rejected_eagerly(self):
        spec = FaultloadSpec(name="x", scope="vmin", fault_model="drift",
                             targets=("WARP",))
        with pytest.raises(ValueError, match="unknown faultable opcode"):
            expand(spec)

    def test_mask_order_is_the_trapped_set(self):
        from repro.isa.faultable import TRAPPED_OPCODES

        order = trapped_mask_order()
        assert len(order) == len(TRAPPED_OPCODES)
        assert list(order) == sorted(order)


class TestRunner:
    def test_checkpoint_written_and_resumed(self, tmp_path):
        runner = CampaignRunner(TINY, out_dir=tmp_path)
        runner.run(stop_after=3)
        assert (tmp_path / "campaign.ckpt.json").exists()
        assert len(runner.results) == 3
        resumed = CampaignRunner(TINY, out_dir=tmp_path)
        report = resumed.run(resume=True)
        assert report["n_completed"] == TINY.n_runs
        assert report["incomplete"] == []

    def test_resume_refuses_foreign_checkpoint(self, tmp_path):
        CampaignRunner(TINY, out_dir=tmp_path).run(stop_after=1)
        other = CampaignRunner(TINY.with_overrides(seed=99),
                               out_dir=tmp_path)
        with pytest.raises(CheckpointMismatchError, match="different"):
            other.run(resume=True)

    def test_load_checkpoint_spec_round_trips(self, tmp_path):
        CampaignRunner(TINY, out_dir=tmp_path).run(stop_after=1)
        assert load_checkpoint_spec(tmp_path) == TINY

    def test_outputs_written_and_html_parses(self, tmp_path):
        runner = CampaignRunner(TINY, out_dir=tmp_path)
        runner.run()
        report = runner.write_outputs()
        on_disk = json.loads((tmp_path / REPORT_NAME).read_text())
        assert on_disk == report
        html = (tmp_path / HTML_NAME).read_text()
        parser = HTMLParser()
        parser.feed(html)
        parser.close()
        assert TINY.name in html

    def test_runs_counter_incremented(self):
        from repro.obs import get_registry

        counter = get_registry().counter(
            "campaign_runs_total", label_names=("outcome",))
        before = sum(counter.value(outcome=o) for o in OUTCOMES)
        CampaignRunner(TINY.with_overrides(samples=1,
                                           offsets_v=(-0.08,))).run()
        after = sum(counter.value(outcome=o) for o in OUTCOMES)
        assert after == before + 1

    def test_report_is_pure_function_of_results(self, tmp_path):
        runner = CampaignRunner(TINY, out_dir=tmp_path)
        runner.run()
        assert runner.build_report() == runner.build_report()


class TestReportBuilder:
    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported report schema"):
            ReportBuilder({"schema": "something.else"})

    def test_escapes_untrusted_text(self):
        runner = CampaignRunner(TINY)
        report = runner.run()
        report["runs"][0]["injections"] = ["<script>alert(1)</script>"]
        html = ReportBuilder(report).render()
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_renders_rate_curve_for_canned_campaigns(self):
        # Acceptance criterion: the dashboard renders SDC rate vs
        # undervolt depth for both canned campaigns (one polyline per
        # rate series, one x-axis label per depth grid point).
        for name in ("msr_bitflip_nginx", "vmin_drift_nginx"):
            spec = CANNED_CAMPAIGNS[name].with_overrides(samples=2, n_ops=60)
            html = ReportBuilder(CampaignRunner(spec).run()).render()
            assert html.count("<polyline") == 3  # sdc, detected, crashed
            for offset in spec.offsets_v:
                assert f"{abs(offset) * 1e3:g}" in html
