"""Smoke and fidelity tests for the experiment harness (fast modes)."""

import pytest

from repro.experiments import ExperimentResult, Metric
from repro.experiments import common as exp_common
from repro.experiments import (  # noqa: F401  (import check)
    table1_faults,
)
from repro.experiments import (
    fig2_guardbands,
    fig5_burst_detail,
    fig6_fv_timeline,
    fig7_vlc_timeline,
    fig8_voltage_delay,
    fig9_freq_delay_intel,
    fig10_freq_delay_amd,
    fig11_xeon_pstate,
    fig12_undervolt_sweep,
    fig13_dvfs_curves,
    fig14_imul_latency,
    table2_undervolting,
    table3_temperature,
    table4_nosimd,
)


class TestMetricContainer:
    def test_format_with_paper(self):
        m = Metric("x.eff", 0.12, 0.11)
        assert "+12.00%" in m.format()
        assert "+11.00%" in m.format()

    def test_abs_error(self):
        assert Metric("m", 0.12, 0.10).abs_error == pytest.approx(0.02)
        assert Metric("m", 0.12).abs_error is None

    def test_result_lookup(self):
        result = ExperimentResult("id", "t")
        result.add_metric("a", 1.0, 1.0)
        assert result.metric("a").measured == 1.0
        with pytest.raises(KeyError):
            result.metric("b")

    def test_report_contains_sections(self):
        result = ExperimentResult("id", "title")
        result.lines.append("row")
        result.add_metric("a", 1.0)
        report = result.report()
        assert "id" in report and "row" in report and "a:" in report


class TestTable1:
    def test_ordering_reproduced(self):
        result = table1_faults.run(seed=0, fast=True)
        assert result.metric("rank_correlation").measured > 0.9
        assert result.metric("imul_is_most_faulting").measured == 1.0


class TestTable2:
    def test_all_cells_close_to_paper(self):
        result = table2_undervolting.run()
        for metric in result.metrics:
            assert metric.abs_error < 0.03, metric.format()

    def test_i9_efficiency_headline(self):
        result = table2_undervolting.run()
        assert result.metric("i9-9900K.-97mV.eff").measured == pytest.approx(
            0.23, abs=0.03)


class TestTable3:
    def test_temperatures_and_offsets(self):
        result = table3_temperature.run()
        assert result.metric("temp@1800rpm").abs_error < 3.0
        assert result.metric("offset@300rpm").abs_error < 0.01


class TestTable4:
    def test_suite_means_close(self):
        result = table4_nosimd.run()
        assert result.metric("i9-9900K.fprate").abs_error < 0.02
        assert result.metric("i9-9900K.intrate").abs_error < 0.01

    def test_individual_benchmarks_exact(self):
        result = table4_nosimd.run()
        assert result.metric("7700X.508.namd").abs_error < 1e-9


class TestGuardbands:
    def test_fig2_components(self):
        result = fig2_guardbands.run()
        assert result.metric("aging_guardband_v").abs_error < 0.01
        assert result.metric("offset_combined").abs_error < 0.002


class TestTimelineFigures:
    def test_fig5_single_burst_single_exception(self):
        result = fig5_burst_detail.run(seed=0)
        assert result.metric("exceptions").measured == 1.0
        assert result.metric("returned_to_efficient").measured == 1.0

    def test_fig6_state_sequence(self):
        result = fig6_fv_timeline.run(seed=0)
        assert result.metric("fig6_sequence_observed").measured == 1.0

    def test_fig7_burstiness(self):
        result = fig7_vlc_timeline.run(seed=0)
        assert result.metric("bursty").measured == 1.0
        assert result.metric("gap_spread_decades").measured > 2.0


class TestTransitionFigures:
    def test_fig8_voltage_delay(self):
        result = fig8_voltage_delay.run(seed=0)
        assert result.metric("mean_settle_us").abs_error < 50e-6

    def test_fig9_intel_frequency(self):
        result = fig9_freq_delay_intel.run(seed=0)
        assert result.metric("mean_delay").abs_error < 3e-6
        assert result.metric("aperf_artifact_share").measured > 0.9

    def test_fig10_amd_frequency(self):
        result = fig10_freq_delay_amd.run(seed=0)
        assert result.metric("mean_delay").abs_error < 200e-6
        assert result.metric("no_stall").measured == 1.0

    def test_fig11_xeon_sequencing(self):
        result = fig11_xeon_pstate.run(seed=0, fast=True)
        assert result.metric("voltage_first").measured == 1.0
        assert result.metric("frequency_stall").abs_error < 5e-6


class TestSweepFigures:
    def test_fig12_shapes(self):
        result = fig12_undervolt_sweep.run()
        assert result.metric("score_monotone").measured == 1.0
        assert result.metric("power_monotone").measured == 1.0
        assert result.metric("power_drop@-97mV").abs_error < 0.03

    def test_fig13_curves(self):
        result = fig13_dvfs_curves.run()
        assert result.metric("headroom@5GHz").abs_error < 0.03
        assert result.metric("cf_below_nominal_freq").measured == 1.0

    def test_fig14_latency_hiding(self):
        result = fig14_imul_latency.run(seed=0, fast=True)
        assert result.metric("x264@4").measured < 0.03
        assert result.metric("superlinear_then_linear").measured == 1.0


class TestTraceCache:
    def test_cached_trace_is_shared(self, small_profile):
        a = exp_common.cached_trace(small_profile, seed=123)
        b = exp_common.cached_trace(small_profile, seed=123)
        assert a is b
