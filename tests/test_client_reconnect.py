"""Reconnect hardening of :class:`repro.service.client.ServiceClient`.

A connection that dies mid-exchange must be transparently re-opened
once and the message resent — for idempotent verbs, on clients that
know their endpoint — and everything else must surface the original
connection error.
"""

import asyncio

import pytest

from repro.service import (
    ServiceClient,
    ServiceConfig,
    SimRequest,
    SimulationService,
    start_tcp_server,
)

THREAD_CONFIG = dict(use_processes=False, n_shards=1, workers_per_shard=1,
                     batch_window_s=0.002, default_timeout_s=30.0)


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


class _Server:
    """One service + TCP server whose connections tests can reset."""

    def __init__(self):
        self.connections = set()

    async def __aenter__(self):
        self.service = SimulationService(ServiceConfig(**THREAD_CONFIG))
        await self.service.start()
        self.server = await start_tcp_server(
            self.service, port=0, connections=self.connections)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self.server.close()
        await self.server.wait_closed()
        await self.service.stop(drain=False, timeout_s=2.0)

    def reset_connections(self):
        """Abort every established connection — a peer-side reset."""
        for writer in list(self.connections):
            if writer.transport is not None:
                writer.transport.abort()
        self.connections.clear()


class TestReconnect:
    def test_submit_survives_connection_reset(self):
        async def scenario():
            async with _Server() as srv:
                client = await ServiceClient.connect("127.0.0.1", srv.port)
                try:
                    first = await client.submit(SimRequest("A", "557.xz"))
                    srv.reset_connections()
                    await asyncio.sleep(0.02)  # let the reset land
                    second = await client.submit(SimRequest("A", "557.xz"))
                    return first, second, client._generation
                finally:
                    await client.close()

        first, second, generation = run(scenario())
        assert first.ok and second.ok
        assert second.payload == first.payload  # same pure simulation
        assert generation == 1  # exactly one reconnect happened

    def test_concurrent_requests_share_one_reconnect(self):
        async def scenario():
            async with _Server() as srv:
                client = await ServiceClient.connect("127.0.0.1", srv.port)
                try:
                    await client.ping()
                    srv.reset_connections()
                    await asyncio.sleep(0.02)
                    responses = await asyncio.gather(*(
                        client.submit(SimRequest("A", "557.xz", seed=i))
                        for i in range(6)))
                    return responses, client._generation
                finally:
                    await client.close()

        responses, generation = run(scenario())
        assert all(r.ok for r in responses)
        assert generation == 1  # deduplicated: one reconnect for all six

    def test_reads_ride_the_reconnect_path_too(self):
        async def scenario():
            async with _Server() as srv:
                client = await ServiceClient.connect("127.0.0.1", srv.port)
                try:
                    srv.reset_connections()
                    await asyncio.sleep(0.02)
                    pong = await client.ping()
                    health = await client.health()
                    return pong, health
                finally:
                    await client.close()

        pong, health = run(scenario())
        assert pong["op"] == "pong"
        assert health["status"] == "ok"

    def test_non_idempotent_drain_is_not_resent(self):
        async def scenario():
            async with _Server() as srv:
                client = await ServiceClient.connect("127.0.0.1", srv.port)
                try:
                    await client.ping()
                    srv.reset_connections()
                    await asyncio.sleep(0.02)
                    with pytest.raises((ConnectionError, OSError)):
                        await client.drain()
                    return client._generation
                finally:
                    await client.close()

        assert run(scenario()) == 0  # no reconnect was attempted

    def test_endpointless_client_cannot_reconnect(self):
        async def scenario():
            async with _Server() as srv:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port)
                client = ServiceClient(reader, writer)  # no host/port
                try:
                    srv.reset_connections()
                    await asyncio.sleep(0.02)
                    with pytest.raises((ConnectionError, OSError)):
                        await client.ping()
                finally:
                    await client.close()

        run(scenario())

    def test_reconnect_fails_fast_when_node_is_really_gone(self):
        async def scenario():
            async with _Server() as srv:
                client = await ServiceClient.connect("127.0.0.1", srv.port)
                await client.ping()
                srv.reset_connections()
            # Server context exited: the listener and service are gone,
            # so the transparent reconnect must fail with the real
            # connection error instead of retrying forever.
            try:
                with pytest.raises((ConnectionError, OSError)):
                    await client.ping()
            finally:
                await client.close()

        run(scenario())

    def test_closed_client_does_not_reconnect(self):
        async def scenario():
            async with _Server() as srv:
                client = await ServiceClient.connect("127.0.0.1", srv.port)
                await client.ping()
                await client.close()
                with pytest.raises((ConnectionError, OSError, RuntimeError)):
                    await client.ping()

        run(scenario())
