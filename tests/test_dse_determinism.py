"""Property suite: a DSE search is a pure function of (spec, seed).

The issue's contract, mirroring ``test_campaigns_determinism.py``:
same seed ⇒ byte-identical ``dse_report.json`` across double runs,
across serial vs ``--jobs`` pool evaluation, and across an
interrupt-plus-resume from ``dse.ckpt.json``; a different seed ⇒ a
different search trajectory.  Plus the hash-discipline regression: the
report must not depend on ``PYTHONHASHSEED`` (all genome and job keys
are sha256 content addresses, never ``hash()``, and every iteration
order is explicitly sorted).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.dse import CheckpointMismatchError, DseRunner, DseSpec

#: Small enough to evaluate in well under a second per generation.
SMALL = DseSpec(name="det", generations=2, population=6, seed=13,
                deadlines_us=(20.0, 50.0), offsets_mv=(-70.0, -97.0, -125.0),
                imul_latencies=(3, 4, 5))


def report_json(spec: DseSpec, **kwargs) -> str:
    """Run *spec* in memory and serialize its report canonically."""
    return json.dumps(DseRunner(spec, **kwargs).run(), sort_keys=True)


class TestReportDeterminism:
    def test_double_run_reports_are_byte_identical(self):
        assert report_json(SMALL) == report_json(SMALL)

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_seeds_reproduce_and_differ(self, seed):
        spec = SMALL.with_overrides(seed=seed)
        bumped = SMALL.with_overrides(seed=seed + 1)
        assert report_json(spec) == report_json(spec)
        first = json.loads(report_json(spec))
        second = json.loads(report_json(bumped))
        # A reseeded search explores a different trajectory (the spec
        # digest differs by construction; the evaluated set must too).
        assert first["spec_digest"] != second["spec_digest"]
        assert [r["key"] for r in first["all_evaluated"]] != \
            [r["key"] for r in second["all_evaluated"]]

    def test_pool_and_serial_reports_are_byte_identical(self, tmp_path):
        serial = DseRunner(SMALL, out_dir=tmp_path / "s", jobs=1)
        serial.run()
        serial.write_outputs(html=False)
        pooled = DseRunner(SMALL, out_dir=tmp_path / "p", jobs=2)
        pooled.run()
        pooled.write_outputs(html=False)
        assert (tmp_path / "s" / "dse_report.json").read_bytes() == \
            (tmp_path / "p" / "dse_report.json").read_bytes()

    def test_interrupted_and_resumed_equals_uninterrupted(self, tmp_path):
        straight = DseRunner(SMALL, out_dir=tmp_path / "a")
        straight.run()
        straight.write_outputs(html=False)

        # Interrupt after one generation (the checkpoint survives any
        # kill because it is rewritten atomically), then resume.
        broken = DseRunner(SMALL, out_dir=tmp_path / "b")
        partial = broken.run(stop_after_generations=1)
        assert partial["n_generations"] == 1
        assert (tmp_path / "b" / "dse.ckpt.json").exists()
        resumed = DseRunner(SMALL, out_dir=tmp_path / "b")
        resumed.run(resume=True)
        resumed.write_outputs(html=False)

        assert (tmp_path / "a" / "dse_report.json").read_bytes() == \
            (tmp_path / "b" / "dse_report.json").read_bytes()

    def test_resume_of_a_finished_search_is_a_no_op(self, tmp_path):
        runner = DseRunner(SMALL, out_dir=tmp_path)
        first = json.dumps(runner.run(), sort_keys=True)
        again = DseRunner(SMALL, out_dir=tmp_path)
        second = json.dumps(again.run(resume=True), sort_keys=True)
        assert first == second
        # Nothing was re-simulated: the report was rebuilt purely from
        # the checkpoint's simulation memo.
        assert again.backend.sims
        assert again.backend.memo_hits == 0

    def test_resume_refuses_a_different_spec(self, tmp_path):
        DseRunner(SMALL, out_dir=tmp_path).run(stop_after_generations=1)
        reseeded = SMALL.with_overrides(seed=SMALL.seed + 1)
        with pytest.raises(CheckpointMismatchError):
            DseRunner(reseeded, out_dir=tmp_path).run(resume=True)


class TestHashSeedIndependence:
    """The ``hash()``/dict-order regression (issue satellite #4)."""

    SCRIPT = """
import json, sys
from repro.dse import DseRunner, DseSpec
spec = DseSpec(name="hashseed", generations=1, population=6, seed=3,
               deadlines_us=(20.0, 50.0), offsets_mv=(-70.0, -97.0))
report = DseRunner(spec).run()
sys.stdout.write(json.dumps(report, sort_keys=True))
"""

    def run_under_hashseed(self, hashseed: str) -> str:
        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p)
        proc = subprocess.run([sys.executable, "-c", self.SCRIPT],
                              capture_output=True, text=True, env=env,
                              check=True)
        return proc.stdout

    def test_report_is_hashseed_independent(self):
        assert self.run_under_hashseed("0") == self.run_under_hashseed("1")
