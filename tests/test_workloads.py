"""Unit tests for traces, gap models, profiles, generation, analysis."""

import numpy as np
import pytest

from repro.isa.opcodes import Opcode
from repro.workloads.analysis import (
    burst_statistics,
    gap_size_timeline,
    instructions_per_faultable,
)
from repro.workloads.gaps import burst_positions, interleave_sparse_events, lognormal_gaps
from repro.workloads.generator import generate_trace, single_burst_trace
from repro.workloads.network import NGINX_PROFILE, VLC_PROFILE
from repro.workloads.profile import WorkloadProfile
from repro.workloads.spec import (
    SPEC_FP_NAMES,
    SPEC_INT_NAMES,
    SPEC_PROFILES,
    all_spec_profiles,
    spec_profile,
)
from repro.workloads.trace import FaultableTrace


class TestGapPrimitives:
    def test_lognormal_gaps_median(self, rng):
        gaps = lognormal_gaps(rng, 20_000, median=1e5, sigma=0.5)
        assert np.median(gaps) == pytest.approx(1e5, rel=0.05)
        assert gaps.min() >= 1

    def test_lognormal_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            lognormal_gaps(rng, 10, median=0.5, sigma=1.0)
        with pytest.raises(ValueError):
            lognormal_gaps(rng, -1, median=10, sigma=1.0)

    def test_burst_positions_bounded_and_sorted(self, rng):
        pos = burst_positions(rng, start=1000, length=50_000, mean_gap=100)
        assert pos.min() >= 1000
        assert pos.max() < 51_000
        assert np.all(np.diff(pos) >= 0)

    def test_burst_positions_density(self, rng):
        pos = burst_positions(rng, 0, 1_000_000, mean_gap=100)
        assert pos.size == pytest.approx(10_000, rel=0.1)

    def test_sparse_events(self, rng):
        pos = interleave_sparse_events(rng, 50, 0, 10 ** 9)
        assert pos.size == 50
        assert np.all(np.diff(pos) >= 0)


class TestFaultableTrace:
    def _tiny(self):
        return FaultableTrace(
            name="t", n_instructions=1000, ipc=2.0,
            indices=np.array([10, 20, 500]), opcodes=np.array([0, 1, 0]),
            opcode_table=(Opcode.VOR, Opcode.AESENC))

    def test_basic_properties(self):
        t = self._tiny()
        assert t.n_events == 3
        assert t.faultable_rate == pytest.approx(3 / 1000)
        assert t.event_opcode(1) is Opcode.AESENC

    def test_gaps(self):
        t = self._tiny()
        assert t.gaps().tolist() == [10, 10, 480]

    def test_duration(self):
        t = self._tiny()
        assert t.duration_s(frequency=2.0) == pytest.approx(250.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultableTrace("x", 100, 1.0, np.array([5, 3]),
                           np.array([0, 0]), (Opcode.VOR,))
        with pytest.raises(ValueError):
            FaultableTrace("x", 100, 1.0, np.array([500]),
                           np.array([0]), (Opcode.VOR,))
        with pytest.raises(ValueError):
            FaultableTrace("x", 100, -1.0, np.array([5]),
                           np.array([0]), (Opcode.VOR,))

    def test_slice(self):
        t = self._tiny()
        part = t.slice_events(15, 600)
        assert part.n_instructions == 585
        assert part.indices.tolist() == [5, 485]

    def test_save_load_roundtrip(self, tmp_path):
        t = self._tiny()
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = FaultableTrace.load(path)
        assert loaded.name == t.name
        assert loaded.n_instructions == t.n_instructions
        assert np.array_equal(loaded.indices, t.indices)
        assert loaded.opcode_table == t.opcode_table


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "SPECint", 0, 1.0, 0.5, 10, 100)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "SPECint", 100, 1.0, 1.5, 10, 100)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "SPECint", 100, 1.0, 0.5, 0, 100)

    def test_imul_cannot_be_in_mix(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "SPECint", 1000, 1.0, 0.5, 1, 100,
                            opcode_mix={Opcode.IMUL: 1.0})

    def test_nosimd_lookup(self, small_profile):
        assert small_profile.nosimd_for("intel") == -0.02
        with pytest.raises(KeyError):
            small_profile.nosimd_for("via")

    def test_normalized_mix(self, small_profile):
        mix = small_profile.normalized_mix()
        assert sum(mix.values()) == pytest.approx(1.0)


class TestSpecProfiles:
    def test_twenty_three_benchmarks(self):
        assert len(SPEC_INT_NAMES) == 10
        assert len(SPEC_FP_NAMES) == 13
        assert len(all_spec_profiles()) == 23

    def test_paper_anchor_occupancies(self):
        assert spec_profile("557.xz").efficient_occupancy == pytest.approx(0.971)
        assert spec_profile("502.gcc").efficient_occupancy == pytest.approx(0.766)
        assert spec_profile("520.omnetpp").efficient_occupancy == pytest.approx(0.032)

    def test_mean_occupancy_near_paper(self):
        # Paper section 6.4: 72.7 % average time on the efficient curve.
        occ = [p.efficient_occupancy for p in all_spec_profiles()]
        assert sum(occ) / len(occ) == pytest.approx(0.727, abs=0.04)

    def test_x264_imul_statistics(self):
        x264 = spec_profile("525.x264")
        assert x264.imul_density == pytest.approx(0.0099)
        others = [p.imul_density for p in all_spec_profiles()
                  if p.name != "525.x264"]
        assert sum(others) / len(others) == pytest.approx(0.0007, abs=0.0004)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            spec_profile("999.nonsense")


class TestNetworkProfiles:
    def test_crypto_mix(self):
        for profile in (NGINX_PROFILE, VLC_PROFILE):
            assert Opcode.AESENC in profile.opcode_mix
            assert profile.opcode_mix[Opcode.AESENC] > 0.5

    def test_nginx_denser_than_vlc(self):
        assert NGINX_PROFILE.dense_gap < VLC_PROFILE.dense_gap


class TestGenerator:
    def test_deterministic_per_seed(self, small_profile):
        a = generate_trace(small_profile, seed=7)
        b = generate_trace(small_profile, seed=7)
        c = generate_trace(small_profile, seed=8)
        assert np.array_equal(a.indices, b.indices)
        assert not np.array_equal(a.indices, c.indices)

    def test_respects_bounds(self, small_trace, small_profile):
        assert small_trace.indices.min() >= 0
        assert small_trace.indices.max() < small_profile.n_instructions
        assert np.all(np.diff(small_trace.indices) >= 0)

    def test_opcode_mix_applied(self, small_trace):
        assert set(small_trace.opcode_table) == {Opcode.VOR, Opcode.VXOR}

    def test_dense_fraction_tracks_occupancy(self, dense_profile, small_profile):
        dense = generate_trace(dense_profile, seed=1)
        sparse = generate_trace(small_profile, seed=1)
        assert dense.faultable_rate > 5 * sparse.faultable_rate

    def test_single_burst_trace(self):
        t = single_burst_trace("b", 10_000_000, 1.5, 5_000_000, 100_000, 50.0)
        assert t.indices.min() >= 5_000_000
        assert t.indices.max() < 5_100_000
        assert t.n_events == pytest.approx(2000, rel=0.2)

    def test_single_burst_bounds_checked(self):
        with pytest.raises(ValueError):
            single_burst_trace("b", 1000, 1.5, 900, 200, 10.0)


class TestAnalysis:
    def test_gap_timeline_log_scale(self, small_trace):
        indices, log_gaps = gap_size_timeline(small_trace)
        assert indices.shape == log_gaps.shape
        assert log_gaps.min() >= 0

    def test_burst_statistics_structure(self, small_trace, small_profile):
        stats = burst_statistics(small_trace, burst_threshold=1_000_000)
        assert stats.n_bursts >= small_profile.n_episodes * 0.5
        assert 0 < stats.burst_instruction_fraction <= 1.0
        assert stats.mean_intra_gap < 1_000_000

    def test_burst_statistics_empty_trace(self):
        t = FaultableTrace("e", 1000, 1.0, np.array([], dtype=np.int64),
                           np.array([], dtype=np.uint8), (Opcode.VOR,))
        stats = burst_statistics(t)
        assert stats.n_bursts == 0
        assert instructions_per_faultable(t) == float("inf")

    def test_instructions_per_faultable(self, small_trace):
        rate = instructions_per_faultable(small_trace)
        assert rate == pytest.approx(1.0 / small_trace.faultable_rate)
