"""Tests for the ResultCache size bound: LRU pruning and the CLI.

PR 1 gave the cache atomic writes and content addressing; this pins the
new eviction layer — ``max_bytes`` on the constructor, recency refresh
on hits, :meth:`ResultCache.prune`, and the
``python -m repro.runtime.cache`` entry point a long-lived service uses
to keep its disk footprint bounded.
"""

import os
import time

import pytest

from repro.runtime.cache import DEFAULT_PRUNE_MAX_BYTES, ResultCache, main


def _fill(cache, n, size=200):
    """Write *n* entries of roughly *size* payload bytes, oldest first.

    Backdates mtimes one second apart so LRU order is deterministic
    without sleeping.
    """
    for i in range(n):
        cache.put(f"key{i:02d}", {"i": i, "blob": "x" * size})
        ts = time.time() - (n - i)
        os.utime(cache.path_for(f"key{i:02d}"), (ts, ts))


class TestSizeAccounting:
    def test_total_bytes_matches_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        expected = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
        assert cache.total_bytes() == expected > 0

    def test_entries_sorted_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        mtimes = [mtime for _, mtime, _ in cache.entries()]
        assert mtimes == sorted(mtimes)


class TestLruPrune:
    def test_prune_removes_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 5)
        keep_bytes = cache.total_bytes() - 1  # force dropping one entry
        removed = cache.prune(max_bytes=keep_bytes)
        assert removed == 1
        assert cache.get("key00") is None  # oldest gone
        assert cache.get("key04") is not None  # newest kept

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 4)
        assert cache.get("key00") is not None  # touch the oldest
        removed = cache.prune(max_bytes=cache.total_bytes() - 1)
        assert removed == 1
        assert cache.get("key00") is not None  # survived: recently used
        assert cache.get("key01") is None  # next-oldest evicted instead

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        assert cache.prune(max_bytes=0) == 3
        assert len(cache) == 0

    def test_prune_without_cap_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        assert cache.prune() == 0
        assert len(cache) == 3

    def test_bounded_put_keeps_cap(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=600)
        for i in range(20):
            cache.put(f"k{i}", {"i": i, "blob": "y" * 100})
        assert cache.total_bytes() <= 600
        assert len(cache) >= 1
        assert cache.get("k19") is not None  # newest always survives

    def test_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=-1)


class TestCacheCli:
    def test_stats(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 2)
        assert main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out

    def test_prune_flag(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 4)
        assert main(["--dir", str(tmp_path), "--prune",
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned 4" in out
        assert len(cache) == 0

    def test_prune_default_cap_is_generous(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 2)
        assert DEFAULT_PRUNE_MAX_BYTES == 1 << 30
        assert main(["--dir", str(tmp_path), "--prune"]) == 0
        assert len(cache) == 2  # far under 1 GiB: nothing removed

    def test_clear_flag(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        assert main(["--dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 3" in capsys.readouterr().out
        assert len(cache) == 0

    def test_rejects_negative_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--dir", str(tmp_path), "--prune", "--max-bytes", "-5"])
