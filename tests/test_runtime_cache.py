"""Tests for the ResultCache size bound: LRU pruning and the CLI.

PR 1 gave the cache atomic writes and content addressing; this pins the
new eviction layer — ``max_bytes`` on the constructor, recency refresh
on hits, :meth:`ResultCache.prune`, and the
``python -m repro.runtime.cache`` entry point a long-lived service uses
to keep its disk footprint bounded.
"""

import os
import time

import pytest

from repro.runtime.cache import DEFAULT_PRUNE_MAX_BYTES, ResultCache, main


def _fill(cache, n, size=200):
    """Write *n* entries of roughly *size* payload bytes, oldest first.

    Backdates mtimes one second apart so LRU order is deterministic
    without sleeping.
    """
    for i in range(n):
        cache.put(f"key{i:02d}", {"i": i, "blob": "x" * size})
        ts = time.time() - (n - i)
        os.utime(cache.path_for(f"key{i:02d}"), (ts, ts))


class TestSizeAccounting:
    def test_total_bytes_matches_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        expected = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
        assert cache.total_bytes() == expected > 0

    def test_entries_sorted_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        mtimes = [mtime for _, mtime, _ in cache.entries()]
        assert mtimes == sorted(mtimes)


class TestLruPrune:
    def test_prune_removes_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 5)
        keep_bytes = cache.total_bytes() - 1  # force dropping one entry
        removed = cache.prune(max_bytes=keep_bytes)
        assert removed == 1
        assert cache.get("key00") is None  # oldest gone
        assert cache.get("key04") is not None  # newest kept

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 4)
        assert cache.get("key00") is not None  # touch the oldest
        removed = cache.prune(max_bytes=cache.total_bytes() - 1)
        assert removed == 1
        assert cache.get("key00") is not None  # survived: recently used
        assert cache.get("key01") is None  # next-oldest evicted instead

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        assert cache.prune(max_bytes=0) == 3
        assert len(cache) == 0

    def test_prune_without_cap_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        assert cache.prune() == 0
        assert len(cache) == 3

    def test_bounded_put_keeps_cap(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=600)
        for i in range(20):
            cache.put(f"k{i}", {"i": i, "blob": "y" * 100})
        assert cache.total_bytes() <= 600
        assert len(cache) >= 1
        assert cache.get("k19") is not None  # newest always survives

    def test_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=-1)


class TestCacheCli:
    def test_stats(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 2)
        assert main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out

    def test_prune_flag(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 4)
        assert main(["--dir", str(tmp_path), "--prune",
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned 4" in out
        assert len(cache) == 0

    def test_prune_default_cap_is_generous(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 2)
        assert DEFAULT_PRUNE_MAX_BYTES == 1 << 30
        assert main(["--dir", str(tmp_path), "--prune"]) == 0
        assert len(cache) == 2  # far under 1 GiB: nothing removed

    def test_clear_flag(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _fill(cache, 3)
        assert main(["--dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 3" in capsys.readouterr().out
        assert len(cache) == 0

    def test_rejects_negative_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--dir", str(tmp_path), "--prune", "--max-bytes", "-5"])


class TestCorruptEntries:
    """A rotten on-disk entry is a *counted* miss, never a crash.

    Pins the corruption taxonomy of :meth:`ResultCache.get`: undecodable
    bytes / non-dict entry / non-dict payload are counted in
    ``cache_corrupt_entries_total`` and the file is dropped so the
    recompute's put() starts clean; an absent entry or a schema-version
    mismatch stays a plain, uncounted miss.
    """

    @pytest.fixture()
    def registry(self):
        from repro.obs.registry import MetricsRegistry, set_registry

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        yield fresh
        set_registry(previous)

    @staticmethod
    def _corrupt_count(registry):
        return registry.counter("cache_corrupt_entries_total").value()

    def test_bit_flip_is_counted_miss_and_heals(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        path = cache.put("key", {"answer": 42})
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF  # flip the opening brace: undecodable JSON
        path.write_bytes(bytes(raw))

        assert cache.get("key") is None
        assert self._corrupt_count(registry) == 1
        assert not path.exists()  # dropped, not left to rot
        # The recompute's put()/get() round-trips on the cleaned slot.
        cache.put("key", {"answer": 42})
        assert cache.get("key") == {"answer": 42}
        assert self._corrupt_count(registry) == 1  # healed: no new count

    def test_truncated_entry_is_counted_miss(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        path = cache.put("key", {"blob": "x" * 256})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.get("key") is None
        assert self._corrupt_count(registry) == 1
        assert not path.exists()

    def test_non_dict_entry_is_counted_miss(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        path = cache.path_for("key")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert cache.get("key") is None
        assert self._corrupt_count(registry) == 1

    def test_non_dict_payload_is_counted_miss(self, tmp_path, registry):
        import json

        from repro.runtime.cache import CACHE_SCHEMA_VERSION

        cache = ResultCache(tmp_path)
        path = cache.path_for("key")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"cache_schema": CACHE_SCHEMA_VERSION,
                                    "key": "key", "payload": 5}))
        assert cache.get("key") is None
        assert self._corrupt_count(registry) == 1

    def test_absent_entry_is_plain_miss(self, tmp_path, registry):
        cache = ResultCache(tmp_path)
        assert cache.get("never-written") is None
        assert self._corrupt_count(registry) == 0

    def test_schema_mismatch_is_plain_uncounted_miss(self, tmp_path,
                                                     registry):
        import json

        cache = ResultCache(tmp_path)
        path = cache.path_for("key")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"cache_schema": -1, "key": "key",
                                    "payload": {"a": 1}}))
        assert cache.get("key") is None
        assert self._corrupt_count(registry) == 0
        assert path.exists()  # stale versions are not "corrupt"

    def test_chaos_corrupt_injection_end_to_end(self, tmp_path, registry):
        """The cache.entry chaos site exercises the same taxonomy."""
        from repro.testkit.chaos import (ChaosController, FaultPlan,
                                         FaultSpec)

        cache = ResultCache(tmp_path)
        cache.put("key", {"answer": 42})
        plan = FaultPlan.generate(
            0, [FaultSpec("cache.entry", "corrupt", 1.0, max_fires=1)], 10)
        with ChaosController(plan):
            assert cache.get("key") is None  # corrupted mid-read
            assert cache.get("key") is None  # slot already dropped
        assert self._corrupt_count(registry) == 1
        cache.put("key", {"answer": 42})
        assert cache.get("key") == {"answer": 42}
