"""Windowed time-series over registry snapshots (``repro.obs.timeseries``)."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import (
    MetricsScraper,
    histogram_delta,
    percentile_of,
)
from repro.testkit.clock import FakeClock


def hist(counts, bounds=(0.01, 0.1, 1.0), max_seen=None):
    """A histogram JSON dict with *counts* per bucket (last = overflow)."""
    les = list(bounds) + [None]
    assert len(counts) == len(les)
    n = sum(counts)
    return {"n": n, "mean": 0.05 if n else None, "max": max_seen,
            "buckets": [{"le": le, "count": c}
                        for le, c in zip(les, counts)]}


def snap(counters=None, gauges=None, histograms=None):
    return {"counters": dict(counters or {}), "gauges": dict(gauges or {}),
            "histograms": dict(histograms or {})}


@pytest.fixture
def clock():
    return FakeClock(start=100.0)


@pytest.fixture
def scraper(clock):
    return MetricsScraper(interval_s=1.0, capacity=16, clock=clock)


class TestPercentileOf:
    def test_empty_and_missing_return_none(self):
        assert percentile_of(None, 0.95) is None
        assert percentile_of(hist([0, 0, 0, 0]), 0.95) is None

    def test_bucket_upper_bound(self):
        h = hist([90, 9, 1, 0])
        assert percentile_of(h, 0.50) == 0.01
        assert percentile_of(h, 0.95) == 0.1

    def test_overflow_bucket_reports_max(self):
        h = hist([0, 0, 0, 10], max_seen=42.0)
        assert percentile_of(h, 0.95) == 42.0

    def test_out_of_range_p_raises(self):
        with pytest.raises(ValueError):
            percentile_of(hist([1, 0, 0, 0]), 1.5)


class TestHistogramDelta:
    def test_windowed_counts_are_subtracted(self):
        prev = hist([10, 5, 0, 0])
        cur = hist([10, 25, 0, 0])
        delta = histogram_delta(cur, prev)
        assert [b["count"] for b in delta["buckets"]] == [0, 20, 0, 0]
        assert delta["n"] == 20
        assert delta["p95"] == 0.1

    def test_missing_previous_falls_back_to_current(self):
        cur = hist([3, 0, 0, 0])
        delta = histogram_delta(cur, None)
        assert [b["count"] for b in delta["buckets"]] == [3, 0, 0, 0]

    def test_reset_falls_back_to_current(self):
        # A restarted process reports smaller counts; over-reporting
        # (the cumulative view) beats negative nonsense.
        prev = hist([10, 5, 0, 0])
        cur = hist([2, 0, 0, 0])
        delta = histogram_delta(cur, prev)
        assert [b["count"] for b in delta["buckets"]] == [2, 0, 0, 0]

    def test_bounds_mismatch_falls_back_to_current(self):
        prev = hist([1, 1, 1, 0], bounds=(0.5, 5.0, 50.0))
        cur = hist([2, 2, 2, 0])
        delta = histogram_delta(cur, prev)
        assert [b["count"] for b in delta["buckets"]] == [2, 2, 2, 0]

    def test_missing_current_is_none(self):
        assert histogram_delta(None, hist([1, 0, 0, 0])) is None


class TestScraperWindows:
    def test_needs_two_samples(self, scraper):
        assert scraper.delta("requests_total") is None
        scraper.ingest(snap(counters={"requests_total": 5}))
        assert scraper.delta("requests_total") is None

    def test_delta_and_rate_over_window(self, scraper, clock):
        scraper.ingest(snap(counters={"requests_total": 10}))
        clock.advance(2.0)
        scraper.ingest(snap(counters={"requests_total": 30}))
        assert scraper.delta("requests_total", window_s=5.0) == 20
        assert scraper.rate("requests_total", window_s=5.0) == 10.0

    def test_window_picks_newest_base_outside_window(self, scraper, clock):
        for value in (10, 20, 40, 80):
            scraper.ingest(snap(counters={"c": value}))
            clock.advance(1.0)
        # Window 1.5s back from the newest sample (t=103): the base is
        # the newest sample older than the cutoff, t=101 (value 20).
        assert scraper.delta("c", window_s=1.5) == 80 - 20

    def test_window_predating_history_uses_oldest(self, scraper, clock):
        scraper.ingest(snap(counters={"c": 1}))
        clock.advance(1.0)
        scraper.ingest(snap(counters={"c": 7}))
        assert scraper.delta("c", window_s=9999.0) == 6

    def test_counter_reset_clamps_to_newest(self, scraper, clock):
        scraper.ingest(snap(counters={"c": 50}))
        clock.advance(1.0)
        scraper.ingest(snap(counters={"c": 3}))
        assert scraper.delta("c", window_s=10.0) == 3

    def test_windowed_percentile(self, scraper, clock):
        scraper.ingest(snap(histograms={"latency_s": hist([100, 0, 0, 0])}))
        clock.advance(1.0)
        # Only slow observations landed inside the window.
        scraper.ingest(snap(histograms={"latency_s": hist([100, 0, 4, 0])}))
        assert scraper.windowed_percentile("latency_s", 0.95, 10.0) == 1.0
        # ... while the cumulative histogram's p95 stays fast.
        cumulative = scraper.samples[-1].histograms["latency_s"]
        assert percentile_of(cumulative, 0.95) == 0.01

    def test_no_traffic_window_is_none(self, scraper, clock):
        h = hist([5, 0, 0, 0])
        scraper.ingest(snap(histograms={"latency_s": h}))
        clock.advance(1.0)
        scraper.ingest(snap(histograms={"latency_s": h}))
        assert scraper.windowed_percentile("latency_s", 0.95, 10.0) is None

    def test_ring_buffer_drops_oldest(self, clock):
        scraper = MetricsScraper(interval_s=1.0, capacity=3, clock=clock)
        for value in range(10):
            scraper.ingest(snap(counters={"c": value}))
            clock.advance(1.0)
        assert len(scraper) == 3
        assert scraper.samples[0].counters["c"] == 7

    def test_series_for_sparklines(self, scraper, clock):
        for t, (depth, total) in enumerate([(1.0, 0), (3.0, 10), (2.0, 30)]):
            scraper.ingest(snap(gauges={"queue_depth": depth},
                                counters={"done": total}))
            if t < 2:
                clock.advance(1.0)
        gauge = scraper.gauge_series("queue_depth")
        assert [v for _, v in gauge] == [1.0, 3.0, 2.0]
        rates = scraper.rate_series("done")
        assert [v for _, v in rates] == [10.0, 20.0]

    def test_scrape_reads_registry(self, scraper):
        registry = MetricsRegistry()
        registry.counter("hits_total", "hits").inc(3)
        sample = scraper.scrape(registry)
        assert sample.counters["hits_total"] == 3

    def test_invalid_construction_rejected(self, clock):
        with pytest.raises(ValueError):
            MetricsScraper(interval_s=0.0, clock=clock)
        with pytest.raises(ValueError):
            MetricsScraper(capacity=1, clock=clock)
