"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("simulate", "suite", "trace", "tune", "reproduce", "audit"):
            assert cmd in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSimulate:
    def test_runs_and_exits_zero(self, capsys):
        assert main(["simulate", "--cpu", "C", "--workload", "557.xz"]) == 0
        out = capsys.readouterr().out
        assert "efficiency" in out
        assert "Xeon" in out

    def test_partial_workload_name(self, capsys):
        assert main(["simulate", "--workload", "xz"]) == 0

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "notabenchmark"])

    def test_emulation_strategy(self, capsys):
        assert main(["simulate", "--workload", "557.xz",
                     "--strategy", "e"]) == 0


class TestTrace:
    def test_gen_info_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        assert main(["trace", "gen", "--workload", "557.xz",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["trace", "info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "events" in text
        assert "bursts" in text

    def test_record(self, tmp_path, capsys):
        out = tmp_path / "rec.npz"
        assert main(["trace", "record", "--requests", "3",
                     "--bytes", "512", "--out", str(out)]) == 0
        assert "encrypted bytes" in capsys.readouterr().out


class TestAudit:
    def test_safe_offset_exits_zero(self, capsys):
        assert main(["audit", "--offset", "-0.07"]) == 0
        assert "holds: True" in capsys.readouterr().out

    def test_reckless_offset_exits_nonzero(self, capsys):
        assert main(["audit", "--offset", "-0.28"]) == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestTune:
    def test_small_grid(self, capsys):
        assert main(["tune", "--cpu", "C", "--deadlines", "20,30"]) == 0
        assert "best parameters" in capsys.readouterr().out


class TestFigures:
    def test_single_figure_renders(self, capsys):
        assert main(["figures", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12" in out

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            main(["figures", "fig99"])
