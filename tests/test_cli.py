"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("simulate", "suite", "trace", "tune", "reproduce",
                    "audit", "serve"):
            assert cmd in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize("jobs", ["0", "-2", "four"])
    def test_reproduce_rejects_bad_jobs(self, jobs, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["reproduce", "--jobs", jobs])
        assert excinfo.value.code == 2  # argparse usage error, no traceback
        err = capsys.readouterr().err
        assert "positive integer" in err or "not an integer" in err

    def test_reproduce_accepts_positive_jobs(self):
        args = build_parser().parse_args(["reproduce", "--jobs", "4"])
        assert args.jobs == 4

    @pytest.mark.parametrize("flag", ["--shards", "--workers-per-shard",
                                      "--max-queue", "--batch-size"])
    def test_serve_rejects_nonpositive_sizes(self, flag):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", flag, "0"])


class TestSimulate:
    def test_runs_and_exits_zero(self, capsys):
        assert main(["simulate", "--cpu", "C", "--workload", "557.xz"]) == 0
        out = capsys.readouterr().out
        assert "efficiency" in out
        assert "Xeon" in out

    def test_partial_workload_name(self, capsys):
        assert main(["simulate", "--workload", "xz"]) == 0

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "notabenchmark"])

    def test_ambiguous_workload_lists_matching_candidates(self, capsys):
        # "ca" matches 507.cactuBSSN and 527.cam4 (and nothing else).
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--workload", "ca"])
        message = str(excinfo.value)
        assert "ambiguous" in message
        assert "507.cactuBSSN" in message
        assert "527.cam4" in message
        assert "557.xz" not in message  # not the full catalogue

    def test_emulation_strategy(self, capsys):
        assert main(["simulate", "--workload", "557.xz",
                     "--strategy", "e"]) == 0


class TestTrace:
    def test_gen_info_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        assert main(["trace", "gen", "--workload", "557.xz",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["trace", "info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "events" in text
        assert "bursts" in text

    def test_record(self, tmp_path, capsys):
        out = tmp_path / "rec.npz"
        assert main(["trace", "record", "--requests", "3",
                     "--bytes", "512", "--out", str(out)]) == 0
        assert "encrypted bytes" in capsys.readouterr().out


class TestAudit:
    def test_safe_offset_exits_zero(self, capsys):
        assert main(["audit", "--offset", "-0.07"]) == 0
        assert "holds: True" in capsys.readouterr().out

    def test_reckless_offset_exits_nonzero(self, capsys):
        assert main(["audit", "--offset", "-0.28"]) == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestTune:
    def test_small_grid(self, capsys):
        assert main(["tune", "--cpu", "C", "--deadlines", "20,30"]) == 0
        assert "best parameters" in capsys.readouterr().out


class TestServe:
    def test_serves_for_duration_and_drains(self, capsys):
        # Ephemeral port, thread workers, short run: a full serve
        # lifecycle (bind, announce, drain, metrics dump) in ~0.2 s.
        assert main(["serve", "--port", "0", "--inline", "--no-cache",
                     "--duration", "0.2", "--shards", "1",
                     "--workers-per-shard", "1"]) == 0
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1:" in out
        assert "cache off" in out

    def test_banner_reports_cache_on_even_when_empty(self, tmp_path,
                                                     capsys):
        # An empty ResultCache is falsy (len == 0); the banner must
        # report configuration, not current occupancy.
        assert main(["serve", "--port", "0", "--inline",
                     "--duration", "0.1", "--shards", "1",
                     "--workers-per-shard", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "cache on" in capsys.readouterr().out


class TestFigures:
    def test_single_figure_renders(self, capsys):
        assert main(["figures", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12" in out

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            main(["figures", "fig99"])
