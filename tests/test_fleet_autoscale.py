"""The autoscaler control loop: hysteresis, cooldown, bounds, victim
selection — every decision pinned step by step on a fake clock.
"""

import asyncio

import pytest

from repro.fleet import (
    Autoscaler,
    AutoscalerConfig,
    FleetGateway,
    GatewayConfig,
    NodeConfig,
    NodeSupervisor,
)
from repro.service.request import SimRequest
from repro.testkit.clock import FakeClock


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


HOT = {"queue_depth": 50.0, "inflight": 10.0, "draining": False,
       "p95_latency_s": 5.0}
IDLE = {"queue_depth": 0.0, "inflight": 0.0, "draining": False,
        "p95_latency_s": 0.01}


class _Rig:
    """Fleet + autoscaler with canned signals and a fake clock."""

    def __init__(self, n=1, **cfg):
        self.n = n
        self.cfg = AutoscalerConfig(**cfg)

    async def __aenter__(self):
        self.supervisor = NodeSupervisor(NodeConfig(in_process=True))
        self.gateway = FleetGateway(GatewayConfig())
        for _ in range(self.n):
            handle = await self.supervisor.spawn()
            self.gateway.add_node(handle.name, handle.host, handle.port)
        self.clock = FakeClock()
        self.scaler = Autoscaler(self.gateway, self.supervisor,
                                 self.cfg, clock=self.clock)
        self.signals = dict(IDLE)
        gateway = self.gateway

        async def canned():
            return {name: dict(self.signals)
                    for name in gateway.node_names}

        self.gateway.node_signals = canned
        return self

    async def __aexit__(self, *exc):
        await self.gateway.close()
        await self.supervisor.stop_all(drain=False)

    @property
    def size(self):
        return len(self.gateway.node_names)


class TestBounds:
    def test_below_min_scales_up_structurally(self):
        async def scenario():
            async with _Rig(n=1, min_nodes=2, max_nodes=4) as rig:
                event = await rig.scaler.step()
                return event, rig.size

        event, size = run(scenario())
        assert event.action == "scale_up"
        assert event.reason == "below min_nodes"
        assert size == 2

    def test_below_min_ignores_cooldown(self):
        async def scenario():
            async with _Rig(n=1, min_nodes=3, max_nodes=4,
                            cooldown_s=1e9) as rig:
                first = await rig.scaler.step()
                second = await rig.scaler.step()
                return first, second, rig.size

        first, second, size = run(scenario())
        assert first.action == second.action == "scale_up"
        assert size == 3

    def test_max_nodes_is_a_hard_ceiling(self):
        async def scenario():
            async with _Rig(n=2, min_nodes=1, max_nodes=2,
                            up_breaches=1, cooldown_s=0.0) as rig:
                rig.signals = dict(HOT)
                events = [await rig.scaler.step() for _ in range(4)]
                return events, rig.size

        events, size = run(scenario())
        assert all(e is None for e in events)
        assert size == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Autoscaler(None, None, AutoscalerConfig(min_nodes=0))
        with pytest.raises(ValueError):
            Autoscaler(None, None, AutoscalerConfig(min_nodes=3,
                                                    max_nodes=2))


class TestHysteresis:
    def test_one_hot_sample_does_not_scale(self):
        async def scenario():
            async with _Rig(n=1, up_breaches=2, cooldown_s=0.0) as rig:
                rig.signals = dict(HOT)
                first = await rig.scaler.step()
                second = await rig.scaler.step()
                return first, second, rig.size

        first, second, size = run(scenario())
        assert first is None          # streak 1 < up_breaches
        assert second.action == "scale_up"
        assert size == 2

    def test_streak_resets_on_calm_sample(self):
        async def scenario():
            async with _Rig(n=1, up_breaches=2, cooldown_s=0.0) as rig:
                rig.signals = dict(HOT)
                await rig.scaler.step()     # streak 1
                rig.signals = dict(IDLE)
                rig.signals["inflight"] = 2.0   # calm but not idle
                await rig.scaler.step()     # streak resets
                rig.signals = dict(HOT)
                event = await rig.scaler.step()  # streak 1 again
                return event, rig.size

        event, size = run(scenario())
        assert event is None
        assert size == 1

    def test_scale_down_needs_a_long_idle_streak(self):
        async def scenario():
            async with _Rig(n=3, min_nodes=1, down_breaches=4,
                            cooldown_s=0.0) as rig:
                rig.signals = dict(IDLE)
                events = [await rig.scaler.step() for _ in range(4)]
                return events, rig.size

        events, size = run(scenario())
        assert all(e is None for e in events[:3])
        assert events[3].action == "scale_down"
        assert size == 2

    def test_scale_down_stops_at_min(self):
        async def scenario():
            async with _Rig(n=1, min_nodes=1, down_breaches=1,
                            cooldown_s=0.0) as rig:
                rig.signals = dict(IDLE)
                events = [await rig.scaler.step() for _ in range(3)]
                return events, rig.size

        events, size = run(scenario())
        assert all(e is None for e in events)
        assert size == 1


class TestCooldown:
    def test_cooldown_holds_after_an_action(self):
        async def scenario():
            async with _Rig(n=1, up_breaches=1, cooldown_s=10.0,
                            max_nodes=8) as rig:
                rig.signals = dict(HOT)
                first = await rig.scaler.step()
                held = await rig.scaler.step()
                rig.clock.advance(11.0)
                after = await rig.scaler.step()
                return first, held, after, rig.size

        first, held, after, size = run(scenario())
        assert first.action == "scale_up"
        assert held is None
        assert after.action == "scale_up"
        assert size == 3


class TestScaleDownMechanics:
    def test_victim_is_youngest_and_leaves_ring_before_drain(self):
        async def scenario():
            async with _Rig(n=3, min_nodes=1, down_breaches=1,
                            cooldown_s=0.0) as rig:
                rig.signals = dict(IDLE)
                names_before = list(rig.gateway.node_names)
                event = await rig.scaler.step()
                victim_handle = rig.supervisor.get(event.node)
                return (event, names_before, rig.gateway.node_names,
                        victim_handle.state)

        event, before, after, state = run(scenario())
        assert event.action == "scale_down"
        assert event.node == sorted(before)[-1]  # LIFO: youngest goes
        assert event.node not in after
        assert state == "stopped"  # drained politely

    def test_events_and_counter_recorded(self):
        async def scenario():
            async with _Rig(n=1, min_nodes=2) as rig:
                await rig.scaler.step()
                counter = rig.gateway.registry.counter(
                    "fleet_scale_events_total", "autoscaler actions, by kind",
                    label_names=("action",))
                return rig.scaler.events, counter.value(action="scale_up")

        events, count = run(scenario())
        assert len(events) == 1
        assert count == 1
        payload = events[0].to_json_dict()
        assert payload["action"] == "scale_up"
        assert payload["fleet_size"] == 2

    def test_scale_up_node_is_warmed_before_joining(self):
        async def scenario():
            async with _Rig(n=1, min_nodes=2) as rig:
                warmers = [SimRequest("A", "557.xz",
                                      voltage_offset=-0.070)]
                scaler = Autoscaler(rig.gateway, rig.supervisor,
                                    AutoscalerConfig(min_nodes=2),
                                    clock=rig.clock, warmers=warmers)
                event = await scaler.step()
                handle = rig.supervisor.get(event.node)
                counters = handle.service.metrics.snapshot()["counters"]
                return event, counters

        event, counters = run(scenario())
        assert event.action == "scale_up"
        # The new node served the warm-up population before add_node
        # made it routable — its counters prove the requests landed.
        assert counters["requests_completed"] == 1

    def test_draining_nodes_are_ignored_in_signals(self):
        async def scenario():
            async with _Rig(n=2, up_breaches=1, cooldown_s=0.0,
                            max_nodes=4) as rig:
                gateway = rig.gateway

                async def mixed():
                    names = gateway.node_names
                    return {names[0]: dict(HOT, draining=True),
                            names[1]: dict(IDLE)}

                gateway.node_signals = mixed
                event = await rig.scaler.step()
                return event, rig.size

        event, size = run(scenario())
        assert event is None  # the draining node's heat does not count
        assert size == 2

    def test_error_entries_are_skipped(self):
        async def scenario():
            async with _Rig(n=2, up_breaches=1, cooldown_s=0.0,
                            max_nodes=4) as rig:
                gateway = rig.gateway

                async def broken():
                    names = gateway.node_names
                    return {names[0]: {"error": "ConnectionError(...)"},
                            names[1]: dict(HOT)}

                gateway.node_signals = broken
                event = await rig.scaler.step()
                return event, rig.size

        event, size = run(scenario())
        assert event.action == "scale_up"  # the live node's signal rules
        assert size == 3


class TestWindowedLatencySignal:
    """The warm-up fix: scaling reads the *windowed* p95 when present."""

    def test_cold_warm_up_no_longer_reads_as_hot(self):
        # A fresh node's cumulative p95 remembers its slow first
        # requests forever; once the gateway reports the windowed key
        # and the warm-up has left the window (windowed None = no
        # recent traffic), the fleet must not scale on the stale
        # cumulative value.
        async def scenario():
            async with _Rig(n=1, min_nodes=1, max_nodes=4,
                            up_breaches=1) as rig:
                rig.signals = {"queue_depth": 0.0, "inflight": 0.0,
                               "draining": False,
                               "p95_latency_s": 50.0,       # stale
                               "windowed_p95_latency_s": None}
                events = [await rig.scaler.step() for _ in range(3)]
                return events, rig.size

        events, size = run(scenario())
        assert events == [None, None, None]
        assert size == 1

    def test_windowed_breach_still_scales(self):
        async def scenario():
            async with _Rig(n=1, min_nodes=1, max_nodes=4,
                            up_breaches=1) as rig:
                rig.signals = {"queue_depth": 0.0, "inflight": 1.0,
                               "draining": False,
                               "p95_latency_s": 0.01,
                               "windowed_p95_latency_s": 5.0}
                return await rig.scaler.step()

        event = run(scenario())
        assert event.action == "scale_up"
        assert "p95" in event.reason

    def test_cumulative_fallback_without_windowed_key(self):
        # Canned signals (and older nodes) without the windowed key
        # keep the original cumulative behaviour.
        async def scenario():
            async with _Rig(n=1, min_nodes=1, max_nodes=4,
                            up_breaches=1) as rig:
                rig.signals = dict(HOT)
                return await rig.scaler.step()

        event = run(scenario())
        assert event.action == "scale_up"
