"""The DSE's service-tier contract.

Three layers, per the issue:

* :class:`~repro.service.request.SimRequest` carries the new optional
  ``deadline_us`` / ``imul_extra_cycles`` fields — validated when set,
  **identity-neutral when absent** (legacy requests keep byte-identical
  canonical dicts, keys and wire frames);
* the worker tier honours both fields (including through the grouped
  vectorized path) with the same bit-exact semantics as the local
  evaluator;
* :class:`~repro.dse.evaluate.ServiceEvalBackend` run against a live
  TCP service produces the same objective records as
  :class:`~repro.dse.evaluate.LocalEvalBackend`.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.dse import DseSpec, Genome, LocalEvalBackend, ServiceEvalBackend
from repro.service import (ServiceClient, ServiceConfig, SimRequest,
                           SimulationService, start_tcp_server)
from repro.service.request import InvalidRequestError

#: Thread-tier config: full semantics, no process-spawn cost.
THREAD_CONFIG = dict(use_processes=False, n_shards=1, workers_per_shard=2,
                     batch_window_s=0.002, default_timeout_s=30.0)


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


class TestRequestFields:
    def test_valid_fields_round_trip_the_wire_form(self):
        request = SimRequest("C", "nginx", strategy="fV", seed=3,
                             deadline_us=50.0, imul_extra_cycles=2)
        request.validate()
        again = SimRequest.from_dict(request.to_dict())
        assert again == request
        assert again.deadline_us == 50.0
        assert again.imul_extra_cycles == 2

    @pytest.mark.parametrize("bad", [0.0, -30.0, True, "soon"])
    def test_rejects_bad_deadlines(self, bad):
        with pytest.raises(InvalidRequestError):
            SimRequest("C", "nginx", deadline_us=bad).validate()

    @pytest.mark.parametrize("bad", [-1, 0.5, True, "one"])
    def test_rejects_bad_extra_cycles(self, bad):
        with pytest.raises(InvalidRequestError):
            SimRequest("C", "nginx", imul_extra_cycles=bad).validate()

    def test_unset_fields_are_identity_neutral(self):
        """A request not using the new fields must keep the exact
        pre-extension canonical dict (cache keys, dedup keys and wire
        frames all derive from it)."""
        legacy = SimRequest("C", "nginx", strategy="fV",
                            voltage_offset=-0.097, seed=7)
        canonical = legacy.canonical_dict()
        assert "deadline_us" not in canonical
        assert "imul_extra_cycles" not in canonical
        explicit = SimRequest("C", "nginx", strategy="fV",
                              voltage_offset=-0.097, seed=7,
                              deadline_us=50.0, imul_extra_cycles=1)
        assert explicit.canonical_key() != legacy.canonical_key()

    def test_set_fields_split_the_dedup_key(self):
        base = dict(cpu="C", workload="nginx", strategy="fV", seed=7)
        keys = {
            SimRequest(**base, deadline_us=20.0).canonical_key(),
            SimRequest(**base, deadline_us=50.0).canonical_key(),
            SimRequest(**base, imul_extra_cycles=0).canonical_key(),
            SimRequest(**base, imul_extra_cycles=2).canonical_key(),
        }
        assert len(keys) == 4


class TestWorkerHonoursTheFields:
    def submit_all(self, requests):
        """Run *requests* through an in-process service; payload list."""
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                responses = [await service.submit(q) for q in requests]
            for response in responses:
                assert response.ok, response.error
            return [response.payload for response in responses]

        return run(scenario())

    def test_deadline_changes_the_simulation(self):
        tight, loose = self.submit_all([
            SimRequest("C", "nginx", strategy="fV", seed=5,
                       deadline_us=10.0),
            SimRequest("C", "nginx", strategy="fV", seed=5,
                       deadline_us=700.0),
        ])
        assert tight["duration_s"] != loose["duration_s"]

    def test_extra_cycle_one_matches_builtin_hardening(self):
        default, explicit, unhardened = self.submit_all([
            SimRequest("C", "nginx", strategy="fV", seed=5),
            SimRequest("C", "nginx", strategy="fV", seed=5,
                       imul_extra_cycles=1),
            SimRequest("C", "nginx", strategy="fV", seed=5,
                       imul_extra_cycles=0),
        ])
        assert explicit["duration_s"] == default["duration_s"]
        assert explicit["energy_rel"] == default["energy_rel"]
        assert unhardened["duration_s"] < default["duration_s"]

    def test_grouped_and_single_paths_agree(self):
        """The batched (vectorized) worker path must reproduce the
        one-request path bit for bit with the new fields set."""
        request = SimRequest("C", "nginx", strategy="fV", seed=5,
                             deadline_us=50.0, imul_extra_cycles=2)
        # Duplicate keys dedup; vary the offset to force a real group.
        siblings = [
            SimRequest("C", "nginx", strategy="fV", seed=5,
                       voltage_offset=-0.050 - 0.01 * i,
                       deadline_us=50.0, imul_extra_cycles=2)
            for i in range(3)
        ]
        grouped = self.submit_all(siblings + [request])[-1]
        single = self.submit_all([request])[0]
        assert grouped["duration_s"] == single["duration_s"]
        assert grouped["energy_rel"] == single["energy_rel"]


class _ServiceThread:
    """A TCP simulation service on a background thread (so synchronous
    clients like :class:`ServiceEvalBackend` can call it)."""

    def __enter__(self) -> "_ServiceThread":
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(20.0), "service did not come up"
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with SimulationService(
                ServiceConfig(**THREAD_CONFIG)) as service:
            server = await start_tcp_server(service, "127.0.0.1", 0)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            await self._stop.wait()
            server.close()
            await server.wait_closed()

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(20.0)


class TestServiceEvalBackend:
    SPEC = DseSpec(name="svc", generations=1, population=4, seed=5,
                   deadlines_us=(20.0, 50.0), offsets_mv=(-70.0, -97.0))
    GENOMES = [
        Genome(deadline_us=20.0, strategy="fV", offset_mv=-97.0,
               corner="typical", imul_latency=4),
        Genome(deadline_us=50.0, strategy="f", offset_mv=-70.0,
               corner="fast", imul_latency=5),
        Genome(deadline_us=50.0, strategy="e", offset_mv=-97.0,
               corner="typical", imul_latency=4),
    ]

    def test_matches_the_local_backend(self):
        local = LocalEvalBackend(self.SPEC).evaluate(self.GENOMES)
        with _ServiceThread() as service:
            backend = ServiceEvalBackend(self.SPEC, port=service.port,
                                         timeout_s=60.0)
            remote = backend.evaluate(self.GENOMES)
            # Second generation over the same genomes: all memo hits,
            # no further requests.
            backend.evaluate(self.GENOMES)
            assert backend.memo_hits == len(self.GENOMES)

        def stripped(records):
            return json.dumps([{k: v for k, v in r.items() if k != "path"}
                               for r in records], sort_keys=True)

        # Identical objective records; only the path label differs.
        assert stripped(local) == stripped(remote)
        assert {r["path"] for r in remote} == {"service"}

    def test_failed_requests_raise(self):
        spec = self.SPEC.with_overrides(workload="nginx")
        backend = ServiceEvalBackend(spec, port=1, timeout_s=1.0)
        with pytest.raises(OSError):
            backend.evaluate(self.GENOMES)


class TestTcpRoundTripWithNewFields:
    def test_fields_survive_the_wire(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                server = await start_tcp_server(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect("127.0.0.1", port)
                try:
                    responses = await client.submit_many([
                        SimRequest("C", "nginx", seed=1, deadline_us=50.0,
                                   imul_extra_cycles=2),
                    ])
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return responses

        responses = run(scenario())
        assert responses[0].ok, responses[0].error
        assert responses[0].request.deadline_us == 50.0
        assert responses[0].request.imul_extra_cycles == 2
