"""Tests for the multi-tier efficient-curve extension."""

import numpy as np
import pytest

from repro.core.tiers import (
    CurveTier,
    choose_tier,
    derive_tiers,
    tier_power_gain,
    trap_rates_by_opcode,
)
from repro.faults.model import FaultModel
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.workloads.trace import FaultableTrace

FREQS = (2.0e9, 3.0e9, 4.0e9)


@pytest.fixture(scope="module")
def chip():
    curve = DVFSCurve(I9_9900K_CURVE_POINTS)
    return FaultModel().sample_chip(curve, 4, np.random.default_rng(21),
                                    exhibits=True)


@pytest.fixture(scope="module")
def tiers(chip):
    return derive_tiers(chip, FREQS)


def _trace(opcode, rate, n=10 ** 9):
    step = int(1 / rate)
    indices = np.arange(step, n, step, dtype=np.int64)
    return FaultableTrace("t", n, 1.5, indices,
                          np.zeros(indices.size, dtype=np.uint8), (opcode,))


class TestCurveTier:
    def test_validation(self):
        with pytest.raises(ValueError):
            CurveTier(offset_v=0.05, disabled=frozenset({Opcode.VOR}))
        with pytest.raises(ValueError):
            CurveTier(offset_v=-0.07, disabled=frozenset())
        with pytest.raises(ValueError):
            CurveTier(offset_v=-0.07, disabled=frozenset({Opcode.IMUL}))


class TestDeriveTiers:
    def test_ladder_shallow_to_deep(self, tiers):
        offsets = [t.offset_v for t in tiers]
        assert offsets == sorted(offsets, reverse=True)
        assert len(tiers) == 3

    def test_disabled_sets_nest(self, tiers):
        for shallow, deep in zip(tiers, tiers[1:]):
            assert shallow.disabled < deep.disabled

    def test_deepest_tier_is_classic_suit(self, tiers):
        assert tiers[-1].disabled == TRAPPED_OPCODES

    def test_shallow_tier_keeps_common_logic_ops(self, tiers):
        assert Opcode.VAND not in tiers[0].disabled
        assert Opcode.VOR in tiers[0].disabled  # most sensitive: always

    def test_offsets_respect_cap(self, chip):
        capped = derive_tiers(chip, FREQS, max_offset_v=-0.080)
        assert all(t.offset_v >= -0.080 for t in capped)

    def test_tiers_safe_for_their_enabled_sets(self, chip, tiers):
        hardened = chip.with_hardened_imul()
        for tier in tiers:
            for op in Opcode:
                if op in tier.disabled:
                    continue
                for core in range(hardened.n_cores):
                    for freq in FREQS:
                        voltage = hardened.curve.voltage_at(freq) + tier.offset_v
                        assert not hardened.faults(op, core, freq, voltage), \
                            (tier.offset_v, op)

    def test_invalid_prefix_rejected(self, chip):
        with pytest.raises(ValueError):
            derive_tiers(chip, FREQS, prefixes=(0,))
        with pytest.raises(ValueError):
            derive_tiers(chip, FREQS, prefixes=(99,))


class TestChooseTier:
    def test_vand_heavy_workload_stays_mid_tier(self, tiers):
        # Uses VAND often: the deep tier would trap it; tier 1 keeps it
        # enabled... but tier 1 also disables VAND.  Check the actual
        # semantics: frequent VAND pushes the choice to tier 0.
        choice = choose_tier(tiers, _trace(Opcode.VAND, 1e-4))
        assert Opcode.VAND not in choice.tier.disabled

    def test_vpaddq_heavy_workload_gets_mid_depth(self, tiers):
        choice = choose_tier(tiers, _trace(Opcode.VPADDQ, 1e-4))
        assert choice.tier == tiers[1]  # VPADDQ enabled there, deeper than 0

    def test_trap_free_workload_goes_deepest(self, tiers):
        quiet = _trace(Opcode.VOR, 1e-8)
        choice = choose_tier(tiers, quiet, max_trap_rate=1e-6)
        # VOR rate 1e-8 is under budget everywhere: deepest tier wins.
        assert choice.tier == tiers[-1]

    def test_fallback_is_shallowest(self, tiers):
        noisy = _trace(Opcode.VPADDQ, 1e-3)
        # VPADDQ is only disabled on the deepest tier; rate too high for
        # it, fine for the shallower ones: picks tier 1 (deeper of the
        # two where VPADDQ stays enabled).
        choice = choose_tier(tiers, noisy)
        assert Opcode.VPADDQ not in choice.tier.disabled

    def test_empty_ladder_rejected(self, tiers):
        with pytest.raises(ValueError):
            choose_tier([], _trace(Opcode.VOR, 1e-6))


class TestHelpers:
    def test_trap_rates(self):
        trace = _trace(Opcode.AESENC, 1e-5)
        rates = trap_rates_by_opcode(trace)
        assert rates[Opcode.AESENC] == pytest.approx(1e-5, rel=0.01)

    def test_deeper_tier_saves_more_power(self, tiers):
        gain = tier_power_gain(tiers[0], tiers[-1], nominal_voltage=1.09)
        assert gain > 0.05

    def test_same_tier_no_gain(self, tiers):
        assert tier_power_gain(tiers[0], tiers[0], 1.09) == pytest.approx(0.0)
