"""Tests for the discrete p-state ladder and the ondemand governor."""

import pytest

from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.power.pstates import (
    DualCurveLadder,
    OndemandGovernor,
    PStateLadder,
)


@pytest.fixture(scope="module")
def curve():
    return DVFSCurve(I9_9900K_CURVE_POINTS)


@pytest.fixture
def ladder(curve):
    return PStateLadder(curve)


class TestPStateLadder:
    def test_rungs_cover_the_curve(self, ladder, curve):
        freqs = ladder.frequencies
        assert freqs[0] == pytest.approx(curve.f_min, abs=ladder.bin_hz)
        assert freqs[-1] == pytest.approx(curve.f_max, abs=ladder.bin_hz)

    def test_100mhz_granularity(self, ladder):
        freqs = ladder.frequencies
        diffs = {round(b - a) for a, b in zip(freqs, freqs[1:])}
        assert diffs == {100_000_000}

    def test_i9_ladder_size(self, ladder):
        # 0.8 .. 5.0 GHz in 100 MHz bins: 43 rungs.
        assert ladder.n_states == 43

    def test_pstates_follow_the_curve(self, ladder, curve):
        p = ladder.pstate(ladder.nearest_index(4.0e9))
        assert p.voltage == pytest.approx(curve.voltage_at(p.frequency))

    def test_clamp(self, ladder):
        assert ladder.clamp(3.333e9) == pytest.approx(3.3e9)

    def test_invalid_bin(self, curve):
        with pytest.raises(ValueError):
            PStateLadder(curve, bin_hz=0)


class TestOndemandGovernor:
    def test_starts_at_top(self, ladder):
        gov = OndemandGovernor(ladder)
        assert gov.current.frequency == ladder.frequencies[-1]

    def test_high_load_jumps_to_max(self, ladder):
        gov = OndemandGovernor(ladder)
        gov.sample(0.2)
        assert gov.sample(0.95).frequency == ladder.frequencies[-1]

    def test_low_load_steps_down(self, ladder):
        gov = OndemandGovernor(ladder)
        p = gov.sample(0.1)
        assert p.frequency < ladder.frequencies[-1] * 0.5

    def test_frequency_monotone_in_load(self, ladder):
        gov = OndemandGovernor(ladder)
        freqs = [gov.sample(u).frequency for u in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert freqs == sorted(freqs)

    def test_profile_walk(self, ladder):
        gov = OndemandGovernor(ladder)
        states = gov.run_profile([0.9, 0.1, 0.9])
        assert states[0].frequency > states[1].frequency
        assert states[2].frequency == states[0].frequency

    def test_validation(self, ladder):
        with pytest.raises(ValueError):
            OndemandGovernor(ladder, up_threshold=0.0)
        gov = OndemandGovernor(ladder)
        with pytest.raises(ValueError):
            gov.sample(1.5)


class TestDualCurveLadder:
    def test_same_rungs_lower_volts(self, curve):
        dual = DualCurveLadder.from_curve(curve, -0.097)
        assert (dual.efficient.frequencies
                == dual.conservative.frequencies)
        for i in (0, 10, 42):
            assert (dual.operating_point(i, efficient=True).voltage
                    < dual.operating_point(i, efficient=False).voltage)

    def test_power_saving_grows_toward_low_rungs(self, curve):
        # A fixed offset is relatively larger at low voltage: the saving
        # fraction is biggest at the bottom of the ladder.
        dual = DualCurveLadder.from_curve(curve, -0.097)
        assert dual.power_saving_at(0) > dual.power_saving_at(42)

    def test_saving_magnitude(self, curve):
        dual = DualCurveLadder.from_curve(curve, -0.097)
        top = dual.power_saving_at(42)
        assert 0.10 < top < 0.25  # ~16 % dynamic at the top rung

    def test_needs_negative_offset(self, curve):
        with pytest.raises(ValueError):
            DualCurveLadder.from_curve(curve, 0.05)
