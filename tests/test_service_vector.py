"""Vectorized batch dispatch in the service worker tier.

``execute_batch`` must dispatch same-trace request groups — same
``(cpu, workload, seed, n_cores)`` — through one
:func:`repro.core.batchsim.simulate_sweep` call with payloads
bit-identical to the per-request path, fall back to per-request
isolation when a group fails, and leave the fault-injection hooks on
the individual path.  The integration tests drive the whole service
with ``share_traces`` on and check the store's lifecycle brackets the
run.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.service.request import PRIORITY_BULK, SimRequest
from repro.service.server import ServiceConfig, SimulationService
from repro.service.workers import execute_batch, execute_request
from repro.workloads.tracestore import ENV_VAR


def _req(**overrides) -> dict:
    base = {"cpu": "C", "workload": "557.xz", "strategy": "fV",
            "voltage_offset": -0.097, "seed": 0, "n_cores": 1}
    base.update(overrides)
    return base


class TestExecuteBatchGrouping:
    def test_group_payloads_match_per_request_path(self):
        requests = [
            _req(),
            _req(voltage_offset=-0.08),
            _req(strategy="e"),
            _req(strategy="V"),
        ]
        outcomes = execute_batch(requests)
        for req, outcome in zip(requests, outcomes):
            reference = execute_request(req)
            assert outcome["status"] == "ok", outcome["error"]
            assert outcome["payload"] == reference["payload"]
            assert outcome["vectorized"] is True
            assert outcome["group_width"] == len(requests)

    def test_different_seeds_split_groups(self):
        outcomes = execute_batch([_req(seed=0), _req(seed=1)])
        assert all(o["status"] == "ok" for o in outcomes)
        assert all(o["group_width"] == 1 for o in outcomes)
        # Different trace seeds really produce different answers.
        assert outcomes[0]["payload"] != outcomes[1]["payload"]

    def test_order_is_preserved_across_groups(self):
        requests = [_req(seed=0), _req(seed=1), _req(seed=0,
                                                     voltage_offset=-0.05)]
        outcomes = execute_batch(requests)
        for req, outcome in zip(requests, outcomes):
            payload = outcome["payload"]
            assert payload["voltage_offset"] == req["voltage_offset"]

    def test_hooks_stay_on_the_per_request_path(self, tmp_path):
        outcomes = execute_batch([
            _req(workload="__sleep__:0.01"),
            _req(),
        ])
        assert outcomes[0]["status"] == "ok"
        assert "vectorized" not in outcomes[0]
        assert outcomes[1]["vectorized"] is True

    def test_group_failure_falls_back_to_isolation(self):
        # voltage_offset == 0 passes request validation but the sweep
        # kernel rejects it, poisoning the group; the fallback must
        # answer the good sibling and fail only the bad request.
        outcomes = execute_batch([_req(), _req(voltage_offset=0.0)])
        assert outcomes[0]["status"] == "ok"
        assert "vectorized" not in outcomes[0]
        assert outcomes[1]["status"] == "failed"
        assert outcomes[1]["error"]

    def test_malformed_request_does_not_poison_batch(self):
        outcomes = execute_batch([
            {"cpu": "C"},  # missing everything else
            _req(),
        ])
        assert outcomes[0]["status"] == "failed"
        assert outcomes[1]["status"] == "ok"

    def test_empty_batch(self):
        assert execute_batch([]) == []


class TestServiceShareTraces:
    @pytest.fixture(autouse=True)
    def no_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)

    def test_store_brackets_the_run(self):
        async def scenario():
            config = ServiceConfig(use_processes=False, n_shards=1,
                                   workers_per_shard=2, max_batch_size=8,
                                   batch_window_s=0.02,
                                   share_traces=True)
            service = SimulationService(config)
            await service.start()
            assert ENV_VAR in os.environ
            root = os.environ[ENV_VAR]
            requests = [SimRequest("C", "557.xz", strategy="fV",
                                   voltage_offset=-0.097 + 0.001 * i,
                                   priority=PRIORITY_BULK)
                        for i in range(6)]
            responses = await asyncio.gather(
                *[service.submit(q) for q in requests])
            await service.stop()
            return root, responses

        root, responses = asyncio.run(scenario())
        assert all(r.ok for r in responses)
        # Same workload/seed, six offsets: six distinct durations.
        durations = {r.payload["duration_s"] for r in responses}
        assert len(durations) == 6
        # stop() tore the store down: env cleared, directory gone.
        assert ENV_VAR not in os.environ
        assert not os.path.isdir(root)

    def test_share_traces_off_touches_no_env(self):
        async def scenario():
            async with SimulationService(ServiceConfig(
                    use_processes=False, n_shards=1,
                    workers_per_shard=1)) as service:
                response = await service.submit(SimRequest("C", "557.xz"))
            return response

        response = asyncio.run(scenario())
        assert response.ok
        assert ENV_VAR not in os.environ
