"""SLO burn-rate alerting and the flight recorder (``repro.obs.slo``)."""

from __future__ import annotations

import pytest

from repro.obs.slo import (
    SLO,
    BurnRatePolicy,
    FlightRecorder,
    SLOMonitor,
)
from repro.obs.timeseries import MetricsScraper
from repro.testkit.clock import FakeClock

from tests.test_obs_timeseries import hist, snap

#: Compressed two-window policy: 5s fast, 60s slow.
POLICY = BurnRatePolicy(fast_window_s=5.0, slow_window_s=60.0)


@pytest.fixture
def clock():
    return FakeClock(start=0.0)


@pytest.fixture
def scraper(clock):
    return MetricsScraper(interval_s=1.0, capacity=128, clock=clock)


def latency_monitor(scraper, clock, flight=None, objective=0.95,
                    threshold=0.1):
    return SLOMonitor(
        scraper,
        slos=[SLO(name="latency", objective=objective,
                  latency_threshold_s=threshold)],
        policy=POLICY, flight=flight, clock=clock)


class TestSLOValidation:
    def test_objective_must_be_fractional(self):
        with pytest.raises(ValueError):
            SLO(name="bad", objective=1.0)
        with pytest.raises(ValueError):
            SLO(name="bad", objective=0.0)

    def test_latency_threshold_positive(self):
        with pytest.raises(ValueError):
            SLO(name="bad", objective=0.99, latency_threshold_s=0.0)

    def test_duplicate_slo_names_rejected(self, scraper, clock):
        slos = [SLO(name="x", objective=0.9), SLO(name="x", objective=0.5)]
        with pytest.raises(ValueError):
            SLOMonitor(scraper, slos=slos, clock=clock)

    def test_budget(self):
        assert SLO(name="a", objective=0.95).budget == pytest.approx(0.05)


class TestLatencyBurn:
    def test_fires_under_injected_latency_then_resolves(self, scraper,
                                                        clock):
        monitor = latency_monitor(scraper, clock)
        # t=0: baseline.
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 0, 0])}))
        clock.advance(1.0)
        # t=1: every request breached the 0.1s threshold -> error rate
        # 1.0, burn 1.0/0.05 = 20 over both windows.
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 20, 0])}))
        changed = monitor.evaluate()
        assert [a.slo for a in changed] == ["latency"]
        assert changed[0].firing
        assert changed[0].fast_burn == pytest.approx(20.0)
        assert monitor.firing
        # Fast traffic rolls the slow burst out of the 5s fast window.
        clock.advance(6.0)
        scraper.ingest(snap(histograms={"latency_s": hist([50, 0, 20, 0])}))
        resolved = monitor.evaluate()
        assert resolved and not resolved[0].firing
        assert not monitor.firing
        assert resolved[0].resolved_at_s == pytest.approx(7.0)

    def test_needs_both_windows_hot(self, scraper, clock):
        # The slow window saw mostly-good history: slow burn stays low,
        # so a hot fast window alone must not page.
        monitor = latency_monitor(scraper, clock)
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 0, 0])}))
        clock.advance(50.0)
        scraper.ingest(snap(histograms={"latency_s": hist([980, 0, 0, 0])}))
        clock.advance(4.0)
        scraper.ingest(snap(histograms={"latency_s": hist([980, 0, 20, 0])}))
        assert monitor.evaluate() == []
        assert not monitor.firing

    def test_no_traffic_keeps_previous_state(self, scraper, clock):
        monitor = latency_monitor(scraper, clock)
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 0, 0])}))
        clock.advance(1.0)
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 9, 0])}))
        assert monitor.evaluate()
        # Silence: identical snapshot, nothing in the window.
        clock.advance(6.0)
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 9, 0])}))
        assert monitor.evaluate() == []
        assert monitor.firing  # silence is not evidence of health

    def test_peak_fast_burn_tracked_while_firing(self, scraper, clock):
        monitor = latency_monitor(scraper, clock)
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 0, 0])}))
        clock.advance(1.0)
        scraper.ingest(snap(histograms={"latency_s": hist([5, 0, 15, 0])}))
        alert = monitor.evaluate()[0]
        first_burn = alert.fast_burn
        clock.advance(1.0)
        scraper.ingest(snap(histograms={"latency_s": hist([5, 0, 40, 0])}))
        monitor.evaluate()
        assert alert.fast_burn > first_burn


class TestAvailabilityBurn:
    def test_fires_on_failed_fraction(self, scraper, clock):
        monitor = SLOMonitor(
            scraper, slos=[SLO(name="avail", objective=0.95)],
            policy=POLICY, clock=clock)
        scraper.ingest(snap(counters={"requests_completed": 0,
                                      "requests_failed": 0}))
        clock.advance(1.0)
        # 30 of 40 finished badly: error rate 0.75, burn 0.75/0.05 = 15
        # over both windows -> past the 14.4 fast and 6.0 slow bars.
        scraper.ingest(snap(counters={"requests_completed": 10,
                                      "requests_failed": 25,
                                      "requests_timed_out": 5}))
        alert = monitor.evaluate()[0]
        assert alert.firing
        assert alert.fast_burn == pytest.approx(15.0)

    def test_error_rate_none_without_traffic(self, scraper, clock):
        monitor = SLOMonitor(
            scraper, slos=[SLO(name="avail", objective=0.9)],
            policy=POLICY, clock=clock)
        scraper.ingest(snap(counters={"requests_completed": 5}))
        clock.advance(1.0)
        scraper.ingest(snap(counters={"requests_completed": 5}))
        assert monitor.burn_rate(monitor.slos[0], 5.0) is None


class TestExemplars:
    def test_alert_copies_flight_exemplars(self, scraper, clock):
        flight = FlightRecorder()
        flight.record("aaaa", 0.5, "ok")
        flight.record("bbbb", 0.2, "failed")
        monitor = latency_monitor(scraper, clock, flight=flight)
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 0, 0])}))
        clock.advance(1.0)
        scraper.ingest(snap(histograms={"latency_s": hist([0, 0, 9, 0])}))
        alert = monitor.evaluate()[0]
        # Failures outrank slow successes in the exemplar list.
        assert alert.exemplar_trace_ids[0] == "bbbb"
        assert "aaaa" in alert.exemplar_trace_ids
        assert alert.to_json_dict()["exemplar_trace_ids"] == \
            alert.exemplar_trace_ids


class TestFlightRecorder:
    def test_keeps_n_slowest(self):
        flight = FlightRecorder(n_slowest=3)
        for i, latency in enumerate([0.1, 0.9, 0.2, 0.8, 0.3]):
            flight.record(f"t{i}", latency, "ok")
        assert [e["latency_s"] for e in flight.slowest()] == [0.9, 0.8, 0.3]

    def test_failures_ring_is_bounded_and_recent_first(self):
        flight = FlightRecorder(n_failures=2)
        for i in range(4):
            flight.record(f"f{i}", 0.01, "failed")
        assert [e["trace_id"] for e in flight.failures()] == ["f3", "f2"]

    def test_untraced_requests_are_ignored(self):
        flight = FlightRecorder()
        flight.record(None, 9.9, "failed")
        flight.record("", 9.9, "failed")
        assert flight.to_json_dict() == {"slowest": [], "failures": []}

    def test_detail_fields_carried(self):
        flight = FlightRecorder()
        flight.record("abcd", 0.1, "ok", source="cache", node="node-1")
        assert flight.slowest()[0]["node"] == "node-1"

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(n_slowest=0)


class TestMonitorState:
    def test_state_shape_for_dashboard(self, scraper, clock):
        monitor = latency_monitor(scraper, clock)
        state = monitor.state()
        assert state["slos"][0]["kind"] == "latency"
        assert state["policy"]["fast_window_s"] == 5.0
        assert state["alerts"] == []
