"""Unit tests for aging/temperature guardbands and SUIT's budget."""

import pytest

from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.power.guardband import (
    INSTRUCTION_VARIATION_V,
    AgingModel,
    GuardbandBudget,
    TemperatureGuardband,
)


@pytest.fixture
def curve():
    return DVFSCurve(I9_9900K_CURVE_POINTS)


class TestAgingModel:
    def test_full_lifetime_worst_case(self):
        aging = AgingModel()
        assert aging.degradation(10.0, 100.0) == pytest.approx(0.15)

    def test_degradation_grows_sublinearly_with_time(self):
        aging = AgingModel()
        # Square-root law: half the lifetime -> ~71 % of the degradation.
        ratio = aging.degradation(5.0, 100.0) / aging.degradation(10.0, 100.0)
        assert ratio == pytest.approx(0.5 ** 0.5, abs=0.01)

    def test_cooler_means_less_aging(self):
        aging = AgingModel()
        assert aging.degradation(10.0, 60.0) < aging.degradation(10.0, 100.0)

    def test_no_time_no_aging(self):
        assert AgingModel().degradation(0.0) == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            AgingModel().degradation(-1.0)

    def test_guardband_at_5ghz_is_137mv(self, curve):
        # Paper section 5.6: 5 GHz * 15 % * 183 mV/GHz = 137 mV.
        aging = AgingModel()
        assert aging.guardband_voltage(curve, 5e9) == pytest.approx(0.137, abs=0.003)

    def test_guardband_fraction_is_about_12_percent(self, curve):
        aging = AgingModel()
        assert aging.guardband_fraction(curve, 5e9) == pytest.approx(0.12, abs=0.01)


class TestTemperatureGuardband:
    def test_paper_anchor_points(self):
        gb = TemperatureGuardband()
        assert gb.max_undervolt(50.0) == pytest.approx(-0.090)
        assert gb.max_undervolt(88.0) == pytest.approx(-0.055)

    def test_interpolation_monotone(self):
        # Hotter cores tolerate less undervolt: the offset shrinks
        # (moves toward zero) as temperature rises.
        gb = TemperatureGuardband()
        assert gb.max_undervolt(60.0) > gb.max_undervolt(50.0)
        assert gb.max_undervolt(70.0) < gb.max_undervolt(88.0)
        assert gb.max_undervolt(70.0) < 0

    def test_guardband_size_35mv(self):
        assert TemperatureGuardband().guardband_voltage() == pytest.approx(0.035)


class TestGuardbandBudget:
    def test_default_is_minus_70mv(self):
        assert GuardbandBudget().offset() == pytest.approx(-INSTRUCTION_VARIATION_V)

    def test_combined_is_minus_97mv(self):
        # Paper section 3.1: -70 mV plus 20 % of the 137 mV aging band.
        budget = GuardbandBudget(aging_guardband_v=0.137, aging_fraction=0.20)
        assert budget.offset() == pytest.approx(-0.0974, abs=1e-4)

    def test_offsets_always_negative(self):
        assert GuardbandBudget(aging_fraction=1.0).offset() < 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            GuardbandBudget(aging_fraction=1.5)
        with pytest.raises(ValueError):
            GuardbandBudget(instruction_variation_v=-0.01)
