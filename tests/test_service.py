"""Unit tests for the service building blocks.

Covers the request model (canonical identity, validation, wire
round-trips), the metrics histograms, the deadline-aware scheduler
(ordering, admission control/backpressure) and the micro-batcher
(compatibility grouping, occupancy cap, interactive bypass).
"""

import asyncio
import math

import pytest

from repro.service import (
    AdmissionError,
    Batch,
    DeadlineScheduler,
    Histogram,
    InvalidRequestError,
    MicroBatcher,
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    ScheduledEntry,
    ServiceMetrics,
    SimRequest,
    SimResponse,
)
from repro.service.scheduler import absolute_deadline
from repro.testkit.clock import FakeClock


class _StubFuture:
    """Future stand-in for scheduler tests that never resolve entries."""

    def done(self):
        return True


def _entry(request, key="k"):
    return ScheduledEntry(request=request, future=_StubFuture(),
                          key=key, due=absolute_deadline(request))


class TestSimRequest:
    def test_canonical_key_stable(self):
        a = SimRequest("C", "557.xz", seed=3)
        b = SimRequest("C", "557.xz", seed=3)
        assert a.canonical_key() == b.canonical_key()

    def test_each_identity_field_changes_key(self):
        base = SimRequest("C", "557.xz")
        variants = [
            SimRequest("A", "557.xz"),
            SimRequest("C", "502.gcc"),
            SimRequest("C", "557.xz", strategy="f"),
            SimRequest("C", "557.xz", voltage_offset=-0.05),
            SimRequest("C", "557.xz", seed=1),
            SimRequest("C", "557.xz", n_cores=2),
        ]
        keys = {base.canonical_key()} | {v.canonical_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_scheduling_hints_do_not_change_identity(self):
        a = SimRequest("C", "557.xz", priority=PRIORITY_INTERACTIVE,
                       deadline_s=0.5)
        b = SimRequest("C", "557.xz", priority=PRIORITY_BULK)
        assert a.canonical_key() == b.canonical_key()

    def test_shard_key_groups_cpu_and_strategy(self):
        assert SimRequest("C", "557.xz").shard_key == \
            SimRequest("C", "502.gcc", voltage_offset=-0.05).shard_key
        assert SimRequest("C", "557.xz").shard_key != \
            SimRequest("A", "557.xz").shard_key
        assert SimRequest("C", "557.xz").shard_key != \
            SimRequest("C", "557.xz", strategy="f").shard_key

    @pytest.mark.parametrize("kwargs", [
        {"cpu": ""},
        {"workload": ""},
        {"strategy": "bogus"},
        {"voltage_offset": 0.1},
        {"seed": -1},
        {"n_cores": 0},
        {"deadline_s": 0.0},
        {"deadline_s": -2.0},
    ])
    def test_validate_rejects(self, kwargs):
        base = {"cpu": "C", "workload": "557.xz"}
        base.update(kwargs)
        with pytest.raises(InvalidRequestError):
            SimRequest(**base).validate()

    def test_wire_roundtrip(self):
        request = SimRequest("A", "nginx", strategy="f",
                             voltage_offset=-0.07, seed=9, n_cores=2,
                             priority=PRIORITY_BULK, deadline_s=1.5)
        assert SimRequest.from_dict(request.to_dict()) == request

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidRequestError):
            SimRequest.from_dict({"cpu": "C", "workload": "557.xz",
                                  "bogus": 1})

    def test_response_wire_roundtrip(self):
        response = SimResponse(request=SimRequest("C", "557.xz"),
                               status="ok", payload={"x": 1},
                               source="cache", latency_s=0.25, retries=1)
        back = SimResponse.from_dict(response.to_dict())
        assert back == response
        assert back.ok


class TestHistogram:
    def test_percentiles_bracket_observations(self):
        hist = Histogram([0.001, 0.01, 0.1, 1.0])
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.percentile(0.5) == 0.01
        assert hist.percentile(0.99) == 0.01
        assert hist.percentile(1.0) == 1.0
        assert hist.n == 100

    def test_overflow_reports_max_seen(self):
        hist = Histogram([1.0])
        hist.observe(42.0)
        assert hist.percentile(0.99) == 42.0

    def test_empty(self):
        assert Histogram([1.0]).percentile(0.5) is None

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])


class TestServiceMetrics:
    def test_counters_and_snapshot_schema(self):
        metrics = ServiceMetrics()
        metrics.inc("requests_submitted")
        metrics.inc("requests_submitted", 2)
        metrics.set_gauge("queue_depth", 7)
        metrics.observe_latency(0.02)
        metrics.observe_batch(4)
        snap = metrics.snapshot()
        assert snap["counters"]["requests_submitted"] == 3
        assert snap["gauges"]["queue_depth"] == 7
        assert snap["histograms"]["latency_s"]["n"] == 1
        assert snap["histograms"]["batch_occupancy"]["p50"] == 4


class TestDeadlineScheduler:
    def test_priority_orders_first(self):
        async def scenario():
            sched = DeadlineScheduler(max_depth=8)
            sched.push(_entry(SimRequest("C", "a", priority=PRIORITY_BULK)))
            sched.push(_entry(SimRequest("C", "b",
                                         priority=PRIORITY_INTERACTIVE)))
            sched.push(_entry(SimRequest("C", "c", priority=5)))
            order = [(await sched.pop()).request.workload for _ in range(3)]
            return order

        assert asyncio.run(scenario()) == ["b", "c", "a"]

    def test_deadline_orders_within_priority(self):
        async def scenario():
            sched = DeadlineScheduler(max_depth=8)
            sched.push(_entry(SimRequest("C", "slow", deadline_s=60.0)))
            sched.push(_entry(SimRequest("C", "urgent", deadline_s=0.5)))
            sched.push(_entry(SimRequest("C", "none")))  # no deadline: last
            return [(await sched.pop()).request.workload for _ in range(3)]

        assert asyncio.run(scenario()) == ["urgent", "slow", "none"]

    def test_fifo_within_equal_priority_and_deadline(self):
        async def scenario():
            sched = DeadlineScheduler(max_depth=8)
            for name in ("first", "second", "third"):
                sched.push(_entry(SimRequest("C", name)))
            return [(await sched.pop()).request.workload for _ in range(3)]

        assert asyncio.run(scenario()) == ["first", "second", "third"]

    def test_admission_bound_raises_with_retry_after(self):
        sched = DeadlineScheduler(max_depth=2)
        sched.push(_entry(SimRequest("C", "a")))
        sched.push(_entry(SimRequest("C", "b")))
        with pytest.raises(AdmissionError) as excinfo:
            sched.push(_entry(SimRequest("C", "c")))
        assert excinfo.value.depth == 2
        assert excinfo.value.retry_after_s > 0
        assert sched.depth == 2

    def test_pop_waits_for_push(self):
        async def scenario():
            sched = DeadlineScheduler(max_depth=4)
            pop = asyncio.get_running_loop().create_task(sched.pop())
            # Let pop() block on the empty queue, then wake it: no real
            # sleeps, just explicit event-loop turns.
            for _ in range(5):
                await asyncio.sleep(0)
            assert not pop.done()
            sched.push(_entry(SimRequest("C", "late")))
            entry = await asyncio.wait_for(pop, timeout=2.0)
            return entry.request.workload

        assert asyncio.run(scenario()) == "late"

    def test_take_compatible_respects_shard_and_limit(self):
        sched = DeadlineScheduler(max_depth=16)
        for i in range(3):
            sched.push(_entry(SimRequest("C", f"c{i}")))
        sched.push(_entry(SimRequest("A", "a0")))
        taken = sched.take_compatible(SimRequest("C", "x").shard_key, 2)
        assert [e.request.workload for e in taken] == ["c0", "c1"]
        assert sched.depth == 2  # c2 and a0 remain

    def test_drain_empties_queue(self):
        sched = DeadlineScheduler(max_depth=4)
        sched.push(_entry(SimRequest("C", "a")))
        sched.push(_entry(SimRequest("C", "b")))
        drained = sched.drain()
        assert len(drained) == 2
        assert sched.depth == 0

    def test_absolute_deadline(self):
        assert absolute_deadline(SimRequest("C", "a")) == math.inf
        assert absolute_deadline(SimRequest("C", "a", deadline_s=2.0),
                                 now=100.0) == 102.0


class TestMicroBatcher:
    def test_groups_compatible_requests(self):
        async def scenario():
            sched = DeadlineScheduler(max_depth=16)
            batcher = MicroBatcher(sched, max_batch_size=8, window_s=0.0)
            for i in range(3):
                sched.push(_entry(SimRequest("C", f"w{i}")))
            sched.push(_entry(SimRequest("A", "other")))
            batch = await batcher.next_batch()
            return batch

        batch = asyncio.run(scenario())
        assert isinstance(batch, Batch)
        assert batch.occupancy == 3
        assert batch.shard_key == SimRequest("C", "x").shard_key

    def test_respects_max_batch_size(self):
        async def scenario():
            sched = DeadlineScheduler(max_depth=16)
            batcher = MicroBatcher(sched, max_batch_size=2, window_s=0.0)
            for i in range(5):
                sched.push(_entry(SimRequest("C", f"w{i}")))
            first = await batcher.next_batch()
            second = await batcher.next_batch()
            return first.occupancy, second.occupancy, sched.depth

        assert asyncio.run(scenario()) == (2, 2, 1)

    def test_window_accumulates_late_companions(self):
        """Virtual-time port of the flakiest timing test: the batcher
        holds a 5 s window open; the companion arrives while it waits;
        the whole thing runs in microseconds of real time."""
        async def scenario():
            clock = FakeClock(auto_advance=False)
            sched = DeadlineScheduler(max_depth=16)
            batcher = MicroBatcher(sched, max_batch_size=4, window_s=5.0,
                                   clock=clock)
            sched.push(_entry(SimRequest("C", "early")))
            task = asyncio.get_running_loop().create_task(
                batcher.next_batch())
            for _ in range(10):  # let the batcher enter its window
                await asyncio.sleep(0)
            assert clock.sleep_calls >= 1  # it is actually waiting
            sched.push(_entry(SimRequest("C", "late")))
            clock.advance(10.0)  # the window elapses instantly
            batch = await asyncio.wait_for(task, timeout=2.0)
            return [e.request.workload for e in batch.entries]

        assert asyncio.run(scenario()) == ["early", "late"]

    def test_window_closes_without_companions(self):
        """A lonely entry dispatches once the window elapses — in
        virtual time, so the test never actually waits."""
        async def scenario():
            clock = FakeClock()
            sched = DeadlineScheduler(max_depth=16)
            batcher = MicroBatcher(sched, max_batch_size=4, window_s=5.0,
                                   clock=clock)
            start = clock.monotonic()
            sched.push(_entry(SimRequest("C", "solo")))
            batch = await batcher.next_batch()
            return batch.occupancy, clock.monotonic() - start, \
                clock.sleep_calls

        occupancy, elapsed, sleeps = asyncio.run(scenario())
        assert occupancy == 1
        assert elapsed >= 5.0  # the full window, virtually
        assert sleeps >= 1

    def test_interactive_skips_window(self):
        async def scenario():
            clock = FakeClock(auto_advance=False)
            sched = DeadlineScheduler(max_depth=16)
            batcher = MicroBatcher(sched, max_batch_size=4, window_s=5.0,
                                   clock=clock)
            sched.push(_entry(SimRequest(
                "C", "urgent", priority=PRIORITY_INTERACTIVE)))
            # With the non-advancing clock a held window would hang
            # forever; the interactive bypass must never sleep at all.
            batch = await asyncio.wait_for(batcher.next_batch(), timeout=1.0)
            return batch.occupancy, clock.sleep_calls

        assert asyncio.run(scenario()) == (1, 0)

    def test_rejects_bad_config(self):
        sched = DeadlineScheduler(max_depth=4)
        with pytest.raises(ValueError):
            MicroBatcher(sched, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(sched, window_s=-1.0)


class TestFakeClock:
    def test_monotonic_starts_at_start(self):
        assert FakeClock(start=50.0).monotonic() == 50.0

    def test_advance_moves_time_forward_only(self):
        clock = FakeClock(start=0.0)
        clock.advance(2.5)
        assert clock.monotonic() == 2.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_auto_sleep_advances_and_counts(self):
        async def scenario():
            clock = FakeClock(start=0.0)
            await clock.sleep(3.0)
            await clock.sleep(1.0)
            return clock.monotonic(), clock.sleep_calls

        assert asyncio.run(scenario()) == (4.0, 2)

    def test_negative_sleep_is_a_noop_in_time(self):
        async def scenario():
            clock = FakeClock(start=10.0)
            await clock.sleep(-5.0)
            return clock.monotonic()

        assert asyncio.run(scenario()) == 10.0

    def test_manual_sleep_waits_for_advance(self):
        async def scenario():
            clock = FakeClock(start=0.0, auto_advance=False)
            sleeper = asyncio.get_running_loop().create_task(
                clock.sleep(5.0))
            for _ in range(5):
                await asyncio.sleep(0)
            assert not sleeper.done()  # held until the test steps time
            clock.advance(5.0)
            await asyncio.wait_for(sleeper, timeout=2.0)
            return clock.monotonic()

        assert asyncio.run(scenario()) == 5.0
