"""Tests for the optional branch/memory microarchitecture models."""

import numpy as np
import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.config import GEM5_REFERENCE_CONFIG
from repro.pipeline.generator import StreamSpec, generate_stream
from repro.pipeline.scoreboard import OutOfOrderCore
from repro.pipeline.uarch import BranchModel, MemoryModel


class TestMemoryModel:
    def test_mean_latency_between_extremes(self):
        mem = MemoryModel()
        assert mem.l1_latency < mem.mean_latency < mem.dram_latency

    def test_sample_values_are_hierarchy_levels(self, rng):
        mem = MemoryModel()
        levels = {mem.l1_latency, mem.l2_latency, mem.dram_latency}
        for _ in range(200):
            assert mem.sample_latency(rng) in levels

    def test_perfect_l1_always_hits(self, rng):
        mem = MemoryModel(l1_hit_rate=1.0)
        assert all(mem.sample_latency(rng) == mem.l1_latency
                   for _ in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(l1_hit_rate=1.5)
        with pytest.raises(ValueError):
            MemoryModel(l1_latency=20, l2_latency=10)


class TestBranchModel:
    def test_rate_zero_never_mispredicts(self, rng):
        model = BranchModel(mispredict_rate=0.0)
        assert not any(model.mispredicts(rng) for _ in range(100))

    def test_rate_one_always_mispredicts(self, rng):
        model = BranchModel(mispredict_rate=1.0)
        assert all(model.mispredicts(rng) for _ in range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchModel(mispredict_rate=2.0)
        with pytest.raises(ValueError):
            BranchModel(refill_cycles=-1)


class TestScoreboardWithUarch:
    def test_memory_misses_slow_the_core(self):
        stream = generate_stream(StreamSpec(n_instructions=8_000), seed=1)
        ideal = OutOfOrderCore(GEM5_REFERENCE_CONFIG).run(stream)
        realistic = OutOfOrderCore(
            GEM5_REFERENCE_CONFIG,
            memory=MemoryModel(l1_hit_rate=0.7, l2_hit_rate=0.5)).run(stream)
        assert realistic.cycles > ideal.cycles

    def test_mispredictions_slow_the_core(self):
        stream = generate_stream(StreamSpec(n_instructions=8_000), seed=2)
        ideal = OutOfOrderCore(GEM5_REFERENCE_CONFIG).run(stream)
        bubbly = OutOfOrderCore(
            GEM5_REFERENCE_CONFIG,
            branch=BranchModel(mispredict_rate=0.5)).run(stream)
        assert bubbly.cycles > ideal.cycles

    def test_fetch_barrier_orders_after_branch(self):
        # One always-mispredicted branch, then an independent ALU op:
        # the ALU op cannot issue before resolve + refill.
        stream = [Instruction(Opcode.BRANCH), Instruction(Opcode.ALU)]
        core = OutOfOrderCore(
            GEM5_REFERENCE_CONFIG,
            branch=BranchModel(mispredict_rate=1.0, refill_cycles=14))
        stats = core.run(stream)
        assert stats.cycles >= 1 + 14

    def test_deterministic_per_seed(self):
        stream = generate_stream(StreamSpec(n_instructions=4_000), seed=3)
        runs = [OutOfOrderCore(GEM5_REFERENCE_CONFIG,
                               memory=MemoryModel(),
                               branch=BranchModel(), seed=7).run(stream)
                for _ in range(2)]
        assert runs[0].cycles == runs[1].cycles

    def test_default_path_unchanged(self):
        # The opt-in models must not perturb the calibrated Fig 14 setup.
        stream = generate_stream(StreamSpec(n_instructions=4_000), seed=4)
        a = OutOfOrderCore(GEM5_REFERENCE_CONFIG).run(stream)
        b = OutOfOrderCore(GEM5_REFERENCE_CONFIG, memory=None,
                           branch=None).run(stream)
        assert a.cycles == b.cycles
