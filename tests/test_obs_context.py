"""Trace-context propagation, the fleet trace merge and the span-tree
assertions (``repro.obs.context``)."""

from __future__ import annotations

import pytest

from repro.obs.context import (
    TraceContext,
    assert_span_containment,
    merge_process_traces,
    new_span_id,
    new_trace_id,
    orphan_spans,
    span_index,
    span_tree,
    trace_ids_in,
)
from repro.obs.tracer import PHASE_COMPLETE, TRACK_SIM, TRACK_WALL


class TestTraceContext:
    def test_id_formats(self):
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8
        int(new_trace_id(), 16)  # hex

    def test_root_has_no_parent(self):
        ctx = TraceContext.root()
        assert ctx.parent_span is None
        assert ctx.trace_id and ctx.span_id

    def test_from_request_continues_the_trace(self):
        ctx = TraceContext.from_request("aa" * 8, "bb" * 4)
        assert ctx.trace_id == "aa" * 8
        assert ctx.parent_span == "bb" * 4
        assert ctx.span_id != "bb" * 4  # always a fresh span

    def test_from_request_mints_when_untraced(self):
        ctx = TraceContext.from_request(None, None)
        assert len(ctx.trace_id) == 16
        assert ctx.parent_span is None

    def test_child_parents_on_this_span(self):
        parent = TraceContext.root()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_span == parent.span_id
        assert child.span_id != parent.span_id

    def test_args_payload(self):
        ctx = TraceContext(trace_id="t" * 16, span_id="s" * 8,
                           parent_span="p" * 8)
        args = ctx.args(proc="node-0", status="ok")
        assert args == {"trace_id": "t" * 16, "span_id": "s" * 8,
                        "parent_span": "p" * 8, "proc": "node-0",
                        "status": "ok"}
        # The root form omits parent_span entirely.
        assert "parent_span" not in TraceContext.root().args()


def wall_event(name, ts_s, dur_s, trace_id, span_id, parent=None,
               proc=None, ph=PHASE_COMPLETE, pid=TRACK_WALL):
    args = {"trace_id": trace_id, "span_id": span_id}
    if parent is not None:
        args["parent_span"] = parent
    if proc is not None:
        args["proc"] = proc
    event = {"name": name, "ph": ph, "ts": ts_s * 1e6, "pid": pid,
             "tid": 0, "cat": "test", "args": args}
    if ph == PHASE_COMPLETE:
        event["dur"] = dur_s * 1e6
    return event


TRACE = "f" * 16


def two_process_fleet():
    """A gateway span and, in a process started 0.4s later, its child.

    In local clocks the child *precedes* its parent (0.2s vs 0.5s);
    only rebasing onto the shared wall-clock origin nests it correctly
    (absolute 1000.6s inside [1000.5, 1001.5]).
    """
    gateway = {"name": "gateway", "origin_unix_s": 1000.0,
               "tracer_id": "g" * 16,
               "events": [wall_event("gateway.submit", 0.5, 1.0, TRACE,
                                     "aaaa0000", proc="gateway")]}
    node = {"name": "node-0", "origin_unix_s": 1000.4,
            "tracer_id": "n" * 16,
            "events": [wall_event("service.submit", 0.2, 0.5, TRACE,
                                  "bbbb0000", parent="aaaa0000",
                                  proc="node-0")]}
    return gateway, node


class TestMergeProcessTraces:
    def test_rebases_onto_shared_origin(self):
        gateway, node = two_process_fleet()
        merged = merge_process_traces([gateway, node],
                                      base_origin_unix_s=1000.0)
        spans = span_index(merged["traceEvents"], TRACE)
        assert spans["aaaa0000"]["ts"] == pytest.approx(0.5e6)
        assert spans["bbbb0000"]["ts"] == pytest.approx(0.6e6)

    def test_containment_regression_requires_the_rebase(self):
        # The satellite fix: naively concatenating per-process events
        # (what the fleet trace verb used to do) breaks parent/child
        # nesting across process boundaries; the merged view holds it.
        gateway, node = two_process_fleet()
        naive = gateway["events"] + node["events"]
        with pytest.raises(AssertionError):
            assert_span_containment(naive, TRACE)
        merged = merge_process_traces([gateway, node],
                                      base_origin_unix_s=1000.0)
        assert assert_span_containment(merged["traceEvents"], TRACE) == 1

    def test_containment_slack_is_honoured(self):
        gateway, node = two_process_fleet()
        # Stretch the child 0.03s past its parent's end: within the
        # default 50ms skew slack, outside a tightened one.
        node["events"][0]["dur"] = 0.93e6
        merged = merge_process_traces([gateway, node],
                                      base_origin_unix_s=1000.0)
        assert assert_span_containment(merged["traceEvents"], TRACE) == 1
        with pytest.raises(AssertionError):
            assert_span_containment(merged["traceEvents"], TRACE,
                                    slack_us=1_000.0)

    def test_dedup_by_tracer_id(self):
        # An in-process fleet answers the fan-out with the same global
        # tracer behind every node: merge each buffer exactly once.
        gateway, _ = two_process_fleet()
        twin = dict(gateway, name="node-0")
        merged = merge_process_traces([gateway, twin],
                                      base_origin_unix_s=1000.0)
        spans = [e for e in merged["traceEvents"]
                 if e.get("ph") == PHASE_COMPLETE]
        assert len(spans) == 1

    def test_lanes_grouped_by_args_proc(self):
        gateway, node = two_process_fleet()
        worker = wall_event("worker.execute", 0.3, 0.1, TRACE, "cccc0000",
                            parent="bbbb0000", proc="worker:w0")
        node["events"].append(worker)
        merged = merge_process_traces([gateway, node],
                                      base_origin_unix_s=1000.0)
        names = {e["args"]["name"] for e in merged["traceEvents"]
                 if e.get("ph") == "M"}
        assert names == {"gateway", "node-0", "worker:w0"}
        assert merged["otherData"]["n_processes"] == 3

    def test_sim_track_and_metadata_excluded(self):
        gateway, _ = two_process_fleet()
        gateway["events"].append(wall_event(
            "sim only", 0.1, 0.1, TRACE, "dddd0000", pid=TRACK_SIM))
        gateway["events"].append({"name": "process_name", "ph": "M",
                                  "pid": TRACK_WALL, "args": {}})
        merged = merge_process_traces([gateway],
                                      base_origin_unix_s=1000.0)
        spans = span_index(merged["traceEvents"])
        assert set(spans) == {"aaaa0000"}

    def test_missing_origin_falls_back_to_base(self):
        gateway, node = two_process_fleet()
        del node["origin_unix_s"]
        merged = merge_process_traces([gateway, node],
                                      base_origin_unix_s=1000.0)
        spans = span_index(merged["traceEvents"], TRACE)
        assert spans["bbbb0000"]["ts"] == pytest.approx(0.2e6)


class TestSpanAssertions:
    def test_trace_ids_in(self):
        events = [wall_event("a", 0, 0.1, "t1" * 8, "s1s1s1s1"),
                  wall_event("b", 0, 0.1, "t2" * 8, "s2s2s2s2")]
        assert trace_ids_in(events) == sorted(["t1" * 8, "t2" * 8])

    def test_span_index_skips_instants(self):
        events = [wall_event("span", 0, 0.1, TRACE, "aaaa0000"),
                  wall_event("marker", 0, 0, TRACE, "bbbb0000", ph="i")]
        assert set(span_index(events, TRACE)) == {"aaaa0000"}

    def test_tree_roots_children_orphans(self):
        events = [
            wall_event("root", 0.0, 1.0, TRACE, "aaaa0000"),
            wall_event("kid", 0.1, 0.5, TRACE, "bbbb0000",
                       parent="aaaa0000"),
            wall_event("lost", 0.2, 0.1, TRACE, "cccc0000",
                       parent="ffff9999"),
        ]
        tree = span_tree(events, TRACE)
        assert [e["name"] for e in tree["roots"]] == ["root"]
        assert [e["name"] for e in tree["children"]["aaaa0000"]] == ["kid"]
        assert [e["name"] for e in orphan_spans(events, TRACE)] == ["lost"]

    def test_other_traces_do_not_orphan(self):
        # A parent that lives in a different trace is a broken link;
        # one absent entirely from the event set likewise.  But spans
        # of *other* traces must not leak into this trace's tree.
        events = [wall_event("root", 0.0, 1.0, "a" * 16, "aaaa0000"),
                  wall_event("kid", 0.1, 0.5, "b" * 16, "bbbb0000",
                             parent="aaaa0000")]
        assert orphan_spans(events, "b" * 16)[0]["name"] == "kid"
        assert span_tree(events, "a" * 16)["children"] == {}
