"""Unit tests for the CMOS power model."""

import pytest

from repro.power.cmos import CmosPowerModel, dynamic_power, leakage_power


class TestDynamicPower:
    def test_formula(self):
        # P = C * V^2 * f
        assert dynamic_power(1e-9, 1.0, 1e9) == pytest.approx(1.0)
        assert dynamic_power(1e-9, 2.0, 1e9) == pytest.approx(4.0)

    def test_quadratic_in_voltage(self):
        base = dynamic_power(2e-9, 1.0, 3e9)
        assert dynamic_power(2e-9, 1.1, 3e9) / base == pytest.approx(1.21)

    def test_linear_in_frequency(self):
        base = dynamic_power(2e-9, 1.0, 3e9)
        assert dynamic_power(2e-9, 1.0, 6e9) / base == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dynamic_power(-1e-9, 1.0, 1e9)
        with pytest.raises(ValueError):
            dynamic_power(1e-9, -1.0, 1e9)


class TestLeakagePower:
    def test_linear(self):
        assert leakage_power(5.0, 1.0) == pytest.approx(5.0)
        assert leakage_power(5.0, 0.8) == pytest.approx(4.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            leakage_power(-1.0, 1.0)


class TestCmosPowerModel:
    def test_calibrated_hits_measured_point(self):
        model = CmosPowerModel.calibrated(4.5e9, 1.1, 95.0)
        assert model.power(4.5e9, 1.1) == pytest.approx(95.0)

    def test_calibrated_shares(self):
        model = CmosPowerModel.calibrated(
            4e9, 1.0, 100.0, dynamic_share=0.7, uncore_share=0.1)
        assert dynamic_power(model.c_eff, 1.0, 4e9) == pytest.approx(70.0)
        assert model.uncore_power == pytest.approx(10.0)
        assert leakage_power(model.leak_coeff, 1.0) == pytest.approx(20.0)

    def test_undervolting_reduces_power(self):
        model = CmosPowerModel.calibrated(4.5e9, 1.1, 95.0)
        assert model.power(4.5e9, 1.0) < model.power(4.5e9, 1.1)

    def test_power_ratio_baseline_is_one(self):
        model = CmosPowerModel.calibrated(4.5e9, 1.1, 95.0)
        assert model.power_ratio(4.5e9, 1.1, 4.5e9, 1.1) == pytest.approx(1.0)

    def test_power_ratio_quadratic_dominates(self):
        model = CmosPowerModel.calibrated(
            4.5e9, 1.1, 95.0, dynamic_share=1.0, uncore_share=0.0)
        ratio = model.power_ratio(4.5e9, 1.0, 4.5e9, 1.1)
        assert ratio == pytest.approx((1.0 / 1.1) ** 2)

    def test_uncore_floor_limits_savings(self):
        with_floor = CmosPowerModel.calibrated(
            4e9, 1.0, 100.0, dynamic_share=0.5, uncore_share=0.4)
        without = CmosPowerModel.calibrated(
            4e9, 1.0, 100.0, dynamic_share=0.9, uncore_share=0.0)
        assert (with_floor.power_ratio(4e9, 0.9, 4e9, 1.0)
                > without.power_ratio(4e9, 0.9, 4e9, 1.0))

    def test_invalid_shares_rejected(self):
        with pytest.raises(ValueError):
            CmosPowerModel.calibrated(4e9, 1.0, 100.0, dynamic_share=0.0)
        with pytest.raises(ValueError):
            CmosPowerModel.calibrated(4e9, 1.0, 100.0, dynamic_share=0.8,
                                      uncore_share=0.3)
