"""Unit tests for repro.isa: opcodes, specs, the faultable set."""

import pytest

from repro.isa import (
    FAULTABLE_OPCODES,
    SIMD_FAULTABLE_OPCODES,
    SPEC_TABLE,
    TABLE1_FAULT_COUNTS,
    Instruction,
    Opcode,
    PortClass,
    faultable_sorted_by_sensitivity,
    is_faultable,
    spec_for,
)
from repro.isa.faultable import TRAPPED_OPCODES


class TestSpecTable:
    def test_every_opcode_has_a_spec(self):
        for op in Opcode:
            assert spec_for(op).opcode is op

    def test_imul_is_three_cycles_fully_pipelined(self):
        spec = spec_for(Opcode.IMUL)
        assert spec.latency == 3
        assert spec.throughput == 1.0
        assert spec.port is PortClass.MUL

    def test_latencies_positive(self):
        for spec in SPEC_TABLE.values():
            assert spec.latency >= 1
            assert spec.throughput > 0

    def test_simd_flags(self):
        assert spec_for(Opcode.VOR).is_simd
        assert spec_for(Opcode.AESENC).is_simd
        assert not spec_for(Opcode.ALU).is_simd
        assert not spec_for(Opcode.IMUL).is_simd

    def test_aesenc_on_crypto_port(self):
        assert spec_for(Opcode.AESENC).port is PortClass.CRYPTO
        assert spec_for(Opcode.VPCLMULQDQ).port is PortClass.CRYPTO


class TestFaultableSet:
    def test_table1_has_twelve_instructions(self):
        assert len(TABLE1_FAULT_COUNTS) == 12

    def test_faultable_set_matches_table1(self):
        assert FAULTABLE_OPCODES == frozenset(TABLE1_FAULT_COUNTS)

    def test_imul_has_most_faults(self):
        order = faultable_sorted_by_sensitivity()
        assert order[0] is Opcode.IMUL
        assert TABLE1_FAULT_COUNTS[Opcode.IMUL] == 79

    def test_vpaddq_has_fewest_faults(self):
        order = faultable_sorted_by_sensitivity()
        assert order[-1] is Opcode.VPADDQ
        assert TABLE1_FAULT_COUNTS[Opcode.VPADDQ] == 1

    def test_sensitivity_order_is_descending(self):
        order = faultable_sorted_by_sensitivity()
        counts = [TABLE1_FAULT_COUNTS[op] for op in order]
        assert counts == sorted(counts, reverse=True)

    def test_is_faultable(self):
        assert is_faultable(Opcode.IMUL)
        assert is_faultable(Opcode.AESENC)
        assert not is_faultable(Opcode.ALU)
        assert not is_faultable(Opcode.LOAD)

    def test_trapped_set_excludes_imul(self):
        assert Opcode.IMUL not in TRAPPED_OPCODES
        assert TRAPPED_OPCODES == SIMD_FAULTABLE_OPCODES
        assert TRAPPED_OPCODES < FAULTABLE_OPCODES

    def test_all_trapped_are_simd(self):
        for op in TRAPPED_OPCODES:
            assert spec_for(op).is_simd


class TestInstruction:
    def test_spec_accessors(self):
        instr = Instruction(Opcode.IMUL, sources=(0, 1))
        assert instr.latency == 3
        assert not instr.is_simd
        assert instr.sources == (0, 1)

    def test_default_fields(self):
        instr = Instruction(Opcode.ALU)
        assert instr.sources == ()
        assert instr.operands is None
