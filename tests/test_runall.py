"""Tests for the experiment runner and its summary output."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.runall import EXPERIMENT_MODULES, main, run_all, summarize


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        ids = set(EXPERIMENT_MODULES)
        for required in ("table1_faults", "table2_undervolting",
                         "table3_temperature", "table4_nosimd",
                         "table5_gem5_config", "table6_main",
                         "table7_parameters", "table8_nosimd_vs_suit",
                         "fig2_guardbands", "fig5_burst_detail",
                         "fig6_fv_timeline", "fig7_vlc_timeline",
                         "fig8_voltage_delay", "fig9_freq_delay_intel",
                         "fig10_freq_delay_amd", "fig11_xeon_pstate",
                         "fig12_undervolt_sweep", "fig13_dvfs_curves",
                         "fig14_imul_latency", "fig16_per_benchmark"):
            assert required in ids, required

    def test_no_duplicates(self):
        assert len(EXPERIMENT_MODULES) == len(set(EXPERIMENT_MODULES))

    def test_all_modules_importable_with_run(self):
        import importlib

        for name in EXPERIMENT_MODULES:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run), name


class TestRunAllSubset:
    def test_subset_run_and_summary(self, capsys):
        results = run_all(seed=0, fast=True,
                          only=["table3_temperature", "fig2_guardbands"])
        assert len(results) == 2
        assert all(isinstance(r, ExperimentResult) for r in results)
        text = summarize(results)
        assert "table3" in text and "fig2" in text
        assert "measured" in text

    def test_main_writes_summary(self, tmp_path, capsys):
        out = tmp_path / "summary.md"
        code = main(["--fast", "--only", "table3_temperature",
                     "--out", str(out)])
        assert code == 0
        assert "table3" in out.read_text()
