"""Unit tests for TSC/APERF/MPERF counters and DelaySpec."""

import numpy as np
import pytest

from repro.hardware.counters import CoreCounters, DelaySpec


class TestDelaySpec:
    def test_deterministic_when_sigma_zero(self, rng):
        spec = DelaySpec(10e-6, 0.0)
        assert spec.sample(rng) == 10e-6

    def test_samples_cluster_around_mean(self, rng):
        spec = DelaySpec(100e-6, 5e-6)
        samples = [spec.sample(rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(100e-6, rel=0.02)
        assert np.std(samples) == pytest.approx(5e-6, rel=0.25)

    def test_samples_clipped_positive(self, rng):
        spec = DelaySpec(1e-6, 100e-6)  # absurd sigma
        for _ in range(200):
            s = spec.sample(rng)
            assert 0.25e-6 <= s <= 4e-6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DelaySpec(-1.0)
        with pytest.raises(ValueError):
            DelaySpec(1.0, -1.0)


class TestCoreCounters:
    def test_tsc_always_ticks(self):
        c = CoreCounters(base_frequency=3e9)
        c.advance(1.0, frequency=4e9, stalled=True)
        assert c.tsc == pytest.approx(3e9)
        assert c.aperf == 0.0

    def test_aperf_tracks_actual_frequency(self):
        c = CoreCounters(base_frequency=3e9)
        c.advance(1.0, frequency=4e9)
        assert c.aperf == pytest.approx(4e9)
        assert c.mperf == pytest.approx(3e9)

    def test_effective_frequency(self):
        c = CoreCounters(base_frequency=3e9)
        c.advance(0.5, frequency=4e9)
        assert c.effective_frequency() == pytest.approx(4e9)

    def test_effective_frequency_windows_are_independent(self):
        c = CoreCounters(base_frequency=3e9)
        c.advance(0.5, frequency=4e9)
        c.effective_frequency()
        c.advance(0.5, frequency=2e9)
        assert c.effective_frequency() == pytest.approx(2e9)

    def test_effective_frequency_during_stall_is_base(self):
        c = CoreCounters(base_frequency=3e9)
        c.effective_frequency()
        c.advance(0.1, frequency=4e9, stalled=True)
        assert c.effective_frequency() == pytest.approx(3e9)

    def test_mixed_interval_averages(self):
        c = CoreCounters(base_frequency=3e9)
        c.advance(1.0, frequency=4e9)
        c.advance(1.0, frequency=2e9)
        assert c.effective_frequency() == pytest.approx(3e9)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CoreCounters(3e9).advance(-1.0, 3e9)
