"""The vectorized sweep kernel must be bit-identical to the scalar path.

``repro.core.batchsim`` promises that replaying a config through the
compiled-episode fast path returns *exactly* what the scalar
:class:`~repro.core.simulator.TraceSimulator` returns — same RNG draw
order, same floating-point expression order, same counters.  These
tests enforce the promise with strict ``==`` comparisons (no approx):

* a hypothesis property suite over random traces (sparse events and
  dense bursts), strategies, deadlines, seeds and offsets;
* synthesized workload traces through :func:`simulate_sweep` vs
  :meth:`SuitSystem.run_profile`;
* the sweep API contract: config-order results, the closed-form ``e``
  estimate, enclave rejection, scalar fallbacks (``force_scalar`` and
  an enabled tracer) and core-count validation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batchsim import (
    SweepConfig,
    compile_episode,
    replay_config,
    simulate_sweep,
)
from repro.core.estimates import emulation_estimate
from repro.core.params import StrategyParams, default_params_for
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.core.suit import SuitSystem
from repro.hardware.models import cpu_b_ryzen_7700x, cpu_c_xeon_4208
from repro.isa.opcodes import Opcode
from repro.obs.tracer import disable_tracing, enable_tracing
from repro.workloads.generator import generate_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace

_CPU = cpu_c_xeon_4208()

_N = 20_000_000

_PROFILE = WorkloadProfile(
    name="prop", suite="SPECint", n_instructions=_N, ipc=1.5,
    efficient_occupancy=0.5, n_episodes=1, dense_gap=1000,
    imul_density=0.05, opcode_mix={Opcode.VOR: 0.6, Opcode.VPCMP: 0.4})

#: A small synthetic profile whose generated trace has real burst
#: structure but synthesises in milliseconds.
_GEN_PROFILE = WorkloadProfile(
    name="gen", suite="SPECint", n_instructions=2_000_000, ipc=1.2,
    efficient_occupancy=0.4, n_episodes=3, dense_gap=400,
    imul_density=0.1, opcode_mix={Opcode.VOR: 0.5, Opcode.VPCMP: 0.5})


def _make_trace(event_positions):
    indices = np.array(sorted(set(event_positions)), dtype=np.int64)
    opcodes = (indices % 2).astype(np.uint8)
    return FaultableTrace(
        name="prop", n_instructions=_N, ipc=1.5, indices=indices,
        opcodes=opcodes, opcode_table=(Opcode.VOR, Opcode.VPCMP))


def assert_identical(fast, scalar):
    """Bit-exact result comparison — any drift is a kernel bug."""
    assert fast.duration_s == scalar.duration_s
    assert fast.energy_rel == scalar.energy_rel
    assert fast.state_time == scalar.state_time
    assert fast.baseline_duration_s == scalar.baseline_duration_s
    assert fast.n_exceptions == scalar.n_exceptions
    assert fast.n_switches == scalar.n_switches
    assert fast.n_timer_fires == scalar.n_timer_fires
    assert fast.n_thrash_stretches == scalar.n_thrash_stretches
    assert fast.strategy == scalar.strategy
    assert fast.voltage_offset == scalar.voltage_offset


# Sparse singles plus dense bursts: bursts drive the deadline-timer /
# thrashing machinery, singles drive the bulk-consume galloping.
_singles = st.lists(st.integers(min_value=0, max_value=_N - 1),
                    min_size=0, max_size=30)
_bursts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=_N - 2000),
              st.integers(min_value=2, max_value=300)),
    min_size=0, max_size=4)


@st.composite
def event_sets(draw):
    events = list(draw(_singles))
    for start, length in draw(_bursts):
        events.extend(range(start, start + length))
    return events


@settings(max_examples=60, deadline=None)
@given(events=event_sets(),
       strategy_name=st.sampled_from(["fV", "f", "V", "e"]),
       deadline=st.sampled_from([10e-6, 30e-6, 100e-6, 450e-6]),
       seed=st.integers(min_value=0, max_value=7),
       offset=st.sampled_from([-0.05, -0.097, -0.12]),
       harden=st.booleans())
def test_replay_matches_scalar(events, strategy_name, deadline, seed,
                               offset, harden):
    trace = _make_trace(events)
    params = StrategyParams(deadline, 450e-6, 3, 14.0)
    config = SweepConfig(strategy=strategy_name, voltage_offset=offset,
                         seed=seed, harden_imul=harden)
    scalar = TraceSimulator(_CPU, _PROFILE, trace,
                            strategy_for(strategy_name, params), offset,
                            seed=seed, harden_imul=harden).run()
    fast = replay_config(compile_episode(trace), _CPU, _PROFILE, config,
                         params)
    assert_identical(fast, scalar)


@settings(max_examples=20, deadline=None)
@given(events=event_sets(),
       seed=st.integers(min_value=0, max_value=3))
def test_replay_matches_scalar_without_voltage_rail(events, seed):
    """CPU B has no voltage control — the f strategy's frequency-only
    transitions must still replay exactly."""
    cpu = cpu_b_ryzen_7700x()
    trace = _make_trace(events)
    params = default_params_for(cpu.vendor)
    scalar = TraceSimulator(cpu, _PROFILE, trace,
                            strategy_for("f", params), -0.097,
                            seed=seed).run()
    fast = replay_config(compile_episode(trace), cpu, _PROFILE,
                         SweepConfig(strategy="f", seed=seed), params)
    assert_identical(fast, scalar)


class TestSweepSemantics:
    """simulate_sweep == SuitSystem.run_profile, config by config."""

    @pytest.fixture(scope="class")
    def gen_trace(self):
        return generate_trace(_GEN_PROFILE, seed=0)

    @pytest.mark.parametrize("strategy", ["fV", "f", "V", "e"])
    def test_sweep_matches_run_profile(self, gen_trace, strategy):
        suit = SuitSystem.for_cpu("C", strategy_name=strategy,
                                  voltage_offset=-0.097, seed=0)
        suit.prime_trace(_GEN_PROFILE, gen_trace)
        reference = suit.run_profile(_GEN_PROFILE)
        [swept] = suit.run_sweep(_GEN_PROFILE, [
            SweepConfig(strategy=strategy, voltage_offset=-0.097, seed=0)])
        assert_identical(swept, reference)

    def test_results_come_back_in_config_order(self, gen_trace):
        configs = [SweepConfig(strategy=s, voltage_offset=off, seed=0)
                   for s in ("V", "fV", "e", "f")
                   for off in (-0.07, -0.097)]
        results = simulate_sweep(_CPU, _GEN_PROFILE, gen_trace, configs)
        assert [(r.strategy, r.voltage_offset) for r in results] == \
            [(c.strategy, c.voltage_offset) for c in configs]

    def test_e_config_is_the_closed_form_estimate(self, gen_trace):
        [swept] = simulate_sweep(_CPU, _GEN_PROFILE, gen_trace,
                                 [SweepConfig(strategy="e")])
        estimate = emulation_estimate(_CPU, _GEN_PROFILE, gen_trace,
                                      -0.097)
        assert_identical(swept, estimate)

    def test_e_config_rejects_enclaves(self, gen_trace):
        enclave = WorkloadProfile(
            name="gen", suite="SPECint", n_instructions=2_000_000,
            ipc=1.2, efficient_occupancy=0.4, n_episodes=3,
            dense_gap=400, imul_density=0.1,
            opcode_mix={Opcode.VOR: 1.0}, in_enclave=True)
        with pytest.raises(ValueError, match="enclave"):
            simulate_sweep(_CPU, enclave, gen_trace,
                           [SweepConfig(strategy="e")])

    def test_force_scalar_agrees_with_vector(self, gen_trace):
        configs = [SweepConfig(strategy="fV", seed=s) for s in (0, 1)]
        fast = simulate_sweep(_CPU, _GEN_PROFILE, gen_trace, configs)
        slow = simulate_sweep(_CPU, _GEN_PROFILE, gen_trace, configs,
                              force_scalar=True)
        for a, b in zip(fast, slow):
            assert_identical(a, b)

    def test_enabled_tracer_takes_the_scalar_path(self, gen_trace):
        """The replay emits no telemetry; with a tracer installed the
        sweep must route through the (instrumented) scalar simulator."""
        tracer = enable_tracing(capacity=50_000)
        try:
            simulate_sweep(_CPU, _GEN_PROFILE, gen_trace,
                           [SweepConfig(strategy="fV")])
            assert len(tracer) > 0
        finally:
            disable_tracing()

    def test_core_count_is_validated(self, gen_trace):
        with pytest.raises(ValueError):
            simulate_sweep(_CPU, _GEN_PROFILE, gen_trace,
                           [SweepConfig()], n_cores=0)
        with pytest.raises(ValueError, match="cores"):
            simulate_sweep(_CPU, _GEN_PROFILE, gen_trace,
                           [SweepConfig()],
                           n_cores=_CPU.topology.n_cores + 1)

    def test_multicore_sweep_matches_run_profile(self, gen_trace):
        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097, seed=0,
                                  n_cores=2)
        suit.prime_trace(_GEN_PROFILE, gen_trace)
        reference = suit.run_profile(_GEN_PROFILE)
        [swept] = suit.run_sweep(_GEN_PROFILE, [SweepConfig()])
        assert_identical(swept, reference)

    def test_episode_is_compiled_once_and_cached(self, gen_trace):
        episode = compile_episode(gen_trace)
        assert compile_episode(gen_trace) is episode
        simulate_sweep(_CPU, _GEN_PROFILE, gen_trace,
                       [SweepConfig(seed=3)])
        assert gen_trace._batchsim_episode is episode


class TestEpisodeIndex:
    """The block-maximum index must agree with a linear scan."""

    @settings(max_examples=40, deadline=None)
    @given(events=event_sets(),
           start_frac=st.floats(min_value=0.0, max_value=1.0),
           threshold=st.integers(min_value=0, max_value=5_000_000))
    def test_first_big_gap_equals_linear_scan(self, events, start_frac,
                                              threshold):
        trace = _make_trace(events)
        episode = compile_episode(trace)
        n = trace.n_events
        start = int(start_frac * n)
        buf = np.empty(4096, dtype=bool)
        got = episode.first_big_gap(start, n, threshold, buf)
        gaps = trace.gaps()
        expect = n
        for j in range(start, n):
            if gaps[j] > threshold:
                expect = j
                break
        assert got == expect
