"""The golden-value regression harness.

Every module in :data:`EXPERIMENT_MODULES` has a snapshot under
``tests/goldens/`` pinning each metric's fast-mode value at its derived
seed.  This suite re-runs every experiment and fails if any reproduced
metric drifts beyond its stored tolerance — the whole paper
reproduction as a single regression gate.

The handful of genuinely slow experiments carry ``@pytest.mark.slow``
and are excluded from the default run (``-m "not slow"`` is in
``addopts``); run them with ``pytest -m slow`` or ``make test-all``.

Regenerate snapshots after an intentional change with::

    python -m repro.runtime.goldens --update
"""

from __future__ import annotations

import copy
import importlib

import pytest

from repro.experiments.runall import EXPERIMENT_MODULES
from repro.runtime import goldens
from repro.runtime.seeding import derive_seed

#: Experiments whose fast-mode run still takes minutes on one core.
SLOW_MODULES = frozenset({"table6_main"})


def _golden_params():
    for name in EXPERIMENT_MODULES:
        marks = [pytest.mark.slow] if name in SLOW_MODULES else []
        yield pytest.param(name, marks=marks, id=name)


@pytest.mark.parametrize("name", list(_golden_params()))
def test_metrics_match_golden(name):
    """Re-run one experiment and pin every metric against its golden."""
    golden = goldens.load_golden(name)
    assert golden["module"] == name
    assert golden["seed"] == derive_seed(golden["base_seed"], name)
    module = importlib.import_module(f"repro.experiments.{name}")
    result = module.run(seed=golden["seed"], fast=True)
    violations = goldens.compare_result(result, golden)
    assert not violations, (
        f"{name} drifted from its golden snapshot "
        f"(tests/goldens/{name}.json):\n" + "\n".join(violations))


class TestGoldenCoverage:
    """Meta-tests: new experiments cannot ship unpinned."""

    def test_every_experiment_has_a_golden(self):
        missing = [name for name in EXPERIMENT_MODULES
                   if not goldens.golden_path(name).exists()]
        assert not missing, (
            f"experiments without golden snapshots: {missing}; "
            "run `python -m repro.runtime.goldens --update`")

    def test_no_stale_goldens(self):
        known = set(EXPERIMENT_MODULES)
        stale = [path.name for path in goldens.goldens_dir().glob("*.json")
                 if path.stem not in known]
        assert not stale, f"golden files without experiments: {stale}"

    def test_goldens_pin_at_least_one_value(self):
        # Every experiment is pinned by metrics, or — for pure table
        # regenerations with no headline metric — by its lines hash.
        unpinned = [name for name in EXPERIMENT_MODULES
                    if not goldens.load_golden(name)["metrics"]
                    and "lines_sha256" not in goldens.load_golden(name)]
        assert not unpinned, f"goldens pinning nothing: {unpinned}"


class TestComparator:
    """The comparison itself must detect drift and schema changes."""

    @pytest.fixture
    def golden(self):
        return goldens.load_golden("table3_temperature")

    @pytest.fixture
    def result(self, golden):
        module = importlib.import_module(
            "repro.experiments.table3_temperature")
        return module.run(seed=golden["seed"], fast=True)

    def test_detects_value_drift(self, golden, result):
        tampered = copy.deepcopy(golden)
        name = next(iter(tampered["metrics"]))
        tampered["metrics"][name]["measured"] += 1.0
        violations = goldens.compare_result(result, tampered)
        assert any("drifted" in v for v in violations)

    def test_detects_removed_metric(self, golden, result):
        tampered = copy.deepcopy(golden)
        tampered["metrics"]["no_such_metric"] = {
            "measured": 0.0, "paper": None, "unit": "%",
            "rel_tol": 1e-6, "abs_tol": 1e-9}
        violations = goldens.compare_result(result, tampered)
        assert any("not produced" in v for v in violations)

    def test_detects_unpinned_metric(self, golden, result):
        tampered = copy.deepcopy(golden)
        name = next(iter(tampered["metrics"]))
        del tampered["metrics"][name]
        violations = goldens.compare_result(result, tampered)
        assert any("no golden value" in v for v in violations)

    def test_tolerance_is_honoured(self, golden, result):
        widened = copy.deepcopy(golden)
        name = next(iter(widened["metrics"]))
        widened["metrics"][name]["measured"] += 0.5
        widened["metrics"][name]["abs_tol"] = 1.0
        assert goldens.compare_result(result, widened) == []
