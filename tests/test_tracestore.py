"""Tests of the zero-copy shared trace store and the layered cache.

Covers the contract the fan-out tiers rely on: publish/attach
round-trips that preserve every trace field, read-only zero-copy views,
first-publisher-wins, per-process refcounting, environment-variable
activation for worker processes, owner cleanup (and its safety for
still-attached views), and the L1-LRU-over-L2-store layering of
:func:`repro.workloads.tracecache.cached_trace`.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.isa.opcodes import Opcode
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace
from repro.workloads.tracecache import (
    cached_trace,
    clear_trace_cache,
    store_key,
    trace_cache_info,
)
from repro.workloads.tracestore import ENV_VAR, SharedTraceStore, active_store

_PROFILE = WorkloadProfile(
    name="storeprof", suite="SPECint", n_instructions=500_000, ipc=1.3,
    efficient_occupancy=0.5, n_episodes=2, dense_gap=500,
    imul_density=0.1, opcode_mix={Opcode.VOR: 0.7, Opcode.VPCMP: 0.3})


def _trace(n_events=1000, name="stored"):
    rng = np.random.default_rng(42)
    indices = np.sort(rng.choice(900_000, size=n_events, replace=False))
    return FaultableTrace(
        name=name, n_instructions=1_000_000, ipc=1.5,
        indices=indices.astype(np.int64),
        opcodes=(indices % 2).astype(np.uint8),
        opcode_table=(Opcode.VOR, Opcode.VPCMP))


@pytest.fixture
def store():
    s = SharedTraceStore.create("test")
    yield s
    s.cleanup()


@pytest.fixture
def no_env(monkeypatch):
    """Make sure no ambient store leaks into (or out of) a test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(ENV_VAR, raising=False)


class TestPublishAttach:
    def test_round_trip_preserves_every_field(self, store):
        original = _trace()
        shared = store.publish("k", original)
        assert shared is not original  # a view, not the private copy
        assert shared.name == original.name
        assert shared.n_instructions == original.n_instructions
        assert shared.ipc == original.ipc
        assert shared.opcode_table == original.opcode_table
        np.testing.assert_array_equal(shared.indices, original.indices)
        np.testing.assert_array_equal(shared.opcodes, original.opcodes)
        np.testing.assert_array_equal(shared.gaps(), original.gaps())
        np.testing.assert_array_equal(shared.emulation_cycle_table(),
                                      original.emulation_cycle_table())

    def test_views_are_read_only(self, store):
        shared = store.publish("k", _trace())
        for arr in (shared.indices, shared.opcodes, shared.gaps()):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 1

    def test_attach_is_zero_copy_and_idempotent(self, store):
        store.publish("k", _trace())
        first = store.get("k")
        second = store.get("k")
        assert first is second  # same object per process
        # The arrays are backed by the shared segment, not fresh heaps.
        assert first.indices.base is not None

    def test_first_publisher_wins(self, store):
        a = store.publish("k", _trace(name="first"))
        b = store.publish("k", _trace(name="second"))
        assert b is a
        assert store.get("k").name == "first"

    def test_contains_and_missing_get(self, store):
        assert not store.contains("nope")
        assert store.get("nope") is None
        store.publish("yes", _trace())
        assert store.contains("yes")

    def test_empty_trace_round_trips(self, store):
        empty = FaultableTrace(
            name="empty", n_instructions=1000, ipc=1.0,
            indices=np.array([], dtype=np.int64),
            opcodes=np.array([], dtype=np.uint8), opcode_table=())
        shared = store.publish("e", empty)
        assert shared.n_events == 0
        assert shared.opcode_table == ()

    def test_distinct_keys_get_distinct_segments(self, store):
        store.publish("a", _trace(name="a"))
        store.publish("b", _trace(name="b"))
        assert store.stats()["published"] == 2
        assert store.get("a").name == "a"
        assert store.get("b").name == "b"


class TestLifecycle:
    def test_refcounts_and_release(self, store):
        store.publish("k", _trace())  # publish holds the first reference
        store.get("k")
        assert store.stats()["refcounts"] == 2
        store.release("k")
        assert store.stats()["refcounts"] == 1
        store.release("k")
        assert store.stats()["refcounts"] == 0
        assert store.stats()["attached"] == 0
        # The segment itself survives for other processes.
        assert store.contains("k")
        assert store.get("k") is not None

    def test_release_of_unknown_key_is_a_noop(self, store):
        store.release("never-seen")

    def test_cleanup_removes_root_and_is_idempotent(self):
        store = SharedTraceStore.create("test")
        store.publish("k", _trace())
        root = store.root
        store.cleanup()
        assert not root.exists()
        store.cleanup()  # second call must not raise

    def test_cleanup_keeps_attached_views_readable(self):
        """Unlinking drops the name; mapped pages live on by refcount."""
        store = SharedTraceStore.create("test")
        shared = store.publish("k", _trace())
        expected = shared.indices.copy()
        store.cleanup()
        np.testing.assert_array_equal(shared.indices, expected)
        assert int(shared.gaps().max()) > 0


class TestActivation:
    def test_activate_exports_and_deactivate_clears(self, no_env):
        store = SharedTraceStore.create("test")
        try:
            store.activate()
            assert os.environ[ENV_VAR] == str(store.root)
            attached = active_store()
            assert attached is not None
            assert attached.root == store.root
            assert not attached.owner
            store.deactivate()
            assert ENV_VAR not in os.environ
            assert active_store() is None
        finally:
            store.cleanup()

    def test_cleanup_deactivates(self, no_env):
        store = SharedTraceStore.create("test")
        store.activate()
        store.cleanup()
        assert ENV_VAR not in os.environ

    def test_cross_store_publish_get(self, no_env):
        """A non-owning attachment (what a worker holds) sees traces
        published through the owner, and vice versa."""
        owner = SharedTraceStore.create("test")
        try:
            owner.activate()
            worker = active_store()
            owner.publish("k", _trace(name="from-owner"))
            got = worker.get("k")
            assert got is not None and got.name == "from-owner"
            worker.publish("w", _trace(name="from-worker"))
            assert owner.get("w").name == "from-worker"
        finally:
            owner.cleanup()


class TestLayeredCache:
    def test_l1_hit_returns_same_object(self, no_env):
        clear_trace_cache()
        first = cached_trace(_PROFILE, seed=0)
        assert cached_trace(_PROFILE, seed=0) is first
        assert trace_cache_info()["entries"] >= 1

    def test_miss_publishes_to_active_store(self, no_env):
        store = SharedTraceStore.create("test")
        try:
            store.activate()
            clear_trace_cache()
            trace = cached_trace(_PROFILE, seed=3)
            key = store_key(_PROFILE, 3)
            assert store.contains(key)
            # The L1 entry is the shared view, not a private array.
            assert not trace.indices.flags.writeable
        finally:
            store.cleanup()
            clear_trace_cache()

    def test_l1_cleared_second_call_attaches(self, no_env):
        store = SharedTraceStore.create("test")
        try:
            store.activate()
            clear_trace_cache()
            first = cached_trace(_PROFILE, seed=4)
            clear_trace_cache()
            second = cached_trace(_PROFILE, seed=4)
            # Served through the store's per-process attachment (the
            # same shared view), not re-synthesised.
            assert second is first
            assert not second.indices.flags.writeable
        finally:
            store.cleanup()
            clear_trace_cache()

    def test_shared_trace_simulates_identically(self, no_env):
        """A simulation over the attached read-only view must equal one
        over the private trace (the arrays are bit-identical)."""
        from repro.core.batchsim import SweepConfig
        from repro.core.suit import SuitSystem

        clear_trace_cache()
        private = cached_trace(_PROFILE, seed=0)
        suit = SuitSystem.for_cpu("C", voltage_offset=-0.097, seed=0)
        suit.prime_trace(_PROFILE, private)
        reference = suit.run_profile(_PROFILE)

        store = SharedTraceStore.create("test")
        try:
            store.activate()
            clear_trace_cache()
            shared_suit = SuitSystem.for_cpu("C", voltage_offset=-0.097,
                                             seed=0)
            result = shared_suit.run_profile(_PROFILE)
            assert result.duration_s == reference.duration_s
            assert result.energy_rel == reference.energy_rel
            assert result.state_time == reference.state_time
            assert result.n_exceptions == reference.n_exceptions
            [swept] = shared_suit.run_sweep(_PROFILE, [SweepConfig()])
            assert swept.duration_s == reference.duration_s
        finally:
            store.cleanup()
            clear_trace_cache()
