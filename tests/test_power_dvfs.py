"""Unit tests for DVFS curves, p-states and switch targets."""

import pytest

from repro.power.dvfs import (
    CurveKind,
    DVFSCurve,
    I9_9900K_CURVE_POINTS,
    PState,
    modified_imul_curve,
    switch_targets,
)


@pytest.fixture
def i9_curve():
    return DVFSCurve(I9_9900K_CURVE_POINTS, name="i9")


class TestPState:
    def test_valid(self):
        p = PState(4e9, 1.0)
        assert p.kind is CurveKind.CONSERVATIVE

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PState(0.0, 1.0)
        with pytest.raises(ValueError):
            PState(4e9, -0.1)


class TestDVFSCurve:
    def test_anchor_points_exact(self, i9_curve):
        assert i9_curve.voltage_at(4.0e9) == pytest.approx(0.991)
        assert i9_curve.voltage_at(5.0e9) == pytest.approx(1.174)

    def test_interpolation_between_anchors(self, i9_curve):
        v = i9_curve.voltage_at(4.5e9)
        assert 0.991 < v < 1.174
        assert v == pytest.approx((0.991 + 1.174) / 2, abs=1e-9)

    def test_top_gradient_matches_paper(self, i9_curve):
        # 183 mV/GHz between 4 and 5 GHz (paper section 5.6).
        assert i9_curve.gradient_at(4.5e9) * 1e9 == pytest.approx(0.183)

    def test_inverse(self, i9_curve):
        for f in (1.5e9, 3.3e9, 4.8e9):
            assert i9_curve.frequency_at(i9_curve.voltage_at(f)) == pytest.approx(f)

    def test_monotonicity_enforced(self):
        with pytest.raises(ValueError):
            DVFSCurve([(1e9, 0.9), (2e9, 0.8)])
        with pytest.raises(ValueError):
            DVFSCurve([(1e9, 0.8), (1e9, 0.9)])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            DVFSCurve([(1e9, 0.8)])

    def test_with_offset_shifts_everything(self, i9_curve):
        eff = i9_curve.with_offset(-0.097)
        assert eff.kind is CurveKind.EFFICIENT
        for f, v in i9_curve.points:
            assert eff.voltage_at(f) == pytest.approx(v - 0.097)

    def test_with_offset_requires_sane_voltages(self, i9_curve):
        with pytest.raises(ValueError):
            i9_curve.with_offset(-0.999)  # would push voltages negative

    def test_pstates(self, i9_curve):
        states = i9_curve.pstates([2e9, 4e9])
        assert [p.frequency for p in states] == [2e9, 4e9]
        assert states[1].voltage == pytest.approx(0.991)


class TestModifiedImulCurve:
    def test_headroom_at_5ghz_is_about_220mv(self, i9_curve):
        # Paper section 6.9: 3->4 cycles buys ~220 mV at 5 GHz.
        imul4 = modified_imul_curve(i9_curve, 3, 4)
        headroom = i9_curve.voltage_at(5e9) - imul4.voltage_at(5e9)
        assert headroom == pytest.approx(0.220, abs=0.020)

    def test_headroom_small_at_low_frequency(self, i9_curve):
        imul4 = modified_imul_curve(i9_curve, 3, 4)
        headroom = i9_curve.voltage_at(1e9) - imul4.voltage_at(1e9)
        assert headroom < 0.030

    def test_never_above_conservative(self, i9_curve):
        imul4 = modified_imul_curve(i9_curve, 3, 4)
        for f, _ in i9_curve.points:
            assert imul4.voltage_at(f) <= i9_curve.voltage_at(f)

    def test_latency_must_increase(self, i9_curve):
        with pytest.raises(ValueError):
            modified_imul_curve(i9_curve, 4, 3)


class TestSwitchTargets:
    def test_cf_keeps_voltage_lowers_frequency(self, i9_curve):
        eff = i9_curve.with_offset(-0.097)
        cf, cv = switch_targets(eff, i9_curve, 4.3e9)
        assert cf.voltage == pytest.approx(eff.voltage_at(4.3e9))
        assert cf.frequency < 4.3e9

    def test_cv_keeps_frequency_raises_voltage(self, i9_curve):
        eff = i9_curve.with_offset(-0.097)
        cf, cv = switch_targets(eff, i9_curve, 4.3e9)
        assert cv.frequency == pytest.approx(4.3e9)
        assert cv.voltage == pytest.approx(i9_curve.voltage_at(4.3e9))
        assert cv.voltage > eff.voltage_at(4.3e9)

    def test_both_targets_on_conservative_curve(self, i9_curve):
        eff = i9_curve.with_offset(-0.070)
        cf, cv = switch_targets(eff, i9_curve, 4.0e9)
        assert cf.voltage == pytest.approx(
            i9_curve.voltage_at(cf.frequency), abs=1e-9)
        assert cv.kind is CurveKind.CONSERVATIVE
