"""Tests for SPECcast-style sampled evaluation."""

import pytest

from repro.core.params import DEFAULT_PARAMS_INTEL
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.workloads.sampling import (
    evaluate_sampled,
    sample_windows,
    sampling_error,
)


class TestSampleWindows:
    def test_window_count_and_sizes(self, small_trace):
        windows = sample_windows(small_trace, n_windows=8, coverage=0.2)
        assert len(windows) == 8
        expected = int(small_trace.n_instructions * 0.2 / 8)
        assert all(w.n_instructions == expected for w in windows)

    def test_full_coverage_single_window(self, small_trace):
        windows = sample_windows(small_trace, n_windows=1, coverage=1.0)
        assert windows[0].n_instructions == small_trace.n_instructions
        assert windows[0].n_events == small_trace.n_events

    def test_windows_capture_events_proportionally(self, small_trace):
        windows = sample_windows(small_trace, n_windows=10, coverage=0.5)
        captured = sum(w.n_events for w in windows)
        assert captured == pytest.approx(small_trace.n_events * 0.5, rel=0.5)

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            sample_windows(small_trace, 0, 0.1)
        with pytest.raises(ValueError):
            sample_windows(small_trace, 5, 1.5)
        with pytest.raises(ValueError):
            sample_windows(small_trace, 10 ** 9, 1e-9)


class TestSampledEvaluation:
    def test_estimate_close_to_full_run(self, cpu_c, small_profile,
                                        small_trace):
        full = TraceSimulator(cpu_c, small_profile, small_trace,
                              strategy_for("fV", DEFAULT_PARAMS_INTEL),
                              -0.097, seed=0).run()
        estimate = evaluate_sampled(cpu_c, small_profile, small_trace,
                                    "fV", -0.097, n_windows=10, coverage=0.3)
        err_perf, err_power, err_eff = sampling_error(estimate, full)
        assert err_perf < 0.02
        assert err_power < 0.03
        assert err_eff < 0.04

    def test_more_coverage_reduces_power_error(self, cpu_c, small_profile,
                                               small_trace):
        full = TraceSimulator(cpu_c, small_profile, small_trace,
                              strategy_for("fV", DEFAULT_PARAMS_INTEL),
                              -0.097, seed=0).run()
        coarse = evaluate_sampled(cpu_c, small_profile, small_trace,
                                  "fV", -0.097, n_windows=4, coverage=0.05)
        fine = evaluate_sampled(cpu_c, small_profile, small_trace,
                                "fV", -0.097, n_windows=10, coverage=0.5)
        assert (sampling_error(fine, full)[1]
                <= sampling_error(coarse, full)[1] + 0.01)

    def test_coverage_recorded(self, cpu_c, small_profile, small_trace):
        estimate = evaluate_sampled(cpu_c, small_profile, small_trace,
                                    "fV", -0.097, n_windows=5, coverage=0.1)
        assert estimate.coverage == 0.1
        assert len(estimate.window_results) == 5
