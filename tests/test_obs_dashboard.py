"""The text top view and the HTML dashboard (``repro.obs.dashboard``)."""

from __future__ import annotations

import pytest

from repro.obs.dashboard import (
    render_obs_dashboard,
    render_top,
    sparkline_svg,
)
from repro.obs.slo import SLO, BurnRatePolicy, SLOMonitor
from repro.obs.smoke import aggregate_snapshots, validate_dashboard_html
from repro.obs.timeseries import MetricsScraper
from repro.testkit.clock import FakeClock

from tests.test_obs_timeseries import hist, snap


@pytest.fixture
def clock():
    return FakeClock(start=50.0)


@pytest.fixture
def scrapers(clock):
    """Two targets with a little history each."""
    out = {}
    for name, slow in (("node-0", 0), ("node-1", 40)):
        scraper = MetricsScraper(interval_s=1.0, clock=clock)
        scraper.ingest(snap(
            counters={"requests_submitted": 0, "requests_completed": 0,
                      "requests_failed": 0},
            gauges={"queue_depth": 0.0},
            histograms={"latency_s": hist([0, 0, 0, 0])}))
        clock.advance(1.0)
        scraper.ingest(snap(
            counters={"requests_submitted": 20, "requests_completed": 18,
                      "requests_failed": 2},
            gauges={"queue_depth": 4.0},
            histograms={"latency_s": hist([15, 3, slow, 0],
                                          max_seen=2.0)}))
        out[name] = scraper
    return out


def monitor_for(scrapers, clock, fire=False):
    monitor = SLOMonitor(
        scrapers["node-1"],
        slos=[SLO(name="latency-p95", objective=0.95,
                  latency_threshold_s=0.01)],
        policy=BurnRatePolicy(fast_window_s=5.0, slow_window_s=60.0),
        clock=clock)
    if fire:
        monitor.evaluate()
    return monitor


class TestRenderTop:
    def test_one_row_per_target(self, scrapers, clock):
        text = render_top(scrapers, window_s=10.0)
        lines = text.splitlines()
        assert "target" in lines[0] and "win p95" in lines[0]
        assert any(line.startswith("node-0") for line in lines)
        assert any(line.startswith("node-1") for line in lines)

    def test_slo_section_flags_firing(self, scrapers, clock):
        monitor = monitor_for(scrapers, clock, fire=True)
        assert monitor.firing  # 43/58 breaches of the 10ms bar
        text = render_top(scrapers, monitor=monitor, window_s=10.0)
        assert "FIRING" in text
        assert "latency-p95" in text


class TestRenderDashboard:
    def test_validates_and_carries_sections(self, scrapers, clock):
        monitor = monitor_for(scrapers, clock, fire=True)
        flight = {"slowest": [{"trace_id": "ab" * 8, "latency_s": 1.5,
                               "status": "ok"}],
                  "failures": []}
        page = render_obs_dashboard(
            scrapers, monitor=monitor, flight=flight,
            trace_summary={"n_processes": 4, "n_stitched_traces": 9,
                           "path": "fleet_trace.json"},
            title="fleet obs", window_s=10.0)
        tags = validate_dashboard_html(page)
        assert tags["table"] >= 2  # targets + SLOs at minimum
        assert tags["svg"] >= 1    # sparklines
        assert "fleet obs" in page
        assert "ab" * 8 in page    # flight exemplar listed
        assert "fleet_trace.json" in page

    def test_renders_without_optional_sections(self, scrapers):
        page = render_obs_dashboard(scrapers)
        validate_dashboard_html(page)

    def test_sparkline_svg_is_self_contained(self):
        svg = sparkline_svg([1.0, 3.0, 2.0])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg

    def test_validator_rejects_missing_structure(self):
        with pytest.raises(AssertionError):
            validate_dashboard_html("<html><body>no tables</body></html>")


class TestAggregateSnapshots:
    def test_counters_gauges_histograms_merge(self):
        a = snap(counters={"done": 5}, gauges={"queue_depth": 2.0},
                 histograms={"latency_s": hist([10, 0, 0, 0])})
        b = snap(counters={"done": 7}, gauges={"queue_depth": 1.0},
                 histograms={"latency_s": hist([0, 0, 4, 0],
                                               max_seen=3.0)})
        fleet = aggregate_snapshots([a, b])
        assert fleet["counters"]["done"] == 12
        assert fleet["gauges"]["queue_depth"] == 3.0
        merged = fleet["histograms"]["latency_s"]
        assert [x["count"] for x in merged["buckets"]] == [10, 0, 4, 0]
        assert merged["n"] == 14
        assert merged["p95"] == 1.0  # the slow node's tail survives

    def test_error_entries_skipped(self):
        good = snap(counters={"done": 1})
        assert aggregate_snapshots(
            [good, {"error": "unreachable"}])["counters"]["done"] == 1
