"""Tests for the MSR-level SUIT kernel subsystem."""

import pytest

from repro.core.params import DEFAULT_PARAMS_INTEL
from repro.hardware.counters import DelaySpec
from repro.hardware.interface import SuitMsrInterface
from repro.hardware.msr import Msr
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.kernel.handler import KernelCosts
from repro.kernel.suit_os import SuitOs
from repro.power.dvfs import CurveKind


@pytest.fixture
def kernel():
    os_model = SuitOs(
        msrs=SuitMsrInterface(),
        costs=KernelCosts(DelaySpec(0.34e-6), DelaySpec(0.77e-6)),
        params=DEFAULT_PARAMS_INTEL,
    )
    os_model.boot()
    return os_model


class TestBootAndShutdown:
    def test_boot_enters_suit_steady_state(self, kernel):
        assert kernel.on_efficient_curve
        assert TRAPPED_OPCODES <= kernel.msrs.disabled_opcodes()
        assert kernel.msrs.deadline_seconds() == pytest.approx(30e-6)

    def test_shutdown_restores_stock_behaviour(self, kernel):
        kernel.shutdown()
        assert not kernel.on_efficient_curve
        assert kernel.msrs.disabled_opcodes() == frozenset()

    def test_unbooted_rejects_events(self):
        os_model = SuitOs(SuitMsrInterface(),
                          KernelCosts(DelaySpec(1e-6), DelaySpec(2e-6)),
                          DEFAULT_PARAMS_INTEL)
        with pytest.raises(RuntimeError):
            os_model.on_disabled_opcode(Opcode.AESENC, 0.0)


class TestTrapFlow:
    def test_do_switches_to_conservative_and_enables(self, kernel):
        cost = kernel.on_disabled_opcode(Opcode.AESENC, time_s=1.0)
        assert cost > 0
        assert not kernel.on_efficient_curve
        assert kernel.msrs.disabled_opcodes() == frozenset()
        assert kernel.timer.armed

    def test_msr_trace_matches_listing1(self, kernel):
        kernel.on_disabled_opcode(Opcode.VOR, time_s=1.0)
        # The deadline register carries the armed value in TSC ticks.
        ticks = kernel.msrs.msrs.read(Msr.SUIT_DEADLINE)
        assert ticks == round(30e-6 * kernel.msrs.tsc_frequency)

    def test_faultable_execution_resets_countdown(self, kernel):
        kernel.on_disabled_opcode(Opcode.VOR, time_s=1.0)
        kernel.on_faultable_executed(1.0 + 20e-6)
        assert kernel.timer.fires_at == pytest.approx(1.0 + 20e-6 + 30e-6)

    def test_timer_returns_to_efficient(self, kernel):
        kernel.on_disabled_opcode(Opcode.VOR, time_s=1.0)
        kernel.on_timer_interrupt(1.0 + 31e-6)
        assert kernel.on_efficient_curve
        assert TRAPPED_OPCODES <= kernel.msrs.disabled_opcodes()

    def test_premature_timer_is_ignored(self, kernel):
        kernel.on_disabled_opcode(Opcode.VOR, time_s=1.0)
        kernel.on_timer_interrupt(1.0 + 5e-6)  # countdown not expired
        assert not kernel.on_efficient_curve

    def test_thrashing_stretches_register_value(self, kernel):
        times = [1.0, 1.0 + 100e-6, 1.0 + 200e-6, 1.0 + 300e-6]
        for t in times:
            kernel.on_disabled_opcode(Opcode.VOR, t)
            kernel.on_timer_interrupt(t + 50e-6)
        ticks = kernel.msrs.msrs.read(Msr.SUIT_DEADLINE)
        stretched = 30e-6 * 14 * kernel.msrs.tsc_frequency
        assert ticks == round(stretched)

    def test_log_records_choreography(self, kernel):
        kernel.on_disabled_opcode(Opcode.AESENC, 1.0)
        kernel.on_timer_interrupt(2.0)
        actions = kernel.log.actions()
        assert any("boot" in a for a in actions)
        assert any("#DO AESENC" in a for a in actions)
        assert any("timer" in a for a in actions)


class TestEmulationFlow:
    def test_emulation_stays_on_efficient_curve(self):
        kernel = SuitOs(SuitMsrInterface(),
                        KernelCosts(DelaySpec(0.34e-6), DelaySpec(0.77e-6)),
                        DEFAULT_PARAMS_INTEL, emulate=True)
        kernel.boot()
        kernel.on_disabled_opcode(Opcode.AESENC, 1.0)
        assert kernel.on_efficient_curve
        assert TRAPPED_OPCODES <= kernel.msrs.disabled_opcodes()
        assert not kernel.timer.armed
