"""Property suite: campaigns are pure functions of (spec, seed).

The ISSUE's contract: same ``FaultloadSpec`` + seed ⇒ byte-identical
expanded injection plans and byte-identical ``campaign_report.json``
(the report schema carries no timestamps at all); different seeds ⇒
different plans; checkpoint-resume ⇒ the identical final report an
uninterrupted run produces.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import CampaignRunner, FaultloadSpec, expand
from repro.campaigns.spec import SCOPE_FAULT_MODELS, TARGET_SCOPES

OFFSET_GRID = (-0.050, -0.097, -0.140, -0.180, -0.220)


@st.composite
def faultload_specs(draw) -> FaultloadSpec:
    scope = draw(st.sampled_from(TARGET_SCOPES))
    model = draw(st.sampled_from(SCOPE_FAULT_MODELS[scope]))
    offsets = tuple(sorted(draw(
        st.sets(st.sampled_from(OFFSET_GRID), min_size=1, max_size=3)),
        reverse=True))
    return FaultloadSpec(
        name=draw(st.sampled_from(("alpha", "beta"))),
        scope=scope,
        fault_model=model,
        multiplicity=draw(st.integers(1, 3)),
        samples=draw(st.integers(1, 4)),
        seed=draw(st.integers(0, 2**31 - 1)),
        offsets_v=offsets,
        n_ops=40,
    )


def plans_json(spec: FaultloadSpec) -> str:
    return json.dumps([p.to_json_dict() for p in expand(spec)],
                      sort_keys=True)


class TestPlanDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(faultload_specs())
    def test_same_spec_expands_byte_identically(self, spec):
        assert plans_json(spec) == plans_json(spec)

    @settings(max_examples=60, deadline=None)
    @given(faultload_specs(), st.integers(1, 1000))
    def test_different_seeds_give_different_plans(self, spec, bump):
        reseeded = spec.with_overrides(seed=(spec.seed + bump) % 2**31)
        assert plans_json(spec) != plans_json(reseeded)

    @settings(max_examples=30, deadline=None)
    @given(faultload_specs())
    def test_plans_round_trip_through_json(self, spec):
        from repro.campaigns.plan import RunPlan

        for plan in expand(spec):
            assert RunPlan.from_json_dict(plan.to_json_dict()) == plan

    @settings(max_examples=30, deadline=None)
    @given(faultload_specs())
    def test_spec_digest_tracks_spec_identity(self, spec):
        assert spec.digest() == \
            FaultloadSpec.from_json_dict(spec.to_json_dict()).digest()
        assert spec.digest() != spec.with_overrides(seed=spec.seed + 1,
                                                    ).digest()


class TestReportDeterminism:
    """Full-execution determinism on small campaigns (every scope)."""

    @settings(max_examples=8, deadline=None)
    @given(faultload_specs())
    def test_double_run_reports_are_byte_identical(self, spec):
        small = spec.with_overrides(samples=1, n_ops=30,
                                    offsets_v=spec.offsets_v[:1])
        first = json.dumps(CampaignRunner(small).run(), sort_keys=True)
        second = json.dumps(CampaignRunner(small).run(), sort_keys=True)
        assert first == second

    def test_interrupted_and_resumed_equals_uninterrupted(self, tmp_path):
        spec = FaultloadSpec(name="resume", scope="msr",
                             fault_model="bit_flip", samples=3, seed=11,
                             offsets_v=(-0.080, -0.140), n_ops=50)
        straight = CampaignRunner(spec, out_dir=tmp_path / "a")
        straight.run()
        straight.write_outputs(html=False)

        # Interrupt after 2 runs (the checkpoint survives any kill
        # because it is rewritten atomically), then resume.
        broken = CampaignRunner(spec, out_dir=tmp_path / "b")
        broken.run(stop_after=2)
        assert len(broken.results) == 2
        resumed = CampaignRunner(spec, out_dir=tmp_path / "b")
        resumed.run(resume=True)
        resumed.write_outputs(html=False)

        a = (tmp_path / "a" / "campaign_report.json").read_bytes()
        b = (tmp_path / "b" / "campaign_report.json").read_bytes()
        assert a == b

    def test_pool_and_serial_reports_are_byte_identical(self, tmp_path):
        spec = FaultloadSpec(name="pool", scope="vmin", fault_model="drift",
                             samples=2, seed=5, offsets_v=(-0.140,),
                             n_ops=40)
        serial = CampaignRunner(spec, out_dir=tmp_path / "s")
        serial.run()
        serial.write_outputs(html=False)
        pooled = CampaignRunner(spec, out_dir=tmp_path / "p", jobs=2)
        pooled.run()
        pooled.write_outputs(html=False)
        assert (tmp_path / "s" / "campaign_report.json").read_bytes() == \
            (tmp_path / "p" / "campaign_report.json").read_bytes()
