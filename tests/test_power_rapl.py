"""Unit tests for the RAPL-style energy meters."""

import pytest

from repro.power.rapl import DEFAULT_ENERGY_UNIT_J, EnergyMeter, RaplCounter


class TestEnergyMeter:
    def test_accumulation(self):
        meter = EnergyMeter()
        meter.accumulate(50.0, 2.0)
        meter.accumulate(100.0, 1.0)
        assert meter.energy_j == pytest.approx(200.0)
        assert meter.time_s == pytest.approx(3.0)

    def test_mean_power(self):
        meter = EnergyMeter()
        meter.accumulate(50.0, 2.0)
        meter.accumulate(100.0, 2.0)
        assert meter.mean_power_w == pytest.approx(75.0)

    def test_empty_meter_mean_power_zero(self):
        assert EnergyMeter().mean_power_w == 0.0

    def test_rejects_negative(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.accumulate(-1.0, 1.0)
        with pytest.raises(ValueError):
            meter.accumulate(1.0, -1.0)


class TestRaplCounter:
    def test_quantisation(self):
        counter = RaplCounter()
        counter.accumulate(1.0, DEFAULT_ENERGY_UNIT_J * 10)
        assert counter.read() == 10

    def test_energy_between_reads(self):
        counter = RaplCounter()
        before = counter.read()
        counter.accumulate(65.0, 1.0)
        after = counter.read()
        assert counter.energy_between(before, after) == pytest.approx(65.0, rel=1e-3)

    def test_wraparound_delta(self):
        # Reading wrapped past 2^32: delta must still be correct.
        assert RaplCounter.delta(2 ** 32 - 5, 10) == 15

    def test_wraparound_full_cycle(self):
        counter = RaplCounter(energy_unit_j=1.0)
        counter.accumulate(1.0, float(2 ** 32 + 7))
        assert counter.read() == 7

    def test_delta_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RaplCounter.delta(-1, 10)
        with pytest.raises(ValueError):
            RaplCounter.delta(0, 2 ** 32)

    def test_rejects_negative_accumulate(self):
        with pytest.raises(ValueError):
            RaplCounter().accumulate(-1.0, 1.0)
