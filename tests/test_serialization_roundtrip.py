"""Round-trip tests for every payload shape the service transports.

The service ships jsonified :class:`~repro.core.metrics.SimResult`
objects through pool workers, the TCP protocol and the on-disk result
cache — all via :mod:`repro.runtime.serialization` and ``json``.  These
tests pin the round-trip for the awkward citizens: numpy scalars and
arrays, dataclasses, NaN/inf, enum keys, nested containers.
"""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.core.metrics import SimResult
from repro.experiments.common import ExperimentResult, Metric
from repro.isa.opcodes import Opcode
from repro.runtime.serialization import (
    deserialize_result,
    jsonify,
    serialize_result,
)


def roundtrip(value):
    """jsonify -> JSON bytes -> parse (what cache/wire transport does)."""
    return json.loads(json.dumps(jsonify(value)))


class TestNumpyScalars:
    @pytest.mark.parametrize("value, expected", [
        (np.int32(-7), -7),
        (np.int64(2**40), 2**40),
        (np.uint8(255), 255),
        (np.float64(0.25), 0.25),
        (np.bool_(True), True),
    ])
    def test_exact(self, value, expected):
        assert roundtrip(value) == expected

    def test_float32_survives(self):
        out = roundtrip(np.float32(1.5))
        assert out == 1.5 and isinstance(out, float)


class TestNonFinite:
    def test_nan_roundtrips(self):
        out = roundtrip(float("nan"))
        assert isinstance(out, float) and math.isnan(out)

    def test_inf_roundtrips(self):
        assert roundtrip(float("inf")) == math.inf
        assert roundtrip(float("-inf")) == -math.inf

    def test_nan_inside_array(self):
        out = roundtrip(np.array([1.0, np.nan, np.inf]))
        assert out[0] == 1.0
        assert math.isnan(out[1])
        assert out[2] == math.inf


class TestArrays:
    def test_1d(self):
        assert roundtrip(np.arange(4)) == [0, 1, 2, 3]

    def test_2d_nested(self):
        assert roundtrip(np.ones((2, 3))) == [[1.0] * 3] * 2

    def test_empty(self):
        assert roundtrip(np.array([])) == []


class TestContainers:
    def test_tuple_and_set(self):
        assert roundtrip((1, 2)) == [1, 2]
        assert roundtrip({3, 1, 2}) == sorted(
            roundtrip({3, 1, 2}))  # deterministic order

    def test_enum_values_and_keys(self):
        assert roundtrip(Opcode.IMUL) == "IMUL"
        assert roundtrip({Opcode.IMUL: 1}) == {"IMUL": 1}

    def test_nested_mixture(self):
        value = {"a": [np.float64(1.0), (np.int32(2),)],
                 "b": {"c": np.array([3])}}
        assert roundtrip(value) == {"a": [1.0, [2]], "b": {"c": [3]}}


class TestSimResultPayload:
    """The exact shape the service's workers put on the wire."""

    def _result(self):
        return SimResult(
            workload="557.xz", cpu_name="Intel Xeon Silver 4208",
            strategy="fV", voltage_offset=-0.097,
            duration_s=1.01, baseline_duration_s=1.0,
            energy_rel=0.9, state_time={"E": 0.8, "Cf": 0.2},
            n_exceptions=12, n_switches=3, n_timer_fires=3,
            n_thrash_stretches=1,
            timeline=[(0.0, "E"), (0.5, "Cf")])

    def test_dataclass_jsonifies_to_field_dict(self):
        payload = roundtrip(self._result())
        assert payload["workload"] == "557.xz"
        assert payload["state_time"] == {"E": 0.8, "Cf": 0.2}
        assert payload["timeline"] == [[0.0, "E"], [0.5, "Cf"]]
        assert set(payload) == {f.name for f in
                                dataclasses.fields(SimResult)}

    def test_payload_is_pure_json(self):
        payload = roundtrip(self._result())
        # A second pass must be the identity: nothing non-JSON remains.
        assert roundtrip(payload) == payload


class TestExperimentResultRoundtrip:
    def test_full_roundtrip_preserves_metrics_and_data(self):
        result = ExperimentResult(experiment_id="svc", title="service test")
        result.metrics.append(Metric("eff", 12.5, 11.0, "%"))
        result.metrics.append(Metric("count", 3.0, None, ""))
        result.lines.append("a line")
        result.data["series"] = np.array([1.0, float("nan")])
        result.data["params"] = {"deadline": np.float64(30e-6)}

        payload = json.loads(json.dumps(serialize_result(result)))
        back = deserialize_result(payload)

        assert back.experiment_id == "svc"
        assert back.title == "service test"
        assert back.lines == ["a line"]
        assert [m.name for m in back.metrics] == ["eff", "count"]
        assert back.metrics[0].paper == 11.0
        assert back.metrics[1].paper is None
        assert back.data["series"][0] == 1.0
        assert math.isnan(back.data["series"][1])
        assert back.data["params"]["deadline"] == 30e-6

    def test_serialize_is_deterministic(self):
        result = ExperimentResult(experiment_id="det", title="t")
        result.data["mix"] = {Opcode.IMUL: np.arange(3),
                              "set": {2, 1}}
        a = json.dumps(serialize_result(result), sort_keys=True)
        b = json.dumps(serialize_result(result), sort_keys=True)
        assert a == b
