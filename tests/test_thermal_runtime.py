"""Tests for the transient thermal model and adaptive offset controller."""

import math

import pytest

from repro.power.guardband import TemperatureGuardband
from repro.power.thermal_runtime import (
    TemperatureAdaptiveOffset,
    ThermalIntegrator,
    simulate_adaptive,
)


class TestThermalIntegrator:
    def test_starts_at_ambient(self):
        model = ThermalIntegrator(ambient_c=25.0)
        assert model.temperature_c == 25.0

    def test_converges_to_steady_state(self):
        model = ThermalIntegrator(time_constant_s=2.0)
        target = model.steady_state(100.0)
        for _ in range(200):
            model.step(100.0, 0.5)
        assert model.temperature_c == pytest.approx(target, abs=0.1)

    def test_exponential_step_is_stable_for_huge_dt(self):
        model = ThermalIntegrator()
        model.step(150.0, 1e6)  # one giant step
        assert model.temperature_c == pytest.approx(model.steady_state(150.0))

    def test_cools_when_idle(self):
        model = ThermalIntegrator()
        model.step(150.0, 100.0)
        hot = model.temperature_c
        model.step(0.0, 100.0)
        assert model.temperature_c < hot
        assert model.temperature_c >= model.ambient_c - 1e-9

    def test_time_constant_controls_speed(self):
        fast = ThermalIntegrator(time_constant_s=1.0)
        slow = ThermalIntegrator(time_constant_s=20.0)
        fast.step(100.0, 1.0)
        slow.step(100.0, 1.0)
        assert fast.temperature_c > slow.temperature_c

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalIntegrator(time_constant_s=0.0)
        model = ThermalIntegrator()
        with pytest.raises(ValueError):
            model.step(-1.0, 1.0)


class TestAdaptiveOffsetController:
    def test_hot_core_gets_base_offset(self):
        ctrl = TemperatureAdaptiveOffset(base_offset_v=-0.070)
        assert ctrl.offset_at(88.0) == pytest.approx(-0.070)
        assert ctrl.offset_at(95.0) == pytest.approx(-0.070)

    def test_cool_core_gets_deeper_offset(self):
        ctrl = TemperatureAdaptiveOffset(base_offset_v=-0.070)
        cool = ctrl.offset_at(50.0)
        assert cool < -0.070
        # Table 3: ~35 mV more headroom at 50 C; capped at 30 mV extra.
        assert cool == pytest.approx(-0.100, abs=0.002)

    def test_cap_respected(self):
        ctrl = TemperatureAdaptiveOffset(base_offset_v=-0.070,
                                         max_extra_v=0.010)
        assert ctrl.offset_at(30.0) >= -0.081

    def test_monotone_in_temperature(self):
        ctrl = TemperatureAdaptiveOffset()
        offsets = [ctrl.offset_at(t) for t in (40, 55, 70, 85)]
        assert offsets == sorted(offsets)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemperatureAdaptiveOffset(base_offset_v=0.01)


class TestCoSimulation:
    @staticmethod
    def _power(offset: float) -> float:
        # Quadratic-ish toy power model.
        return 100.0 * (1.0 + offset) ** 2

    def test_adaptive_saves_energy_on_bursty_load(self):
        def duty(t: float) -> float:
            return 1.0 if math.fmod(t, 10.0) < 3.0 else 0.0

        fixed = simulate_adaptive(self._power, duty, 60.0,
                                  thermal=ThermalIntegrator(),
                                  fixed_offset_v=-0.070)
        adaptive = simulate_adaptive(self._power, duty, 60.0,
                                     thermal=ThermalIntegrator(),
                                     controller=TemperatureAdaptiveOffset())
        assert adaptive.energy_j < fixed.energy_j
        assert adaptive.mean_offset_v < -0.070

    def test_sustained_load_converges_to_base(self):
        adaptive = simulate_adaptive(
            self._power, lambda t: 1.0, 300.0,
            thermal=ThermalIntegrator(resistance_k_per_w=0.7),
            controller=TemperatureAdaptiveOffset())
        # Hot steady state: the last applied offsets sit at the base.
        tail = [o for _, _, o in adaptive.trajectory[-10:]]
        assert all(o == pytest.approx(-0.070, abs=0.003) for o in tail)

    def test_requires_controller_or_fixed(self):
        with pytest.raises(ValueError):
            simulate_adaptive(self._power, lambda t: 1.0, 1.0)

    def test_trajectory_recorded(self):
        run = simulate_adaptive(self._power, lambda t: 0.5, 5.0,
                                fixed_offset_v=-0.070,
                                control_period_s=0.5)
        assert len(run.trajectory) == 10
        assert run.max_temperature_c >= run.trajectory[0][1]
