"""Consistency: the MSR-level kernel vs the model-checked abstraction.

Both :class:`repro.kernel.suit_os.SuitOs` and
:mod:`repro.security.model_check` implement Listing 1.  This bridge
replays every abstract event sequence the model checker explores into
the real kernel object and compares the observable state (curve,
disable mask, timer armed) after each step — so the verified abstract
machine and the runnable kernel cannot drift apart.
"""

from itertools import product

import pytest

from repro.core.params import DEFAULT_PARAMS_INTEL
from repro.hardware.counters import DelaySpec
from repro.hardware.interface import SuitMsrInterface
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.kernel.handler import KernelCosts
from repro.kernel.suit_os import SuitOs
from repro.power.dvfs import CurveKind
from repro.security.model_check import EVENTS, INITIAL_STATE, step

#: Event spacing far above the deadline so "timer_fire" is always ripe,
#: with faultable events spaced below it handled via explicit resets.
_STEP_S = 1.0


def _fresh_kernel() -> SuitOs:
    kernel = SuitOs(
        msrs=SuitMsrInterface(),
        costs=KernelCosts(DelaySpec(0.34e-6), DelaySpec(0.77e-6)),
        params=DEFAULT_PARAMS_INTEL,
    )
    kernel.boot()
    return kernel


def _apply_to_kernel(kernel: SuitOs, event: str, time_s: float) -> bool:
    """Apply one abstract event to the kernel; False if inapplicable."""
    disabled = TRAPPED_OPCODES <= kernel.msrs.disabled_opcodes()
    if event == "faultable_instr":
        if disabled:
            kernel.on_disabled_opcode(Opcode.VOR, time_s)
        else:
            kernel.on_faultable_executed(time_s)
        return True
    if event == "timer_fire":
        if not kernel.timer.armed:
            return False
        kernel.on_timer_interrupt(kernel.timer.fires_at + 1e-9)
        return True
    if event == "voltage_done":
        # The kernel model applies regulator completions implicitly
        # (its MSR view has no pending notion); always consistent.
        return True
    raise ValueError(event)


def _kernel_observables(kernel: SuitOs):
    return (
        kernel.msrs.current_curve() is CurveKind.EFFICIENT,
        TRAPPED_OPCODES <= kernel.msrs.disabled_opcodes(),
        kernel.timer.armed,
    )


def _abstract_observables(state):
    return (
        state.curve == "E",
        state.disabled,
        state.timer_armed,
    )


@pytest.mark.parametrize("sequence", list(product(EVENTS, repeat=3)))
def test_kernel_matches_abstract_machine(sequence):
    kernel = _fresh_kernel()
    state = INITIAL_STATE
    t = 0.0
    for event in sequence:
        nxt = step(state, event)
        if nxt is None:
            continue  # event not enabled in the abstraction: skip both
        t += _STEP_S
        applied = _apply_to_kernel(kernel, event, t)
        if event == "voltage_done":
            # Physical-only event: abstract curve may move Cf -> CV,
            # which the MSR view cannot distinguish; advance the
            # abstraction and continue.
            state = nxt
            continue
        assert applied, (sequence, event)
        state = nxt
        k_eff, k_disabled, k_timer = _kernel_observables(kernel)
        a_eff, a_disabled, a_timer = _abstract_observables(state)
        assert k_disabled == a_disabled, (sequence, event)
        assert k_timer == a_timer, (sequence, event)
        assert k_eff == a_eff, (sequence, event)


def test_every_abstract_state_reachable_in_kernel():
    """Walk the canonical cycle and confirm the kernel visits the same
    observable states the checker enumerates."""
    kernel = _fresh_kernel()
    seen = {_kernel_observables(kernel)}
    t = 1.0
    kernel.on_disabled_opcode(Opcode.AESENC, t)
    seen.add(_kernel_observables(kernel))
    kernel.on_faultable_executed(t + 1e-6)
    seen.add(_kernel_observables(kernel))
    kernel.on_timer_interrupt(kernel.timer.fires_at + 1e-9)
    seen.add(_kernel_observables(kernel))
    # (efficient+disabled, conservative+enabled+armed) and back.
    assert (True, True, False) in seen
    assert (False, False, True) in seen
