"""End-to-end tests of the simulation service (acceptance criteria).

Asserted here, per the issue:

* >= 8 concurrent clients served with zero lost or duplicated
  responses;
* duplicate in-flight requests answered by a single simulation
  (verified via the ``simulations_executed`` / ``dedup_hits``
  counters);
* a killed worker process is retried transparently and the request
  still completes;
* saturation produces explicit backpressure rejections (with a
  retry-after hint) instead of unbounded queueing.

Plus: per-request timeouts, the result-cache fast path, graceful
drain, and a TCP server/client round-trip.
"""

import asyncio

import pytest

from repro.runtime.cache import ResultCache
from repro.service import (
    ServiceClient,
    ServiceConfig,
    SimRequest,
    SimulationService,
    start_tcp_server,
)

#: Thread-tier config: full concurrency semantics, no process spawn cost.
THREAD_CONFIG = dict(use_processes=False, n_shards=2, workers_per_shard=2,
                     batch_window_s=0.002, default_timeout_s=30.0)


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


class TestConcurrentClients:
    def test_eight_clients_zero_lost_or_duplicated(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                async def client(client_id):
                    requests = [
                        SimRequest("C" if client_id % 2 else "A",
                                   "557.xz", seed=client_id * 100 + i)
                        for i in range(5)
                    ]
                    responses = [await service.submit(q) for q in requests]
                    return requests, responses

                outcomes = await asyncio.gather(
                    *[client(i) for i in range(8)])
                return outcomes, service.metrics.snapshot()

        outcomes, snapshot = run(scenario())
        seen = []
        for requests, responses in outcomes:
            assert len(responses) == len(requests)  # nothing lost
            for request, response in zip(requests, responses):
                assert response.ok, response.error
                # Each response answers exactly the request that asked.
                assert response.request == request
                assert response.payload["workload"] == "557.xz"
                seen.append(request.canonical_key())
        assert len(seen) == 8 * 5
        assert len(set(seen)) == 8 * 5  # all distinct -> none duplicated
        counters = snapshot["counters"]
        assert counters["requests_completed"] == 40
        assert counters["simulations_executed"] == 40
        assert counters.get("requests_failed", 0) == 0

    def test_batching_actually_groups(self):
        async def scenario():
            config = ServiceConfig(use_processes=False, n_shards=1,
                                   workers_per_shard=1, max_batch_size=8,
                                   batch_window_s=0.02)
            async with SimulationService(config) as service:
                requests = [SimRequest("C", "557.xz", seed=i)
                            for i in range(8)]
                responses = await asyncio.gather(
                    *[service.submit(q) for q in requests])
                return responses, service.metrics.snapshot()

        responses, snapshot = run(scenario())
        assert all(r.ok for r in responses)
        counters = snapshot["counters"]
        # 8 requests must have shipped in far fewer batches.
        assert counters["batches_dispatched"] < 8
        occupancy = snapshot["histograms"]["batch_occupancy"]
        assert occupancy["max"] >= 2


class TestDedup:
    def test_identical_inflight_requests_run_once(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                request = SimRequest("C", "541.leela", seed=7)
                responses = await asyncio.gather(
                    *[service.submit(request) for _ in range(8)])
                return responses, service.metrics.snapshot()

        responses, snapshot = run(scenario())
        assert all(r.ok for r in responses)
        payloads = {str(sorted(r.payload.items())) for r in responses}
        assert len(payloads) == 1  # every waiter got the same answer
        counters = snapshot["counters"]
        assert counters["simulations_executed"] == 1
        assert counters["dedup_hits"] == 7
        sources = sorted(r.source for r in responses)
        assert sources.count("computed") == 1
        assert sources.count("dedup") == 7

    def test_different_requests_not_deduped(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                responses = await asyncio.gather(
                    *[service.submit(SimRequest("C", "557.xz", seed=i))
                      for i in range(4)])
                return responses, service.metrics.snapshot()

        responses, snapshot = run(scenario())
        assert all(r.ok for r in responses)
        assert snapshot["counters"]["simulations_executed"] == 4
        assert snapshot["counters"].get("dedup_hits", 0) == 0


class TestWorkerCrashRetry:
    def test_killed_worker_is_retried_transparently(self, tmp_path):
        async def scenario():
            config = ServiceConfig(use_processes=True, n_shards=1,
                                   workers_per_shard=1, max_retries=2,
                                   retry_backoff_s=0.02,
                                   batch_window_s=0.0)
            sentinel = tmp_path / "crash-once"
            async with SimulationService(config) as service:
                response = await service.submit(
                    SimRequest("C", f"__crash__:{sentinel}"))
                return response, service.metrics.snapshot()

        response, snapshot = run(scenario())
        assert response.ok, response.error
        assert response.payload["crash_recovered"] is True
        assert response.retries >= 1
        assert snapshot["counters"]["worker_restarts"] >= 1
        assert snapshot["counters"]["batch_retries"] >= 1

    def test_real_simulation_on_process_tier(self):
        async def scenario():
            config = ServiceConfig(use_processes=True, n_shards=1,
                                   workers_per_shard=1, batch_window_s=0.0)
            async with SimulationService(config) as service:
                return await service.submit(SimRequest("C", "557.xz"))

        response = run(scenario())
        assert response.ok, response.error
        assert "Xeon" in response.payload["cpu_name"]
        assert response.payload["n_exceptions"] >= 0


class TestBackpressure:
    def test_saturation_rejects_instead_of_queueing(self):
        async def scenario():
            config = ServiceConfig(use_processes=False, n_shards=1,
                                   workers_per_shard=1, max_queue_depth=2,
                                   max_batch_size=1, batch_window_s=0.0,
                                   default_timeout_s=10.0)
            async with SimulationService(config) as service:
                requests = [SimRequest("C", "__sleep__:0.1", seed=i)
                            for i in range(10)]
                responses = await asyncio.gather(
                    *[service.submit(q) for q in requests])
                return responses, service.metrics.snapshot()

        responses, snapshot = run(scenario())
        statuses = [r.status for r in responses]
        rejected = [r for r in responses if r.status == "rejected"]
        assert rejected, f"expected rejections, got {statuses}"
        assert all(r.retry_after_s and r.retry_after_s > 0
                   for r in rejected)
        # Every request got exactly one definitive answer.
        assert statuses.count("ok") + len(rejected) == 10
        assert snapshot["counters"]["requests_rejected"] == len(rejected)

    def test_invalid_request_fails_without_scheduling(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                response = await service.submit(
                    SimRequest("C", "557.xz", strategy="bogus"))
                return response, service.metrics.snapshot()

        response, snapshot = run(scenario())
        assert response.status == "failed"
        assert "strategy" in response.error
        assert snapshot["counters"]["requests_invalid"] == 1
        assert snapshot["counters"].get("simulations_executed", 0) == 0

    def test_unknown_workload_fails_in_worker(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                return await service.submit(SimRequest("C", "no.such"))

        response = run(scenario())
        assert response.status == "failed"
        assert "unknown workload" in response.error


class TestTimeouts:
    def test_deadline_bounds_the_wait(self):
        async def scenario():
            config = ServiceConfig(use_processes=False, n_shards=1,
                                   workers_per_shard=1, batch_window_s=0.0)
            async with SimulationService(config) as service:
                return await service.submit(
                    SimRequest("C", "__sleep__:1.0", deadline_s=0.05))

        response = run(scenario())
        assert response.status == "timeout"
        assert "0.05" in response.error


class TestCacheIntegration:
    def test_second_submission_served_from_cache(self, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path / "cache")
            config = ServiceConfig(**THREAD_CONFIG)
            async with SimulationService(config, cache=cache) as service:
                request = SimRequest("C", "557.xz", seed=11)
                first = await service.submit(request)
                second = await service.submit(request)
                return first, second, service.metrics.snapshot()

        first, second, snapshot = run(scenario())
        assert first.ok and second.ok
        assert first.source == "computed"
        assert second.source == "cache"
        assert first.payload == second.payload
        assert snapshot["counters"]["cache_hits"] == 1
        assert snapshot["counters"]["simulations_executed"] == 1


class TestGracefulShutdown:
    def test_drain_completes_admitted_work(self):
        async def scenario():
            config = ServiceConfig(use_processes=False, n_shards=1,
                                   workers_per_shard=2,
                                   batch_window_s=0.002)
            service = SimulationService(config)
            await service.start()
            pending = [
                asyncio.get_running_loop().create_task(
                    service.submit(SimRequest("C", "557.xz", seed=i)))
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await service.stop(drain=True)
            responses = await asyncio.gather(*pending)
            late = await service.submit(SimRequest("C", "557.xz", seed=99))
            return responses, late

        responses, late = run(scenario())
        assert all(r.ok for r in responses), \
            [(r.status, r.error) for r in responses]
        assert late.status == "rejected"
        assert "shutting down" in late.error

    def test_stop_without_drain_fails_queued_work(self):
        async def scenario():
            config = ServiceConfig(use_processes=False, n_shards=1,
                                   workers_per_shard=1, max_batch_size=1,
                                   batch_window_s=0.0)
            service = SimulationService(config)
            await service.start()
            pending = [
                asyncio.get_running_loop().create_task(
                    service.submit(SimRequest("C", "__sleep__:0.05",
                                              seed=i)))
                for i in range(6)
            ]
            await asyncio.sleep(0.01)
            await service.stop(drain=False)
            return await asyncio.gather(*pending)

        responses = run(scenario())
        assert all(r.status in ("ok", "failed") for r in responses)
        assert any(r.status == "failed" for r in responses)


class TestTcpTransport:
    def test_client_server_roundtrip(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                server = await start_tcp_server(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect("127.0.0.1", port)
                try:
                    pong = await client.ping()
                    responses = await client.submit_many([
                        SimRequest("C", "557.xz", seed=1),
                        SimRequest("A", "nginx", seed=2),
                        SimRequest("C", "557.xz", seed=1),  # cache/dedup
                    ])
                    metrics = await client.metrics()
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()
                return pong, responses, metrics

        pong, responses, metrics = run(scenario())
        assert pong["op"] == "pong"
        assert [r.ok for r in responses] == [True, True, True]
        assert responses[0].request.workload == "557.xz"
        assert responses[1].request.cpu == "A"
        assert metrics["counters"]["requests_submitted"] == 3

    def test_bad_payload_raises_client_side(self):
        async def scenario():
            async with SimulationService(
                    ServiceConfig(**THREAD_CONFIG)) as service:
                server = await start_tcp_server(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(ValueError):
                        await client.submit({"cpu": "C",
                                             "workload": "557.xz",
                                             "bogus_field": 1})
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()

        run(scenario())
