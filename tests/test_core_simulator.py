"""Behavioural tests of the event-based trace simulator."""

import numpy as np
import pytest

from repro.core.params import DEFAULT_PARAMS_INTEL, StrategyParams
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.isa.opcodes import Opcode
from repro.workloads.generator import single_burst_trace
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import FaultableTrace


def _profile(name="sim-test", n=50_000_000, ipc=1.5):
    return WorkloadProfile(
        name=name, suite="SPECint", n_instructions=n, ipc=ipc,
        efficient_occupancy=0.5, n_episodes=1, dense_gap=1000,
        imul_density=0.0, opcode_mix={Opcode.VOR: 1.0})


def _trace(indices, name="sim-test", n=50_000_000, ipc=1.5):
    indices = np.asarray(indices, dtype=np.int64)
    return FaultableTrace(
        name=name, n_instructions=n, ipc=ipc, indices=indices,
        opcodes=np.zeros(indices.size, dtype=np.uint8),
        opcode_table=(Opcode.VOR,))


def _run(cpu, trace, strategy_name="fV", offset=-0.097, params=None,
         timeline=False, harden=True, profile=None):
    params = params or DEFAULT_PARAMS_INTEL
    sim = TraceSimulator(
        cpu=cpu, profile=profile or _profile(trace.name, trace.n_instructions,
                                             trace.ipc),
        trace=trace, strategy=strategy_for(strategy_name, params),
        voltage_offset=offset, seed=0, record_timeline=timeline,
        harden_imul=harden)
    return sim.run()


class TestEmptyTrace:
    def test_runs_entirely_on_efficient_curve(self, cpu_c):
        result = _run(cpu_c, _trace([]), harden=False)
        assert result.n_exceptions == 0
        assert result.efficient_occupancy == pytest.approx(1.0)
        # E is faster than baseline (undervolting boost).
        assert result.perf_change > 0
        assert result.power_change < -0.10

    def test_imul_tax_applied(self, cpu_c):
        profile = WorkloadProfile(
            name="imul-heavy", suite="SPECint", n_instructions=50_000_000,
            ipc=2.4, efficient_occupancy=0.5, n_episodes=1, dense_gap=1000,
            imul_density=0.0099, imul_chain_fraction=0.9,
            opcode_mix={Opcode.VOR: 1.0})
        trace = _trace([], name="imul-heavy", ipc=2.4)
        taxed = _run(cpu_c, trace, harden=True, profile=profile)
        untaxed = _run(cpu_c, trace, harden=False, profile=profile)
        assert taxed.duration_s > untaxed.duration_s
        ratio = taxed.duration_s / untaxed.duration_s
        assert ratio == pytest.approx(1.015, abs=0.01)


class TestSingleEvent:
    def test_one_trap_one_switch_cycle(self, cpu_c):
        result = _run(cpu_c, _trace([25_000_000]), timeline=True)
        assert result.n_exceptions == 1
        assert result.n_timer_fires == 1
        states = [s.split("/")[0] for _, s in result.timeline]
        assert "Cf" in states
        assert states[-1] == "E"

    def test_conservative_time_at_least_deadline(self, cpu_c):
        result = _run(cpu_c, _trace([25_000_000]))
        cons = result.state_time["Cf"] + result.state_time["CV"]
        assert cons >= DEFAULT_PARAMS_INTEL.deadline_s * 0.9

    def test_exception_cost_charged(self, cpu_c):
        result = _run(cpu_c, _trace([25_000_000]))
        assert result.state_time["stall"] > 0


class TestDeadlineMechanism:
    def test_events_within_deadline_do_not_retrap(self, cpu_c):
        # 10 events, 10k instructions apart (~2 us at CV): one trap only.
        base = 25_000_000
        events = [base + 10_000 * k for k in range(10)]
        result = _run(cpu_c, _trace(events))
        assert result.n_exceptions == 1
        assert result.n_timer_fires == 1

    def test_events_beyond_deadline_retrap(self, cpu_c):
        # Two events 25M instructions apart (~5.5 ms >> 30 us deadline).
        result = _run(cpu_c, _trace([10_000_000, 35_000_000]))
        assert result.n_exceptions == 2
        assert result.n_timer_fires == 2

    def test_longer_deadline_keeps_conservative(self, cpu_c):
        events = [10_000_000 + 500_000 * k for k in range(20)]  # ~110 us gaps
        short = _run(cpu_c, _trace(events),
                     params=StrategyParams(30e-6, 450e-6, 3, 14.0))
        long = _run(cpu_c, _trace(events),
                    params=StrategyParams(300e-6, 450e-6, 3, 14.0))
        assert long.n_exceptions < short.n_exceptions


class TestThrashingPrevention:
    def test_thrash_stretch_reduces_exceptions(self, cpu_c):
        # Gaps slightly above the deadline: the classic thrashing pattern.
        gap = 200_000  # ~44 us at CV, deadline is 30 us
        events = [5_000_000 + gap * k for k in range(60)]
        with_tp = _run(cpu_c, _trace(events),
                       params=StrategyParams(30e-6, 450e-6, 3, 14.0))
        without_tp = _run(cpu_c, _trace(events),
                          params=StrategyParams(30e-6, 450e-6, 1000, 14.0))
        assert with_tp.n_thrash_stretches > 0
        assert with_tp.n_exceptions < without_tp.n_exceptions


class TestFVStateSequence:
    def test_long_burst_reaches_cv(self, cpu_c):
        trace = single_burst_trace("sim-test", 50_000_000, 1.5,
                                   10_000_000, 15_000_000, 500.0,
                                   opcode=Opcode.VOR)
        result = _run(cpu_c, trace, timeline=True)
        states = [s.split("/")[0] for _, s in result.timeline]
        seq = [states[0]]
        for s in states[1:]:
            if s != seq[-1]:
                seq.append(s)
        assert seq == ["E", "Cf", "CV", "E"]

    def test_short_burst_cancels_voltage_change(self, cpu_c):
        # Burst shorter than the 335 us settle: never reaches CV.
        trace = single_burst_trace("sim-test", 50_000_000, 1.5,
                                   10_000_000, 300_000, 500.0,
                                   opcode=Opcode.VOR)
        result = _run(cpu_c, trace, timeline=True)
        states = {s.split("/")[0] for _, s in result.timeline}
        assert "CV" not in states
        assert "Cf" in states


class TestStrategiesCompared:
    def _events(self):
        return [5_000_000 + 2_000_000 * k for k in range(10)]

    def test_voltage_strategy_stalls_most(self, cpu_c):
        f = _run(cpu_c, _trace(self._events()), "f")
        v = _run(cpu_c, _trace(self._events()), "V")
        assert v.state_time["stall"] > f.state_time["stall"]

    def test_emulation_never_switches(self, cpu_c):
        result = _run(cpu_c, _trace(self._events()), "e")
        assert result.n_switches == 0
        assert result.state_time["Cf"] == 0.0
        assert result.state_time["CV"] == 0.0
        assert result.n_exceptions == 10

    def test_emulation_power_stays_efficient(self, cpu_c):
        result = _run(cpu_c, _trace(self._events()), "e")
        points = cpu_c.operating_points(-0.097)
        assert result.power_ratio == pytest.approx(points.power_e, rel=0.01)

    def test_voltage_strategy_needs_voltage_control(self, cpu_b):
        with pytest.raises(ValueError):
            _run(cpu_b, _trace(self._events()), "V")

    def test_frequency_strategy_works_on_amd(self, cpu_b):
        from repro.core.params import DEFAULT_PARAMS_AMD
        result = _run(cpu_b, _trace(self._events()), "f",
                      params=DEFAULT_PARAMS_AMD)
        assert result.n_exceptions >= 1
        assert result.duration_s > 0


class TestAccountingInvariants:
    def test_state_times_sum_to_duration(self, cpu_c, small_trace,
                                         small_profile):
        sim = TraceSimulator(cpu_c, small_profile, small_trace,
                             strategy_for("fV", DEFAULT_PARAMS_INTEL),
                             -0.097, seed=0)
        result = sim.run()
        assert sum(result.state_time.values()) == pytest.approx(
            result.duration_s, rel=1e-6)

    def test_power_between_extremes(self, cpu_c, small_trace, small_profile):
        sim = TraceSimulator(cpu_c, small_profile, small_trace,
                             strategy_for("fV", DEFAULT_PARAMS_INTEL),
                             -0.097, seed=0)
        result = sim.run()
        points = cpu_c.operating_points(-0.097)
        assert points.power_cf * 0.99 <= result.power_ratio <= 1.01

    def test_positive_offset_rejected(self, cpu_c, small_trace, small_profile):
        with pytest.raises(ValueError):
            TraceSimulator(cpu_c, small_profile, small_trace,
                           strategy_for("fV", DEFAULT_PARAMS_INTEL),
                           +0.05)

    def test_deterministic_given_seed(self, cpu_c, small_trace, small_profile):
        results = [
            TraceSimulator(cpu_c, small_profile, small_trace,
                           strategy_for("fV", DEFAULT_PARAMS_INTEL),
                           -0.097, seed=9).run()
            for _ in range(2)
        ]
        assert results[0].duration_s == results[1].duration_s
        assert results[0].energy_rel == results[1].energy_rel
