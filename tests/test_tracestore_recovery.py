"""Crash-recovery tests for the shared trace store.

The store's failure model: a publisher can die at any instruction
between creating its shm segment and publishing the manifest; a reader
can race the owner's teardown; an owner can die without running
cleanup at all.  Each case must end in a miss (and eventually a
reclaimed segment), never a wedged store, a leaked segment, or an
attach to garbage.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.isa.opcodes import Opcode
from repro.obs.registry import MetricsRegistry, set_registry
from repro.testkit.chaos import (
    CRASH_EXIT_CODE,
    ChaosController,
    FaultPlan,
    FaultSpec,
)
from repro.workloads.trace import FaultableTrace
from repro.workloads.tracestore import (
    OWNER_MARKER,
    SharedTraceStore,
    gc_stale_stores,
)

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _trace(n_events=500, name="recov"):
    rng = np.random.default_rng(7)
    indices = np.sort(rng.choice(400_000, size=n_events, replace=False))
    return FaultableTrace(
        name=name, n_instructions=500_000, ipc=1.4,
        indices=indices.astype(np.int64),
        opcodes=(indices % 2).astype(np.uint8),
        opcode_table=(Opcode.VOR, Opcode.VPCMP))


@pytest.fixture
def store():
    s = SharedTraceStore.create("recov")
    yield s
    s.cleanup()


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def _segment_exists(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except OSError:
        return False
    shm.close()
    return True


def _make_stale_store(root: Path, pid: int) -> dict:
    """Fabricate the on-disk shape a crashed owner leaves behind:
    one fully published trace (manifest + segment) and one mid-publish
    orphan (pending marker + segment, no manifest)."""
    root.mkdir(parents=True)
    (root / OWNER_MARKER).write_text(json.dumps({"pid": pid,
                                                 "tag": "stale"}))
    published = shared_memory.SharedMemory(
        name=f"repro_test_pub_{os.getpid()}", create=True, size=64)
    orphan = shared_memory.SharedMemory(
        name=f"repro_test_orp_{os.getpid()}", create=True, size=64)
    (root / "aaaa.json").write_text(json.dumps(
        {"version": 1, "shm": published.name, "n_events": 1}))
    (root / "bbbb.pending").write_text(json.dumps(
        {"shm": orphan.name, "pid": pid}))
    published.close()
    orphan.close()
    return {"published": published.name, "orphan": orphan.name}


def _dead_pid() -> int:
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestMidPublishCrash:
    _CHILD = """
import numpy as np
from pathlib import Path
from repro.isa.opcodes import Opcode
from repro.workloads.trace import FaultableTrace
from repro.workloads.tracestore import SharedTraceStore

rng = np.random.default_rng(7)
indices = np.sort(rng.choice(400_000, size=500, replace=False))
trace = FaultableTrace(
    name="recov", n_instructions=500_000, ipc=1.4,
    indices=indices.astype(np.int64),
    opcodes=(indices % 2).astype(np.uint8),
    opcode_table=(Opcode.VOR, Opcode.VPCMP))
store = SharedTraceStore(Path({root!r}), owner=False)
store.publish("survives", trace)   # segment-site invocation 1: safe
store.publish("orphaned", trace)   # invocation 2: crash fires here
raise SystemExit(99)  # never reached
"""

    def test_publisher_killed_between_segment_and_manifest(self, store):
        """A real child process dies inside _write_segment (after the
        segment is filled, before the manifest lands); the store must
        recover: miss on attach, reap on republish, no leaked segment."""
        plan = FaultPlan.generate(
            0, [FaultSpec("tracestore.segment", "crash", 1.0)], 10)
        controller = ChaosController(plan).activate()
        try:
            env = dict(os.environ, PYTHONPATH=_SRC)
            proc = subprocess.run(
                [sys.executable, "-c",
                 self._CHILD.format(root=str(store.root))],
                env=env, capture_output=True, text=True, timeout=120)
        finally:
            controller.cleanup()
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr

        # The first publish completed; the second died mid-window.
        assert store.contains("survives")
        assert not store.contains("orphaned")
        digest = SharedTraceStore._digest("orphaned")
        pending = store._pending_path(digest)
        assert pending.exists(), "crash window must leave the marker"
        orphan_shm = json.loads(pending.read_text())["shm"]
        assert _segment_exists(orphan_shm), "crashed after creating it"

        # A reader sees a plain miss, not garbage.
        assert store.get("orphaned") is None

        # The next publisher reaps the orphan and wins cleanly.
        shared = store.publish("orphaned", _trace())
        assert shared is not None
        assert store.contains("orphaned")
        assert not pending.exists()
        assert not _segment_exists(orphan_shm), "orphan must be unlinked"
        fresh = store.get("orphaned")
        np.testing.assert_array_equal(fresh.indices, _trace().indices)

    def test_reap_pending_without_segment(self, store):
        """A publisher that died after the marker but *before* segment
        creation leaves only the marker; republish must still work."""
        digest = SharedTraceStore._digest("k")
        store._pending_path(digest).write_text(json.dumps(
            {"shm": "repro_never_created", "pid": 1}))
        shared = store.publish("k", _trace())
        assert shared is not None
        assert not store._pending_path(digest).exists()


class TestAttachVsCleanupRace:
    def test_attach_after_owner_cleanup_is_a_miss(self, store):
        store.publish("k", _trace())
        reader = SharedTraceStore(store.root, owner=False)
        store.cleanup()
        assert reader.get("k") is None
        reader.close()

    def test_segment_unlinked_between_manifest_and_attach(self, store,
                                                          registry):
        """The narrow race: the manifest read succeeds, then the owner
        unlinks the segment before the reader maps it.  Injected at the
        tracestore.shm site; must be a counted miss."""
        store.publish("k", _trace())
        reader = SharedTraceStore(store.root, owner=False)
        plan = FaultPlan.generate(
            0, [FaultSpec("tracestore.shm", "unlink", 1.0, max_fires=1)], 5)
        with ChaosController(plan):
            assert reader.get("k") is None
        assert registry.counter("trace_store_errors_total").value() == 1
        reader.close()

    def test_stale_manifest_larger_than_segment_is_refused(self, store):
        """A manifest promising more events than the segment holds must
        not hand out a view into garbage."""
        store.publish("k", _trace(n_events=100))
        digest = SharedTraceStore._digest("k")
        meta_path = store._meta_path(digest)
        meta = json.loads(meta_path.read_text())
        meta["n_events"] = meta["n_events"] * 1000
        meta_path.write_text(json.dumps(meta))
        reader = SharedTraceStore(store.root, owner=False)
        assert reader.get("k") is None
        reader.close()

    def test_corrupt_manifest_is_a_miss(self, store):
        store.publish("k", _trace())
        digest = SharedTraceStore._digest("k")
        store._meta_path(digest).write_text("{half a manifest")
        reader = SharedTraceStore(store.root, owner=False)
        assert reader.get("k") is None
        reader.close()


class TestStaleStoreGc:
    def test_dead_owner_store_is_collected(self, tmp_path, registry):
        names = _make_stale_store(tmp_path / "repro-stale-1", _dead_pid())
        assert gc_stale_stores(tmp_root=tmp_path) == 1
        assert not (tmp_path / "repro-stale-1").exists()
        assert not _segment_exists(names["published"])
        assert not _segment_exists(names["orphan"])
        assert registry.counter("trace_store_gc_total").value() == 1

    def test_live_owner_store_is_left_alone(self, tmp_path, registry):
        names = _make_stale_store(tmp_path / "repro-stale-2", os.getpid())
        try:
            assert gc_stale_stores(tmp_root=tmp_path) == 0
            assert (tmp_path / "repro-stale-2").exists()
            assert _segment_exists(names["published"])
        finally:
            from repro.workloads.tracestore import _destroy_store_dir

            _destroy_store_dir(tmp_path / "repro-stale-2")

    def test_markerless_directory_is_left_alone(self, tmp_path):
        (tmp_path / "repro-other-tool").mkdir()
        (tmp_path / "repro-other-tool" / "data.json").write_text("{}")
        assert gc_stale_stores(tmp_root=tmp_path) == 0
        assert (tmp_path / "repro-other-tool" / "data.json").exists()

    def test_create_collects_leftovers_in_system_tempdir(self):
        """SharedTraceStore.create() runs the GC, so a crashed run's
        leftovers vanish the next time anyone starts a store."""
        import tempfile

        stale_root = Path(tempfile.gettempdir()) / \
            f"repro-gctest-{os.getpid()}"
        names = _make_stale_store(stale_root, _dead_pid())
        try:
            fresh = SharedTraceStore.create("gctest")
            try:
                assert not stale_root.exists()
                assert not _segment_exists(names["published"])
            finally:
                fresh.cleanup()
        finally:
            from repro.workloads.tracestore import _destroy_store_dir

            _destroy_store_dir(stale_root)
