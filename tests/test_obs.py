"""Tests for the unified telemetry layer (``repro.obs``)."""

from __future__ import annotations

import asyncio
import json
import logging
import threading

import pytest

from repro.obs import (
    Counter,
    JsonLogFormatter,
    MetricsRegistry,
    NullTracer,
    Tracer,
    TRACK_SIM,
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
    logging_setup,
    parse_prometheus,
    profiled,
    render_prometheus,
    set_registry,
    set_tracer,
    validate_chrome_trace,
)
from repro.obs.registry import Histogram, latency_bounds


@pytest.fixture
def registry():
    """A fresh default registry, restored after the test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture
def tracer():
    """A recording tracer installed for the test, removed after."""
    recording = enable_tracing(capacity=10_000)
    yield recording
    disable_tracing()


class TestRegistryConcurrency:
    def test_threaded_counter_increments(self, registry):
        counter = registry.counter("hits_total", "hits")
        n_threads, n_incs = 8, 1000

        def work():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == n_threads * n_incs

    def test_threaded_histogram_observes(self, registry):
        hist = registry.histogram("lat", bounds=[0.1, 1.0, 10.0])

        def work():
            for i in range(500):
                hist.observe(0.05 * (1 + i % 3))

        threads = [threading.Thread(target=work) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.child().n == 3000


class TestRegistrySemantics:
    def test_get_or_create_idempotent(self, registry):
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total")
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self, registry):
        registry.counter("x_total", label_names=("cpu",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("x_total", label_names=("strategy",))

    def test_labelled_series(self, registry):
        traps = registry.counter("traps_total", label_names=("cpu",))
        traps.inc(cpu="A")
        traps.inc(2, cpu="C")
        assert traps.value(cpu="A") == 1
        assert traps.value(cpu="C") == 2
        snap = registry.snapshot()
        assert snap["counters"]['traps_total{cpu="C"}'] == 2

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("c_total").inc(-1)

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")

    def test_gauge_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        assert g.value() is None
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value() == 4


class TestHistogramPercentiles:
    def test_empty_returns_none(self):
        hist = Histogram([1.0, 2.0])
        assert hist.percentile(0.5) is None
        assert hist.mean is None

    def test_single_sample(self):
        hist = Histogram([1.0, 2.0, 4.0])
        hist.observe(1.5)
        assert hist.percentile(0.0) == 2.0
        assert hist.percentile(0.5) == 2.0
        assert hist.percentile(1.0) == 2.0

    def test_out_of_range_p_raises(self):
        hist = Histogram([1.0])
        hist.observe(0.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.percentile(1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.percentile(-0.1)

    def test_overflow_bucket_reports_max_seen(self):
        hist = Histogram([1.0])
        hist.observe(50.0)
        assert hist.percentile(0.99) == 50.0

    def test_latency_bounds_ascending(self):
        bounds = latency_bounds()
        assert bounds == sorted(bounds)
        assert bounds[-1] >= 120.0


class TestTracer:
    def test_chrome_export_round_trips_with_monotonic_ts(self, tmp_path):
        tracer = Tracer(capacity=100)
        tracer.instant("b", "sim", ts_s=2.0, track=TRACK_SIM)
        tracer.instant("a", "sim", ts_s=1.0, track=TRACK_SIM)
        tracer.complete("span", "engine", ts_s=0.5, dur_s=0.25)
        path = tracer.export_chrome(tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == 3
        per_track: dict = {}
        for event in trace["traceEvents"]:
            if event["ph"] == "M":
                continue
            per_track.setdefault(event["pid"], []).append(event["ts"])
        for track_ts in per_track.values():
            assert track_ts == sorted(track_ts)

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.instant(f"e{i}", "sim", ts_s=float(i))
        assert len(tracer) == 3
        assert tracer.n_dropped == 2
        assert [e.name for e in tracer.events()] == ["e2", "e3", "e4"]

    def test_null_tracer_records_nothing(self):
        null = NullTracer()
        assert null.enabled is False
        null.instant("x", "sim")
        null.complete("y", "sim", ts_s=0.0, dur_s=1.0)
        with null.span("z"):
            pass
        assert len(null) == 0

    def test_enable_disable_swaps_global(self):
        assert get_tracer().enabled is False
        tracer = enable_tracing(capacity=10)
        try:
            assert get_tracer() is tracer
            assert get_tracer().enabled is True
        finally:
            disable_tracing()
        assert get_tracer().enabled is False

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "?", "ts": 0}]})
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]})

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer(capacity=10)
        tracer.instant("a", "sim", ts_s=1.0)
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "a"


class TestProfiled:
    def test_records_histogram_and_span(self, registry, tracer):
        with profiled("step one", cat="engine"):
            pass
        hist = registry.get("step_one_seconds")
        assert hist is not None and hist.child().n == 1
        assert [e.name for e in tracer.events()] == ["step one"]

    def test_no_span_when_disabled(self, registry):
        with profiled("quiet step"):
            pass
        assert registry.get("quiet_step_seconds").child().n == 1
        assert len(get_tracer()) == 0


class TestPrometheus:
    def test_render_and_parse_round_trip(self, registry):
        registry.counter("hits_total", "hits").inc(3)
        registry.gauge("depth", "queue depth").set(7)
        registry.histogram("lat_s", "latency", bounds=[0.1, 1.0]).observe(0.5)
        text = render_prometheus(registry)
        assert "# TYPE hits_total counter" in text
        assert "# TYPE lat_s histogram" in text
        parsed = parse_prometheus(text)
        assert parsed["hits_total"] == 3
        assert parsed["depth"] == 7
        assert parsed['lat_s_bucket{le="1.0"}'] == 1
        assert parsed['lat_s_bucket{le="+Inf"}'] == 1
        assert parsed["lat_s_count"] == 1

    def test_counter_gets_total_suffix(self, registry):
        registry.counter("requests_submitted").inc()
        text = render_prometheus(registry)
        assert "requests_submitted_total 1" in text


class TestSimulatorTracing:
    def _run_one(self):
        from repro.core.suit import SuitSystem
        from repro.workloads.spec import SPEC_PROFILES

        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097, seed=0)
        return suit.run_profile(SPEC_PROFILES["502.gcc"])

    def test_trap_and_pstate_events_recorded(self, tracer):
        result = self._run_one()
        names = {e.name for e in tracer.events()}
        assert "#DO trap" in names
        assert "p-state change" in names
        assert result.n_exceptions > 0

    def test_disabled_tracer_unchanged_result(self, tracer):
        traced = self._run_one()
        disable_tracing()
        untraced = self._run_one()
        assert traced.duration_s == untraced.duration_s
        assert traced.energy_rel == untraced.energy_rel
        assert traced.n_exceptions == untraced.n_exceptions


class TestTimelineTruncation:
    def test_truncation_flag_set_when_cap_hit(self, monkeypatch):
        import repro.core.simulator as simulator
        from repro.core.suit import SuitSystem
        from repro.workloads.spec import SPEC_PROFILES

        monkeypatch.setattr(simulator, "_TIMELINE_CAP", 4)
        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097, seed=0)
        result = suit.run_profile(SPEC_PROFILES["502.gcc"],
                                  record_timeline=True)
        assert result.timeline_truncated is True
        assert len(result.timeline) == 4

    def test_flag_clear_without_cap(self):
        from repro.core.suit import SuitSystem
        from repro.workloads.spec import SPEC_PROFILES

        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097, seed=0)
        result = suit.run_profile(SPEC_PROFILES["520.omnetpp"],
                                  record_timeline=True)
        assert result.timeline_truncated is False


class TestServiceMetricsVerb:
    def test_metrics_verb_returns_prometheus_text(self):
        from repro.service import (
            ServiceConfig,
            SimulationService,
            start_tcp_server,
        )
        from repro.service.client import ServiceClient

        async def scenario():
            config = ServiceConfig(n_shards=1, workers_per_shard=1,
                                   use_processes=False)
            async with SimulationService(config) as service:
                server = await start_tcp_server(service, port=0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    text = await client.metrics_text()
                    snap = await client.metrics()
                finally:
                    await client.close()
                server.close()
                await server.wait_closed()
                return text, snap

        text, snap = asyncio.run(scenario())
        parsed = parse_prometheus(text)
        assert parsed["requests_submitted_total"] == 0
        assert parsed["queue_depth"] == 0
        assert 'batch_occupancy_bucket{le="+Inf"}' in parsed
        assert snap["counters"]["requests_submitted"] == 0

    def test_trace_verb_reports_disabled(self):
        from repro.service import (
            ServiceConfig,
            SimulationService,
            start_tcp_server,
        )
        from repro.service.client import ServiceClient

        async def scenario():
            config = ServiceConfig(n_shards=1, workers_per_shard=1,
                                   use_processes=False)
            async with SimulationService(config) as service:
                server = await start_tcp_server(service, port=0)
                port = server.sockets[0].getsockname()[1]
                client = await ServiceClient.connect(port=port)
                try:
                    return await client.trace()
                finally:
                    await client.close()
                    server.close()
                    await server.wait_closed()

        trace = asyncio.run(scenario())
        assert trace["enabled"] is False
        assert trace["events"] == []


class TestLogging:
    def test_json_formatter_emits_json_lines(self):
        record = logging.LogRecord("repro.test", logging.INFO, __file__, 1,
                                   "hello %s", ("world",), None)
        line = JsonLogFormatter().format(record)
        payload = json.loads(line)
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"

    def test_setup_idempotent_and_level(self):
        logger = logging_setup("DEBUG")
        logger = logging_setup("INFO")
        assert len(logger.handlers) == 1
        assert logger.level == logging.INFO

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            logging_setup("LOUD")


class TestTraceCli:
    def test_trace_experiment_writes_valid_chrome_trace(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        code = main(["trace", "fig6_fv_timeline", "--out", str(out),
                     "--validate"])
        assert code == 0
        trace = json.loads(out.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "#DO trap" in names
        assert "p-state change" in names
        assert "trace validates" in capsys.readouterr().out
        # The CLI restores the no-op tracer afterwards.
        assert get_tracer().enabled is False

    def test_unknown_experiment_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["trace", "not_an_experiment", "--out", "/tmp/x.json"])


class TestHistogramWindow:
    def test_window_forgets_the_warm_up(self):
        from repro.obs.registry import latency_bounds

        histogram = Histogram(latency_bounds())
        for _ in range(10):
            histogram.observe(3.0)        # cold warm-up
        since = histogram.snapshot()
        for _ in range(90):
            histogram.observe(0.002)      # steady state
        assert histogram.percentile(0.95) >= 3.0    # cumulative remembers
        windowed = histogram.window(since)
        assert windowed.n == 90
        assert windowed.percentile(0.95) < 0.01     # window forgets

    def test_none_or_stale_snapshot_returns_cumulative(self):
        histogram = Histogram([1.0])
        histogram.observe(0.5)
        assert histogram.window(None).n == 1
        other = Histogram([1.0, 2.0])     # mismatched bounds
        assert histogram.window(other.snapshot()).n == 1


class TestCardinalityGuard:
    def test_new_series_collapse_onto_overflow(self):
        from repro.obs.registry import (
            OVERFLOW_COUNTER,
            OVERFLOW_LABEL_VALUE,
        )

        registry = MetricsRegistry(max_series_per_metric=3)
        counter = registry.counter("rpc_total", "rpcs",
                                   label_names=("peer",))
        for i in range(10):
            counter.inc(peer=f"peer-{i}")
        series = counter.series()
        assert len(series) <= 4  # 3 real + the overflow sentinel
        assert series[(OVERFLOW_LABEL_VALUE,)] == 7
        # Established series keep incrementing normally.
        counter.inc(peer="peer-0")
        assert counter.series()[("peer-0",)] == 2
        # ... and the overflow is observable as a metric itself.
        snapshot = registry.snapshot()
        overflow = [(k, v) for k, v in snapshot["counters"].items()
                    if k.startswith(OVERFLOW_COUNTER)]
        assert sum(v for _, v in overflow) == 7

    def test_unlabelled_metrics_unaffected(self):
        registry = MetricsRegistry(max_series_per_metric=1)
        counter = registry.counter("plain_total", "plain")
        for _ in range(5):
            counter.inc()
        assert counter.value() == 5

    def test_bound_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series_per_metric=0)


class TestCounterExemplars:
    def test_latest_exemplar_per_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("reroutes_total", "reroutes",
                                   label_names=("reason",))
        counter.inc(reason="timeout", exemplar="aaaa")
        counter.inc(reason="timeout", exemplar="bbbb")
        counter.inc(reason="connection")
        assert counter.exemplars()[("timeout",)] == "bbbb"
        assert ("connection",) not in counter.exemplars()

    def test_exemplars_in_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "x", label_names=("k",))
        counter.inc(k="v", exemplar="cafe")
        assert "exemplars" in registry.snapshot()
