"""Tests for AES decryption and AES-128-GCM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulation.aes import aes128_encrypt_block, aesenc, aesenclast, aes128_expand_key
from repro.emulation.aes_decrypt import (
    INV_SBOX,
    aes128_decrypt_block,
    aesdec,
    aesdeclast,
    aesimc,
)
from repro.emulation.gcm import Aes128Gcm, ghash, ghash_mul, ghash_mul_via_clmul
from repro.emulation.vector import Vec128

_FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
_FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
_FIPS_CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestAesDecrypt:
    def test_fips_vector_decrypts(self):
        assert aes128_decrypt_block(_FIPS_CIPHER, _FIPS_KEY) == _FIPS_PLAIN

    @settings(max_examples=15)
    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    def test_roundtrip(self, key, block):
        assert aes128_decrypt_block(
            aes128_encrypt_block(block, key), key) == block

    def test_inv_sbox_inverts_sbox(self):
        from repro.emulation.aes import SBOX
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_aesdeclast_inverts_aesenclast_transform(self):
        # With zero round keys the instructions reduce to the pure
        # transforms: InvShiftRows/InvSubBytes must undo
        # ShiftRows/SubBytes exactly.
        zero = Vec128(0)
        state = Vec128.from_bytes(_FIPS_PLAIN)
        assert aesdeclast(aesenclast(state, zero), zero).value == state.value

    def test_aesdec_inverts_aesenc_transform(self):
        zero = Vec128(0)
        state = Vec128.from_bytes(_FIPS_CIPHER)
        # AESDEC also inverts MixColumns; key-free round trip is exact.
        assert aesdec(aesenc(state, zero), zero).value != state.value  # order differs
        # The true inverse pairs InvMixColumns before the xor; composing
        # through aesimc on a zero key is the identity, so check via the
        # full block path instead:
        assert aes128_decrypt_block(
            aes128_encrypt_block(_FIPS_PLAIN, _FIPS_KEY), _FIPS_KEY) == _FIPS_PLAIN

    def test_block_size_checked(self):
        with pytest.raises(ValueError):
            aes128_decrypt_block(b"short", _FIPS_KEY)

    def test_aesimc_is_involution_free(self):
        keys = aes128_expand_key(_FIPS_KEY)
        assert aesimc(keys[3]).value != keys[3].value


class TestGhash:
    def test_nist_domain_multiplication_identity(self):
        one = 1 << 127  # GHASH's representation of "1"
        assert ghash_mul(one, one) == one

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=2 ** 128 - 1),
           st.integers(min_value=0, max_value=2 ** 128 - 1))
    def test_clmul_path_agrees(self, x, h):
        assert ghash_mul(x, h) == ghash_mul_via_clmul(x, h)

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=2 ** 128 - 1),
           st.integers(min_value=0, max_value=2 ** 128 - 1))
    def test_commutative(self, x, h):
        assert ghash_mul(x, h) == ghash_mul(h, x)

    def test_ghash_zero_data(self):
        assert ghash(0x1234, b"") == 0


class TestAes128Gcm:
    KEY0 = b"\0" * 16
    NONCE0 = b"\0" * 12

    def test_nist_test_case_1(self):
        # SP 800-38D, AES-128, test case 1: empty plaintext.
        ct, tag = Aes128Gcm(self.KEY0).encrypt(self.NONCE0, b"")
        assert ct == b""
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_nist_test_case_2(self):
        ct, tag = Aes128Gcm(self.KEY0).encrypt(self.NONCE0, b"\0" * 16)
        assert ct.hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_roundtrip_with_aad(self):
        gcm = Aes128Gcm(bytes(range(16)))
        ct, tag = gcm.encrypt(b"n" * 12, b"secret payload", aad=b"header")
        assert gcm.decrypt(b"n" * 12, ct, tag, aad=b"header") == b"secret payload"

    def test_tampered_ciphertext_rejected(self):
        gcm = Aes128Gcm(bytes(range(16)))
        ct, tag = gcm.encrypt(b"n" * 12, b"secret payload")
        assert gcm.decrypt(b"n" * 12, ct[:-1] + b"X", tag) is None

    def test_tampered_aad_rejected(self):
        gcm = Aes128Gcm(bytes(range(16)))
        ct, tag = gcm.encrypt(b"n" * 12, b"payload", aad=b"aad")
        assert gcm.decrypt(b"n" * 12, ct, tag, aad=b"bad") is None

    def test_wrong_nonce_rejected(self):
        gcm = Aes128Gcm(bytes(range(16)))
        ct, tag = gcm.encrypt(b"n" * 12, b"payload")
        assert gcm.decrypt(b"m" * 12, ct, tag) is None

    def test_non_96bit_nonce_supported(self):
        gcm = Aes128Gcm(bytes(range(16)))
        nonce = b"a-longer-nonce-than-96-bits"
        ct, tag = gcm.encrypt(nonce, b"payload")
        assert gcm.decrypt(nonce, ct, tag) == b"payload"

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            Aes128Gcm(b"short")

    def test_corrupted_round_breaks_the_tag(self):
        """The fault-attack relevance: one flipped AESENC output bit
        anywhere in the counter stream invalidates authentication."""
        gcm = Aes128Gcm(bytes(range(16)))
        ct, tag = gcm.encrypt(b"n" * 12, b"A" * 64)
        corrupted = bytes([ct[17] ^ 0x04]).join([ct[:17], ct[18:]])
        assert gcm.decrypt(b"n" * 12, corrupted, tag) is None
