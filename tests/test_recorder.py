"""Tests for the instruction recorder and recorded programs."""

import numpy as np
import pytest

from repro.emulation.aes import aes128_encrypt_block
from repro.isa.opcodes import Opcode
from repro.workloads.analysis import burst_statistics
from repro.workloads.programs import (
    aes_ctr_encrypt,
    ghash_tag,
    record_tls_server_trace,
    tls_record_server,
)
from repro.workloads.recorder import InstructionRecorder


def _reference_ctr(key: bytes, data: bytes, nonce: int = 0) -> bytes:
    out = bytearray()
    for i in range(0, len(data), 16):
        counter = (nonce + i // 16).to_bytes(16, "little")
        keystream = aes128_encrypt_block(counter, key)
        out.extend(b ^ k for b, k in zip(data[i: i + 16], keystream))
    return bytes(out)


class TestInstructionRecorder:
    def test_positions_advance(self):
        rec = InstructionRecorder("t")
        rec.retire(100)
        rec.execute(Opcode.VOR, *self._operands())
        assert rec.position == 101
        assert rec.n_events == 1

    def test_execute_returns_real_results(self):
        from repro.emulation.vector import Vec128
        rec = InstructionRecorder("t")
        out = rec.execute(Opcode.VXOR, Vec128(0b1100), Vec128(0b1010))
        assert out.value == 0b0110

    def test_imul_counted_not_logged(self):
        rec = InstructionRecorder("t")
        assert rec.imul(6, 7) == 42
        assert rec.position == 1
        assert rec.n_events == 0

    def test_non_trapped_opcode_rejected(self):
        from repro.emulation.vector import Vec128
        rec = InstructionRecorder("t")
        with pytest.raises(ValueError):
            rec.execute(Opcode.ALU, Vec128(1), Vec128(2))

    def test_finish_builds_valid_trace(self):
        rec = InstructionRecorder("t", ipc=2.0)
        rec.retire(10)
        rec.execute(Opcode.VOR, *self._operands())
        rec.retire(5)
        trace = rec.finish(trailing_instructions=4)
        assert trace.n_instructions == 20
        assert trace.indices.tolist() == [10]
        assert trace.event_opcode(0) is Opcode.VOR
        assert trace.ipc == 2.0

    def test_finish_twice_rejected(self):
        rec = InstructionRecorder("t")
        rec.retire(1)
        rec.finish()
        with pytest.raises(RuntimeError):
            rec.retire(1)

    def test_empty_recording(self):
        trace = InstructionRecorder("t").finish(trailing_instructions=10)
        assert trace.n_events == 0
        assert trace.n_instructions == 10

    @staticmethod
    def _operands():
        from repro.emulation.vector import Vec128
        return Vec128(3), Vec128(5)


class TestRecordedAesCtr:
    KEY = bytes(range(16))
    DATA = b"the quick brown fox jumps over the lazy dog....." * 2

    def test_ciphertext_is_real_aes_ctr(self):
        rec = InstructionRecorder("aes")
        ct = aes_ctr_encrypt(rec, self.KEY, self.DATA, nonce=7)
        assert ct == _reference_ctr(self.KEY, self.DATA, nonce=7)

    def test_ten_events_per_block(self):
        rec = InstructionRecorder("aes")
        aes_ctr_encrypt(rec, self.KEY, b"\0" * 64)
        assert rec.n_events == 4 * 10  # 4 blocks x 10 rounds

    def test_roundtrip_decrypts(self):
        rec = InstructionRecorder("aes")
        ct = aes_ctr_encrypt(rec, self.KEY, self.DATA, nonce=3)
        rec2 = InstructionRecorder("aes2")
        assert aes_ctr_encrypt(rec2, self.KEY, ct, nonce=3) == self.DATA

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            aes_ctr_encrypt(InstructionRecorder("x"), b"short", b"data")


class TestRecordedGhash:
    def test_tag_depends_on_ciphertext(self):
        rec = InstructionRecorder("g")
        t1 = ghash_tag(rec, 0x1234, b"a" * 32)
        rec2 = InstructionRecorder("g2")
        t2 = ghash_tag(rec2, 0x1234, b"b" * 32)
        assert t1 != t2

    def test_one_clmul_per_block(self):
        rec = InstructionRecorder("g")
        ghash_tag(rec, 0x99, b"x" * 48)
        assert rec.n_events == 3
        trace = rec.finish()
        assert all(trace.event_opcode(i) is Opcode.VPCLMULQDQ
                   for i in range(3))


class TestRecordedTlsServer:
    def test_trace_structure_is_bursty(self):
        trace, total = record_tls_server_trace(
            n_requests=8, response_bytes=1024, think_instructions=500_000,
            seed=1)
        assert total == 8 * 1024
        stats = burst_statistics(trace, burst_threshold=100_000)
        assert stats.n_bursts == 8  # one crypto burst per request
        # Within a burst the events are dense (AES rounds back-to-back).
        assert stats.mean_intra_gap < 50

    def test_recorded_trace_runs_under_suit(self):
        from repro.core.suit import SuitSystem
        from repro.workloads.profile import WorkloadProfile

        trace, _ = record_tls_server_trace(
            n_requests=6, response_bytes=1024, think_instructions=2_000_000,
            seed=2)
        profile = WorkloadProfile(
            name=trace.name, suite="network",
            n_instructions=trace.n_instructions, ipc=trace.ipc,
            efficient_occupancy=0.5, n_episodes=6, dense_gap=3,
            nosimd_overhead={"intel": -0.05, "amd": -0.06},
            opcode_mix={Opcode.AESENC: 0.9, Opcode.VPCLMULQDQ: 0.1})
        suit = SuitSystem.for_cpu("C", strategy_name="fV",
                                  voltage_offset=-0.097)
        suit.prime_trace(profile, trace)
        result = suit.run_profile(profile)
        # One trap per request burst, all handled, efficiency positive.
        assert result.n_exceptions == 6
        assert result.efficiency_change > 0
