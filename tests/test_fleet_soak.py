"""Chaos-over-fleet acceptance: a node killed mid-burst, the gateway
rerouting, and the differential oracle finding zero wrong answers.
"""

import asyncio

import pytest

from repro.fleet.soak import FleetSoak, FleetSoakConfig


def run(coro):
    """Run *coro* on a fresh event loop (the tests' async entry point)."""
    return asyncio.run(coro)


class TestFleetSoak:
    def test_node_kill_mid_burst_zero_wrong_answers(self):
        result = run(FleetSoak(FleetSoakConfig(
            seed=0, n_nodes=3, n_requests=8, bursts=3)).run())
        assert result.passed, result.to_json_dict()["summary"]
        assert result.killed_node is not None
        assert result.wrong_answers == 0
        # The strict claim: the kill degraded nothing — every accepted
        # request was answered correctly via reroute.
        assert result.degraded_answers == 0
        assert sum(result.reroutes.values()) >= 1

    def test_report_shape(self):
        result = run(FleetSoak(FleetSoakConfig(
            seed=1, n_nodes=2, n_requests=4, bursts=2)).run())
        payload = result.to_json_dict()
        assert {"passed", "seed", "bursts", "killed_node", "summary",
                "channels", "fleet_status"} <= set(payload)
        assert payload["summary"]["checked"] == 2 * 4
        assert payload["bursts"] == 2

    def test_injected_forward_faults_are_absorbed(self):
        # A sustained fault storm may exhaust every candidate for a
        # few requests — explicit degradation, which the oracle
        # tolerates; silent corruption it never does.
        result = run(FleetSoak(FleetSoakConfig(
            seed=3, n_nodes=3, n_requests=6, bursts=3,
            kill_node=False, forward_fault_rate=0.2,
            require_all_ok=False)).run())
        assert result.passed, result.to_json_dict()["summary"]
        injected = result.chaos_report["injected"]["total"]
        assert injected >= 1
        assert result.reroutes.get("connection", 0) >= 1
        assert result.wrong_answers == 0
        checked = sum(c.checked for c in result.channels)
        assert sum(c.ok for c in result.channels) >= checked // 2

    def test_no_kill_leaves_fleet_intact(self):
        result = run(FleetSoak(FleetSoakConfig(
            seed=2, n_nodes=2, n_requests=4, bursts=2,
            kill_node=False)).run())
        assert result.passed
        assert result.killed_node is None
        assert len(result.fleet_status["healthy"]) == 2

    def test_kill_needs_a_sibling(self):
        with pytest.raises(ValueError):
            FleetSoak(FleetSoakConfig(n_nodes=1, kill_node=True))

    def test_schedule_is_a_pure_function_of_seed(self):
        a = FleetSoakConfig(seed=11, forward_fault_rate=0.3).build_plan()
        b = FleetSoakConfig(seed=11, forward_fault_rate=0.3).build_plan()
        assert a.to_json_dict() == b.to_json_dict()
