"""Unit tests for the fault model, injector and characterization sweep."""

import numpy as np
import pytest

from repro.faults.characterize import CharacterizationSweep, SweepConfig
from repro.faults.injector import FaultInjector, faulty_imul
from repro.faults.model import (
    BASE_VMIN_MARGINS,
    NON_FAULTABLE_MARGIN_V,
    FaultModel,
)
from repro.isa.faultable import FAULTABLE_OPCODES, TABLE1_FAULT_COUNTS
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS


@pytest.fixture
def curve():
    return DVFSCurve(I9_9900K_CURVE_POINTS)


@pytest.fixture
def chip(curve, rng):
    return FaultModel().sample_chip(curve, n_cores=4, rng=rng, exhibits=True)


class TestMargins:
    def test_ordering_matches_table1(self):
        ordered = sorted(TABLE1_FAULT_COUNTS, key=lambda o: -TABLE1_FAULT_COUNTS[o])
        margins = [BASE_VMIN_MARGINS[op] for op in ordered]
        # Most-faulting instruction has the smallest (least negative) margin.
        assert margins == sorted(margins, reverse=True)

    def test_non_faultable_far_below(self):
        assert NON_FAULTABLE_MARGIN_V < min(BASE_VMIN_MARGINS.values())


class TestChipInstance:
    def test_stable_on_conservative_curve(self, chip, curve):
        for op in Opcode:
            for f in (2e9, 4e9):
                assert not chip.faults(op, 0, f, curve.voltage_at(f))

    def test_imul_faults_first_when_undervolting(self, chip, curve):
        f = 4e9
        # Step the offset down; IMUL must fault at a shallower offset
        # than e.g. VPADDQ.
        imul_off = chip.max_safe_offset(Opcode.IMUL, 0, f)
        vpaddq_off = chip.max_safe_offset(Opcode.VPADDQ, 0, f)
        assert imul_off > vpaddq_off

    def test_faults_below_vmin(self, chip):
        vmin = chip.vmin(Opcode.IMUL, 0, 4e9)
        assert chip.faults(Opcode.IMUL, 0, 4e9, vmin - 0.001)
        assert not chip.faults(Opcode.IMUL, 0, 4e9, vmin + 0.001)

    def test_fault_probability_ramps(self, chip):
        vmin = chip.vmin(Opcode.IMUL, 0, 4e9)
        assert chip.fault_probability(Opcode.IMUL, 0, 4e9, vmin + 0.01) == 0.0
        shallow = chip.fault_probability(Opcode.IMUL, 0, 4e9, vmin - 0.001)
        deep = chip.fault_probability(Opcode.IMUL, 0, 4e9, vmin - 0.01)
        assert 0.0 < shallow < deep <= 1.0

    def test_margin_shrinks_at_higher_frequency(self, chip):
        low = chip.max_safe_offset(Opcode.IMUL, 0, 2e9)
        high = chip.max_safe_offset(Opcode.IMUL, 0, 5e9)
        assert high > low  # closer to the curve at high f

    def test_hardened_imul_gains_headroom(self, chip):
        hardened = chip.with_hardened_imul()
        f = 4.5e9
        assert (hardened.max_safe_offset(Opcode.IMUL, 0, f)
                < chip.max_safe_offset(Opcode.IMUL, 0, f))

    def test_hardened_imul_safe_at_97mv(self, chip, curve):
        hardened = chip.with_hardened_imul()
        f = 4.5e9
        assert not hardened.faults(Opcode.IMUL, 0, f,
                                   curve.voltage_at(f) - 0.097)

    def test_hardening_preserves_other_margins(self, chip):
        hardened = chip.with_hardened_imul()
        assert np.array_equal(hardened.margins[Opcode.VOR],
                              chip.margins[Opcode.VOR])

    def test_non_exhibiting_chip(self, curve, rng):
        chip = FaultModel().sample_chip(curve, 2, rng, exhibits=False)
        # SIMD margins collapse to the non-faultable mass; IMUL stays.
        assert chip.margins[Opcode.VOR].mean() < -0.2
        assert chip.margins[Opcode.IMUL].mean() > -0.1


class TestFaultInjector:
    def test_no_fault_above_threshold(self, chip, rng):
        injector = FaultInjector(chip, rng)
        v_safe = chip.curve.voltage_at(4e9)
        for _ in range(100):
            out = injector.execute(Opcode.IMUL, 123456, core=0,
                                   frequency=4e9, voltage=v_safe)
            assert out == 123456
        assert injector.fault_count == 0

    def test_faults_deep_below_threshold(self, chip, rng):
        injector = FaultInjector(chip, rng)
        vmin = chip.vmin(Opcode.IMUL, 0, 4e9)
        corrupted = 0
        for _ in range(100):
            out = injector.execute(Opcode.IMUL, 123456, core=0,
                                   frequency=4e9, voltage=vmin - 0.05)
            corrupted += out != 123456
        assert corrupted == 100  # far below: always faults
        assert injector.fault_count == 100

    def test_faults_flip_few_bits(self, chip, rng):
        injector = FaultInjector(chip, rng, max_flips=2)
        vmin = chip.vmin(Opcode.IMUL, 0, 4e9)
        out = injector.execute(Opcode.IMUL, 0, core=0, frequency=4e9,
                               voltage=vmin - 0.05)
        assert 1 <= bin(out).count("1") <= 2

    def test_faulty_imul_helper(self, chip, rng):
        injector = FaultInjector(chip, rng)
        v_safe = chip.curve.voltage_at(4e9)
        assert faulty_imul(3, 5, injector, core=0, frequency=4e9,
                           voltage=v_safe) == 15

    def test_reset(self, chip, rng):
        injector = FaultInjector(chip, rng)
        vmin = chip.vmin(Opcode.IMUL, 0, 4e9)
        injector.execute(Opcode.IMUL, 1, core=0, frequency=4e9,
                         voltage=vmin - 0.05)
        injector.reset()
        assert injector.fault_count == 0


class TestCharacterizationSweep:
    def test_counts_ordered_like_table1(self, curve):
        sweep = CharacterizationSweep(FaultModel(), curve)
        counts = sweep.run(np.random.default_rng(0))
        assert counts[Opcode.IMUL] == max(counts.values())
        assert counts[Opcode.VPADDQ] <= min(
            counts[op] for op in FAULTABLE_OPCODES if op is not Opcode.VPADDQ)

    def test_imul_faults_first_mostly(self, curve):
        sweep = CharacterizationSweep(
            FaultModel(), curve,
            SweepConfig(cores_per_chip=8, n_chips=6))
        share = sweep.first_fault_share(np.random.default_rng(3))
        assert share[Opcode.IMUL] > 0.8

    def test_positive_offsets_rejected(self, curve):
        sweep = CharacterizationSweep(
            FaultModel(), curve, SweepConfig(offsets_v=(0.05,)))
        with pytest.raises(ValueError):
            sweep.run(np.random.default_rng(0))


class TestInjectorSeeding:
    """The explicit-Generator / seed threading the campaigns rely on."""

    @pytest.fixture
    def c_chip(self):
        from repro.hardware.models import ALL_CPU_FACTORIES

        cpu = ALL_CPU_FACTORIES["C"]()
        return FaultModel().sample_chip(
            cpu.conservative_curve, n_cores=2,
            rng=np.random.default_rng(42), exhibits=True)

    def test_rng_and_seed_are_mutually_exclusive(self, c_chip):
        with pytest.raises(ValueError, match="not both"):
            FaultInjector(c_chip, np.random.default_rng(0), seed=1)

    def test_same_seed_reproduces_the_sequence(self, c_chip):
        v = c_chip.vmin(Opcode.IMUL, 0, 3.0e9) - 0.050  # p(fault) == 1
        runs = []
        for _ in range(2):
            injector = FaultInjector(c_chip, seed=77)
            runs.append([injector.execute(Opcode.IMUL, 0, core=0,
                                          frequency=3.0e9, voltage=v)
                         for _ in range(16)])
        assert runs[0] == runs[1]

    def test_pinned_injection_sequence(self, c_chip):
        # Regression pin: this exact flip sequence (chip seed 42,
        # injector seed 1234, 50 mV below the IMUL threshold) must
        # never drift — campaign reports are keyed on it.
        v = c_chip.vmin(Opcode.IMUL, 0, 3.0e9) - 0.050
        injector = FaultInjector(c_chip, seed=1234)
        results = [injector.execute(Opcode.IMUL, 0, core=0, frequency=3.0e9,
                                    voltage=v) for _ in range(8)]
        assert results == [
            8389632, 1048576, 1125899906875392, 34359803904,
            18016597532737536, 2199023255560, 1125899906843648,
            8796093022208]
        assert [e.flipped_mask for e in injector.events] == results

    def test_explicit_generator_still_honoured(self, c_chip):
        v = c_chip.vmin(Opcode.IMUL, 0, 3.0e9) - 0.050
        a = FaultInjector(c_chip, np.random.default_rng(9))
        b = FaultInjector(c_chip, rng=np.random.default_rng(9))
        seq_a = [a.execute(Opcode.IMUL, 0, core=0, frequency=3.0e9, voltage=v)
                 for _ in range(8)]
        seq_b = [b.execute(Opcode.IMUL, 0, core=0, frequency=3.0e9, voltage=v)
                 for _ in range(8)]
        assert seq_a == seq_b


class TestCharacterizationMonotonicity:
    """The characterization curve is monotone in voltage: anything that
    faults at a shallow offset also faults at every deeper one."""

    def test_counts_grow_with_depth(self, curve):
        shallow = CharacterizationSweep(
            FaultModel(), curve, SweepConfig(offsets_v=(-0.050, -0.100)))
        deep = CharacterizationSweep(
            FaultModel(), curve,
            SweepConfig(offsets_v=(-0.050, -0.100, -0.150, -0.200)))
        counts_shallow = shallow.run(np.random.default_rng(7))
        counts_deep = deep.run(np.random.default_rng(7))  # same population
        for op in FAULTABLE_OPCODES:
            assert counts_deep[op] >= counts_shallow[op]

    def test_per_chip_fault_set_is_monotone(self, chip, curve):
        freq = 3.0e9
        v_curve = curve.voltage_at(freq)
        for op in FAULTABLE_OPCODES:
            faulted = False
            for offset in (-0.025, -0.075, -0.125, -0.175, -0.225):
                now = chip.faults(op, 0, freq, v_curve + offset)
                assert now or not faulted  # once faulting, always faulting
                faulted = faulted or now

    def test_single_offset_counts_are_monotone(self, curve):
        a = CharacterizationSweep(FaultModel(), curve,
                                  SweepConfig(offsets_v=(-0.060,)))
        b = CharacterizationSweep(FaultModel(), curve,
                                  SweepConfig(offsets_v=(-0.160,)))
        counts_a = a.run(np.random.default_rng(11))
        counts_b = b.run(np.random.default_rng(11))
        assert sum(counts_b.values()) >= sum(counts_a.values())
        for op in FAULTABLE_OPCODES:
            assert counts_b[op] >= counts_a[op]
