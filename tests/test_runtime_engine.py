"""Unit tests for the parallel cached experiment engine.

Covers the four behaviors the engine must guarantee:

* cache hit after an identical run,
* cache invalidation when a module's source changes,
* ``--jobs 1`` vs ``--jobs 4`` determinism (byte-identical canonical
  report JSON),
* a crashing experiment is reported as failed without killing the pool.

The tests run against a tiny synthetic experiment registry written to a
temp directory, so they stay fast and can rewrite module sources freely.
"""

from __future__ import annotations

import importlib
import json
import os
import sys
import textwrap
from pathlib import Path

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.engine import ExperimentEngine
from repro.runtime.seeding import derive_seed

REGISTRY = "engine_test_registry"

GOOD_MODULE = textwrap.dedent('''
    """Synthetic engine-test experiment."""
    from repro.experiments.common import ExperimentResult

    SCALE = {scale}


    def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
        """Deterministic toy experiment."""
        result = ExperimentResult(experiment_id="{exp_id}", title="toy")
        result.lines.append(f"seed={{seed}} fast={{fast}}")
        result.add_metric("value", SCALE * (seed % 1000) / 1000.0, paper=0.5)
        result.data["series"] = [SCALE, seed % 7, int(fast)]
        return result
''')

CRASHER_MODULE = textwrap.dedent('''
    """Synthetic always-crashing experiment."""


    def run(seed: int = 0, fast: bool = False):
        """Raise unconditionally."""
        raise RuntimeError("intentional test crash")
''')


@pytest.fixture
def registry(tmp_path, monkeypatch):
    """A throwaway experiment registry package on sys.path."""
    pkg = tmp_path / REGISTRY
    pkg.mkdir()
    (pkg / "__init__.py").write_text('"""Engine-test registry."""\n')
    (pkg / "alpha.py").write_text(
        GOOD_MODULE.format(scale=1, exp_id="alpha"))
    (pkg / "beta.py").write_text(
        GOOD_MODULE.format(scale=2, exp_id="beta"))
    (pkg / "crasher.py").write_text(CRASHER_MODULE)
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib.invalidate_caches()
    yield pkg
    for name in list(sys.modules):
        if name.startswith(REGISTRY):
            del sys.modules[name]


def _engine(jobs=1, cache=None, modules=("alpha", "beta")):
    return ExperimentEngine(modules=modules, registry=REGISTRY, jobs=jobs,
                            cache=cache)


class TestCaching:
    def test_identical_rerun_hits_cache(self, registry, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = _engine(cache=cache)
        cold = engine.run(seed=3, fast=True)
        assert cold.n_cache_hits == 0
        assert len(cache) == 2
        warm = engine.run(seed=3, fast=True)
        assert warm.n_cache_hits == 2
        assert all(r.cache_hit for r in warm.records)
        assert warm.canonical_json() == cold.canonical_json()

    def test_seed_and_mode_change_miss(self, registry, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = _engine(cache=cache)
        engine.run(seed=3, fast=True)
        assert engine.run(seed=4, fast=True).n_cache_hits == 0
        assert engine.run(seed=3, fast=False).n_cache_hits == 0
        assert engine.run(seed=3, fast=True).n_cache_hits == 2

    def test_source_change_invalidates(self, registry, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = _engine(cache=cache)
        first = engine.run(seed=3, fast=True)
        assert first.n_cache_hits == 0
        # Edit alpha's source: its entry must miss, beta's must hit.
        (registry / "alpha.py").write_text(
            GOOD_MODULE.format(scale=10, exp_id="alpha"))
        sys.modules.pop(f"{REGISTRY}.alpha", None)
        importlib.invalidate_caches()
        second = engine.run(seed=3, fast=True)
        by_name = {r.module: r for r in second.records}
        assert not by_name["alpha"].cache_hit
        assert by_name["beta"].cache_hit
        assert (by_name["alpha"].to_result().metric("value").measured
                == pytest.approx(10 * (derive_seed(3, "alpha") % 1000) / 1000))

    def test_corrupt_entry_is_a_miss(self, registry, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = _engine(cache=cache)
        engine.run(seed=3, fast=True)
        for path in cache.root.glob("*.json"):
            path.write_text("{not json")
        rerun = engine.run(seed=3, fast=True)
        assert rerun.n_cache_hits == 0
        assert rerun.n_failed == 0


class TestDeterminism:
    def test_jobs1_vs_jobs4_byte_identical(self, registry):
        serial = _engine(jobs=1).run(seed=7, fast=True)
        parallel = _engine(jobs=4).run(seed=7, fast=True)
        assert serial.canonical_json() == parallel.canonical_json()

    def test_parallel_report_preserves_registry_order(self, registry):
        report = _engine(jobs=4).run(seed=7, fast=True)
        assert [r.module for r in report.records] == ["alpha", "beta"]

    def test_derived_seeds_are_schedule_independent(self, registry):
        report = _engine(jobs=4).run(seed=7, fast=True)
        for record in report.records:
            assert record.seed == derive_seed(7, record.module)

    def test_report_file_round_trips(self, registry, tmp_path):
        report = _engine(jobs=2).run(seed=7, fast=True)
        path = report.write(tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"]["name"] == "repro.experiment-report"
        assert [e["module"] for e in loaded["experiments"]] == ["alpha", "beta"]
        runtime = loaded["experiments"][0]["runtime"]
        assert set(runtime) == {"wall_time_s", "cpu_time_s", "cache_hit",
                                "worker"}


class TestFailureIsolation:
    def test_crash_reported_without_killing_pool(self, registry, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ExperimentEngine(modules=("alpha", "crasher", "beta"),
                                  registry=REGISTRY, jobs=2, cache=cache)
        report = engine.run(seed=1, fast=True)
        by_name = {r.module: r for r in report.records}
        assert report.n_failed == 1
        assert by_name["crasher"].status == "failed"
        assert "RuntimeError: intentional test crash" in by_name["crasher"].error
        assert by_name["alpha"].ok and by_name["beta"].ok
        # Failures are never cached: the crasher re-executes next run.
        rerun = engine.run(seed=1, fast=True)
        rerun_by_name = {r.module: r for r in rerun.records}
        assert not rerun_by_name["crasher"].cache_hit
        assert rerun_by_name["alpha"].cache_hit

    def test_failed_record_refuses_to_result(self, registry):
        engine = ExperimentEngine(modules=("crasher",), registry=REGISTRY)
        record = engine.run(seed=1, fast=True).records[0]
        with pytest.raises(RuntimeError, match="crasher failed"):
            record.to_result()

    def test_results_skips_failures(self, registry):
        engine = ExperimentEngine(modules=("alpha", "crasher"),
                                  registry=REGISTRY)
        results = engine.run(seed=1, fast=True).results()
        assert [r.experiment_id for r in results] == ["alpha"]


class TestSelection:
    def test_only_filter_keeps_registry_order(self, registry):
        report = _engine().run(seed=1, fast=True, only=["beta", "alpha"])
        assert [r.module for r in report.records] == ["alpha", "beta"]

    def test_unknown_module_raises(self, registry):
        with pytest.raises(ValueError, match="unknown experiment"):
            _engine().run(seed=1, fast=True, only=["nonexistent"])


class TestSharedTraces:
    """The shared trace store brackets a --share-traces run."""

    def test_store_is_active_during_run_and_gone_after(self, registry,
                                                       monkeypatch):
        from repro.workloads.tracestore import ENV_VAR

        monkeypatch.delenv(ENV_VAR, raising=False)
        engine = ExperimentEngine(modules=("alpha", "beta"),
                                  registry=REGISTRY, jobs=2,
                                  share_traces=True)
        report = engine.run(seed=7, fast=True)
        assert report.n_failed == 0
        assert ENV_VAR not in os.environ  # store torn down with the run

    def test_share_traces_report_is_byte_identical(self, registry,
                                                   monkeypatch):
        from repro.workloads.tracestore import ENV_VAR

        monkeypatch.delenv(ENV_VAR, raising=False)
        plain = _engine(jobs=2).run(seed=7, fast=True)
        shared = ExperimentEngine(modules=("alpha", "beta"),
                                  registry=REGISTRY, jobs=2,
                                  share_traces=True).run(seed=7, fast=True)
        assert shared.canonical_json() == plain.canonical_json()


class TestRunallIntegration:
    """The real runall CLI drives the engine end to end."""

    def test_runall_json_and_cache(self, tmp_path, capsys):
        from repro.experiments.runall import main

        json_path = tmp_path / "report.json"
        args = ["--fast", "--only", "table3_temperature",
                "--cache-dir", str(tmp_path / "cache"),
                "--jobs", "2", "--json", str(json_path)]
        assert main(args) == 0
        loaded = json.loads(json_path.read_text())
        assert loaded["experiments"][0]["module"] == "table3_temperature"
        assert loaded["experiments"][0]["status"] == "ok"
        assert loaded["run"]["n_cache_hits"] == 0
        # Warm re-run: served from the on-disk cache.
        assert main(args) == 0
        loaded = json.loads(json_path.read_text())
        assert loaded["run"]["n_cache_hits"] == 1
        captured = capsys.readouterr()
        # The progress line moved to the logger (stderr).
        assert "(cached)" in captured.err

    def test_run_all_prints_and_returns_results(self, capsys):
        from repro.experiments.runall import run_all

        results = run_all(seed=0, fast=True, only=["table3_temperature"],
                          jobs=1, cache=None)
        assert len(results) == 1
        assert results[0].experiment_id == "table3"
        assert "paper vs measured" in capsys.readouterr().out
