"""Tests for the adaptive strategy policy and the covert-channel analysis."""

import numpy as np
import pytest

from repro.core.policy import (
    AdaptiveStrategyPolicy,
    EMULATION_BREAK_EVEN_RATE,
    StrategyDecision,
    oracle_best,
)
from repro.isa.opcodes import Opcode
from repro.security.covert import CurveSwitchCovertChannel
from repro.workloads.trace import FaultableTrace


def _trace(indices, n=10_000_000_000, ipc=1.5):
    indices = np.asarray(indices, dtype=np.int64)
    return FaultableTrace(
        name="policy", n_instructions=n, ipc=ipc, indices=indices,
        opcodes=np.zeros(indices.size, dtype=np.uint8),
        opcode_table=(Opcode.VOR,))


class TestAdaptivePolicy:
    def test_sparse_trace_gets_emulation(self, cpu_a):
        policy = AdaptiveStrategyPolicy(cpu_a)
        # A handful of traps in 1e10 instructions: far below break-even.
        decision = policy.decide(_trace([10 ** 9, 5 * 10 ** 9]))
        assert decision.strategy == "e"

    def test_dense_trace_gets_switching(self, cpu_a, dense_trace):
        policy = AdaptiveStrategyPolicy(cpu_a)
        assert policy.decide(dense_trace).strategy == "fV"

    def test_amd_switching_is_frequency_only(self, cpu_b, dense_trace):
        policy = AdaptiveStrategyPolicy(cpu_b)
        assert policy.decide(dense_trace).strategy == "f"

    def test_break_even_scales_with_call_cost(self, cpu_a, cpu_b):
        # AMD's cheaper kernel transitions (0.27 us vs 0.77 us) move the
        # break-even up ~3x: a borderline trace emulates on B, not on A.
        n = 10_000_000_000
        step = 8_000_000  # rate 1.25e-7
        trace = _trace(np.arange(step, n, step))
        assert AdaptiveStrategyPolicy(cpu_b).decide(trace).strategy == "e"
        assert AdaptiveStrategyPolicy(cpu_a).decide(trace).strategy in ("f", "fV")

    def test_run_executes_decision(self, cpu_c, small_profile, small_trace):
        policy = AdaptiveStrategyPolicy(cpu_c)
        decision, result = policy.run(small_profile, small_trace, -0.097)
        assert isinstance(decision, StrategyDecision)
        assert result.strategy == decision.strategy

    def test_policy_close_to_oracle(self, cpu_c, small_profile, small_trace):
        policy = AdaptiveStrategyPolicy(cpu_c)
        _, chosen = policy.run(small_profile, small_trace, -0.097)
        _, all_results = oracle_best(cpu_c, small_profile, small_trace, -0.097)
        best_eff = max(r.efficiency_change for r in all_results.values())
        # The heuristic must not leave more than 3 pp on the table here.
        assert chosen.efficiency_change >= best_eff - 0.03

    def test_oracle_skips_voltage_paths_on_amd(self, cpu_b, small_profile,
                                               small_trace):
        best, results = oracle_best(cpu_b, small_profile, small_trace, -0.097)
        assert "fV" not in results
        assert best in results

    def test_margin_validation(self, cpu_a):
        with pytest.raises(ValueError):
            AdaptiveStrategyPolicy(cpu_a, rate_margin=0.0)


class TestCovertChannel:
    def test_exists_only_on_shared_domains(self, cpu_a, cpu_c):
        assert CurveSwitchCovertChannel(cpu_a).channel_exists
        assert not CurveSwitchCovertChannel(cpu_c).channel_exists

    def test_per_core_domain_raises(self, cpu_c, rng):
        channel = CurveSwitchCovertChannel(cpu_c)
        with pytest.raises(RuntimeError):
            channel.transmit([1, 0, 1], rng)

    def test_low_noise_transmission_is_clean(self, cpu_a, rng):
        channel = CurveSwitchCovertChannel(cpu_a, noise=0.002)
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 8
        result = channel.transmit(bits, rng)
        assert result.bit_error_rate < 0.05

    def test_heavy_noise_degrades(self, cpu_a, rng):
        quiet = CurveSwitchCovertChannel(cpu_a, noise=0.001)
        loud = CurveSwitchCovertChannel(cpu_a, noise=0.2)
        bits = list(rng.integers(0, 2, size=256))
        assert (loud.transmit(bits, rng).bit_error_rate
                >= quiet.transmit(bits, np.random.default_rng(1)).bit_error_rate)

    def test_bandwidth_tied_to_deadline(self, cpu_a, rng):
        fast = CurveSwitchCovertChannel(cpu_a, deadline_s=30e-6)
        slow = CurveSwitchCovertChannel(cpu_a, deadline_s=420e-6)
        bits = [1, 0] * 16
        assert (fast.transmit(bits, rng).bandwidth_bps
                > slow.transmit(bits, np.random.default_rng(2)).bandwidth_bps)

    def test_capacity_positive_kilobits(self, cpu_a):
        channel = CurveSwitchCovertChannel(cpu_a, noise=0.005)
        capacity = channel.capacity_estimate(np.random.default_rng(3))
        assert capacity > 1_000  # kbit/s-scale channel

    def test_slot_must_exceed_deadline(self, cpu_a, rng):
        channel = CurveSwitchCovertChannel(cpu_a)
        with pytest.raises(ValueError):
            channel.transmit([1], rng, slot_s=10e-6)

    def test_contrast_positive(self, cpu_a):
        assert CurveSwitchCovertChannel(cpu_a).contrast > 0.05


class TestEnclaveConstraint:
    def test_policy_never_emulates_enclaves(self, cpu_a):
        # Even an extremely trap-sparse trace must switch when in a TEE.
        policy = AdaptiveStrategyPolicy(cpu_a)
        sparse = _trace([10 ** 9])
        assert policy.decide(sparse).strategy == "e"
        decision = policy.decide(sparse, in_enclave=True)
        assert decision.strategy in ("f", "fV")
        assert "enclave" in decision.reason

    def test_suit_system_refuses_enclave_emulation(self, small_profile):
        import dataclasses

        from repro.core.suit import SuitSystem

        enclave_profile = dataclasses.replace(small_profile,
                                              name="enclave-task",
                                              in_enclave=True)
        suit = SuitSystem.for_cpu("C", strategy_name="e")
        with pytest.raises(ValueError, match="trusted execution"):
            suit.run_profile(enclave_profile)

    def test_enclave_workload_runs_fine_with_fv(self, small_profile):
        import dataclasses

        from repro.core.suit import SuitSystem

        enclave_profile = dataclasses.replace(small_profile,
                                              name="enclave-task",
                                              in_enclave=True)
        suit = SuitSystem.for_cpu("C", strategy_name="fV")
        result = suit.run_profile(enclave_profile)
        assert result.efficiency_change > 0
