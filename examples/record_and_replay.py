"""Record a trace from a real computation, then run SUIT on it.

The paper collects traces by instrumenting QEMU under real programs.
This example does the in-repository equivalent: a TLS-like server loop
performs *actual* AES-CTR encryption and GHASH authentication (the
ciphertext is bit-exact), the recorder logs every faultable instruction,
and the resulting trace is fed to the SUIT simulator.

Run:
    python examples/record_and_replay.py
"""

from repro.core.suit import SuitSystem
from repro.isa.opcodes import Opcode
from repro.workloads.analysis import burst_statistics
from repro.workloads.programs import record_tls_server_trace
from repro.workloads.profile import WorkloadProfile


def main() -> None:
    print("recording: 30 HTTPS responses of 4 kB, real AES-CTR + GHASH...")
    trace, total = record_tls_server_trace(
        n_requests=30, response_bytes=4096, think_instructions=3_000_000,
        seed=7)
    stats = burst_statistics(trace, burst_threshold=200_000)
    print(f"  {total:,} bytes encrypted -> {trace.n_events:,} faultable "
          f"instructions in {trace.n_instructions:,} total")
    print(f"  burst structure: {stats.n_bursts} bursts, "
          f"mean intra-burst gap {stats.mean_intra_gap:.1f} instructions, "
          f"median inter-burst gap {stats.median_inter_gap:.2e}\n")

    profile = WorkloadProfile(
        name=trace.name, suite="network",
        n_instructions=trace.n_instructions, ipc=trace.ipc,
        efficient_occupancy=0.5, n_episodes=stats.n_bursts,
        dense_gap=max(stats.mean_intra_gap, 1.0),
        nosimd_overhead={"intel": -0.05, "amd": -0.06},
        opcode_mix={Opcode.AESENC: 0.9, Opcode.VPCLMULQDQ: 0.1})

    for strategy in ("fV", "e"):
        suit = SuitSystem.for_cpu("C", strategy_name=strategy,
                                  voltage_offset=-0.097)
        suit.prime_trace(profile, trace)
        r = suit.run_profile(profile)
        print(f"strategy {strategy:>2}: perf {r.perf_change * 100:+7.2f}%  "
              f"power {r.power_change * 100:+7.2f}%  "
              f"efficiency {r.efficiency_change * 100:+7.2f}%  "
              f"traps {r.n_exceptions}")

    print("\nfV takes one trap per response burst; emulation pays two kernel"
          "\ntransitions per AES round — the Table 6 contrast, on a trace"
          "\nrecorded from the actual computation.")


if __name__ == "__main__":
    main()
