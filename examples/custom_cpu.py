"""Bringing SUIT to a new CPU: define the model, tune the parameters.

SUIT is a generic co-design: to evaluate it on a hypothetical part you
describe the hardware (DVFS curve, domain topology, transition delays,
power model) and let the parameter search find the operating-strategy
constants.  This example builds a fictional 16-core server CPU with
per-core domains but a slow voltage regulator, tunes the deadline, and
evaluates the result.

Run:
    python examples/custom_cpu.py
"""

from repro.core.suit import SuitSystem
from repro.core.tuning import grid_search
from repro.hardware.counters import DelaySpec
from repro.hardware.cpu import CpuModel
from repro.hardware.domains import DomainKind, DomainTopology
from repro.hardware.models import INTEL_EMULATION_DELAY, INTEL_EXCEPTION_DELAY
from repro.hardware.transitions import (
    FrequencyTransitionSpec,
    PStateTransitionModel,
    VoltageTransitionSpec,
)
from repro.power.cmos import CmosPowerModel
from repro.power.dvfs import DVFSCurve
from repro.power.thermal import TdpModel, UndervoltResponse
from repro.workloads.spec import spec_profile


def build_custom_cpu() -> CpuModel:
    """A fictional 16-core server part: fast clocks, sluggish regulator."""
    curve = DVFSCurve(
        [(1.2e9, 0.70), (2.4e9, 0.80), (3.4e9, 0.92), (4.0e9, 1.05)],
        name="custom-server")
    f0 = 3.6e9
    cmos = CmosPowerModel.calibrated(
        frequency=f0, voltage=curve.voltage_at(f0), total_power=120.0,
        dynamic_share=0.85, uncore_share=0.08)
    response = UndervoltResponse(
        tdp=TdpModel(cmos=cmos, curve=curve, power_limit=130.0, f_max=4.0e9),
        nominal_frequency=f0,
        tdp_bound_fraction=0.10,
        perf_sensitivity=1.0,
        thermal_boost_per_volt=0.25,
    )
    transitions = PStateTransitionModel(
        frequency=FrequencyTransitionSpec(
            delay=DelaySpec(18e-6, 1e-6), stall=DelaySpec(15e-6, 1e-6),
            aperf_lags=True),
        voltage=VoltageTransitionSpec(delay=DelaySpec(650e-6, 80e-6)),
        voltage_first=True,
    )
    return CpuModel(
        name="Custom 16-core server CPU",
        vendor="intel",
        topology=DomainTopology(16, DomainKind.PER_CORE, DomainKind.PER_CORE),
        conservative_curve=curve,
        nominal_frequency=f0,
        cmos=cmos,
        transitions=transitions,
        exception_delay=INTEL_EXCEPTION_DELAY,
        emulation_call_delay=INTEL_EMULATION_DELAY,
        response=response,
    )


def main() -> None:
    cpu = build_custom_cpu()
    print(f"CPU: {cpu.name}")
    points = cpu.operating_points(-0.097)
    print(f"operating points at -97 mV: E speed {points.speed_e:.3f} / "
          f"power {points.power_e:.3f}; Cf speed {points.speed_cf:.3f} / "
          f"power {points.power_cf:.3f}\n")

    profiles = [spec_profile(n) for n in ("557.xz", "502.gcc", "527.cam4")]
    print("tuning the deadline for the slow regulator...")
    tuned = grid_search(
        cpu, profiles,
        deadlines_s=(30e-6, 60e-6, 120e-6),
        timespans_s=(450e-6,),
        exception_counts=(3,),
        deadline_factors=(7.0, 14.0),
    )
    print(f"best: p_dl = {tuned.best.deadline_s * 1e6:.0f} us, "
          f"p_df = {tuned.best.thrash_deadline_factor:.0f} "
          f"(avg efficiency {tuned.best_efficiency * 100:+.2f}%)\n")

    suit = SuitSystem(cpu=cpu, strategy_name="fV", voltage_offset=-0.097,
                      params=tuned.best)
    for profile in profiles:
        r = suit.run_profile(profile)
        print(f"{r.workload:<10} perf {r.perf_change * 100:+6.2f}%  "
              f"power {r.power_change * 100:+7.2f}%  "
              f"efficiency {r.efficiency_change * 100:+6.2f}%")


if __name__ == "__main__":
    main()
