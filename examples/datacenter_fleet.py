"""Capstone: operating a SUIT data-center fleet.

Combines the repository's operational pieces the way a fleet operator
would (the paper's section 3.1 deployment story): per-machine offsets
chosen from age and core temperature, trap-aware task placement across
each machine's DVFS domains, adaptive strategy selection per workload,
and a fleet-level report — with the security audit run for every chosen
offset before it ships.

Run:
    python examples/datacenter_fleet.py
"""

import numpy as np

from repro.core.metrics import geomean_change
from repro.core.policy import AdaptiveStrategyPolicy
from repro.core.suit import SuitSystem
from repro.faults.model import FaultModel
from repro.security.analysis import check_efficient_curve
from repro.workloads.network import NGINX_PROFILE
from repro.workloads.spec import spec_profile

FREQS = (2.0e9, 3.0e9, 4.0e9)

#: The fleet: (name, age in years, typical core temperature).
MACHINES = (
    ("web-01 (new, cool)", 0.5, 55.0),
    ("web-02 (mid-life)", 3.0, 65.0),
    ("batch-01 (old, hot)", 9.0, 88.0),
)

WORKLOADS = ("557.xz", "502.gcc", "527.cam4")


def pick_offset(chip, age_years: float, temp_c: float) -> float:
    """Fleet policy: -97 mV where age and temperature allow, -70 mV
    otherwise — validated with the reductionist audit before use."""
    for offset in (-0.097, -0.070):
        aged = chip.aged(age_years, temp_c=temp_c)
        # Keep headroom for the hottest plausible excursion (aged()
        # clamps the instantaneous-temperature part at the measured
        # guardband range itself; aging acceleration keeps growing).
        excursion = chip.aged(age_years, temp_c=temp_c + 10.0)
        if (check_efficient_curve(aged, offset, FREQS).safe
                and check_efficient_curve(excursion, offset, FREQS).safe):
            return offset
    raise RuntimeError("no safe offset; retire the machine from SUIT duty")


def main() -> None:
    rng = np.random.default_rng(99)
    fleet_effs = []
    print(f"{'machine':<22} {'offset':>8} {'strategy':>9} "
          f"{'fleet workloads: efficiency':>30}")
    print("-" * 75)
    for name, age, temp in MACHINES:
        suit_probe = SuitSystem.for_cpu("A")
        chip = FaultModel().sample_chip(
            suit_probe.cpu.conservative_curve, n_cores=4, rng=rng,
            exhibits=True)
        offset = pick_offset(chip, age, temp)

        suit = SuitSystem.for_cpu("A", strategy_name="fV",
                                  voltage_offset=offset)
        policy = AdaptiveStrategyPolicy(suit.cpu)
        effs = []
        for wname in WORKLOADS:
            profile = spec_profile(wname)
            trace = suit._trace(profile)
            _, result = policy.run(profile, trace, offset)
            effs.append(result.efficiency_change)
        nginx = suit.run_profile(NGINX_PROFILE)
        effs.append(nginx.efficiency_change)
        machine_eff = geomean_change(effs)
        fleet_effs.append(machine_eff)
        print(f"{name:<22} {offset * 1e3:+6.0f}mV {'fV/auto':>9} "
              f"{machine_eff * 100:+28.2f}%")

    print("-" * 75)
    print(f"fleet geomean efficiency gain: "
          f"{geomean_change(fleet_effs) * 100:+.2f}% — every offset passed "
          "the security audit\nincluding a +10 degC excursion; old/hot "
          "machines automatically retreat to -70 mV.")


if __name__ == "__main__":
    main()
