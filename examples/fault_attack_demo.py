"""Why undervolting needs SUIT: the Bellcore RSA-CRT fault attack.

Without SUIT, undervolting past IMUL's minimum stable voltage corrupts
multiplications.  One corrupted CRT half-exponentiation is enough: the
attacker factors the RSA modulus with a single gcd (Boneh-DeMillo-Lipton
/ "Bellcore" attack — the same primitive Plundervolt exploited against
SGX).  With SUIT, the hardened 4-cycle IMUL is stable at the efficient
voltage and AESENC is trapped onto the conservative curve, so the same
operating point produces no faults.

Run:
    python examples/fault_attack_demo.py
"""

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.model import FaultModel
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.security.attacks import (
    AesFaultDemo,
    RsaCrtSigner,
    bellcore_attack,
    rsa_keygen,
)

FREQ = 4.0e9
UNDERVOLT = -0.100  # deeper than IMUL's margin, shallower than most others


def attack_run(signer: RsaCrtSigner, key, message: int, tries: int = 12):
    """Collect signatures until one is faulty and attackable."""
    for attempt in range(1, tries + 1):
        sig = signer.sign(message)
        if signer.verify(message, sig):
            continue
        factor = bellcore_attack(key.n, key.e, message, sig)
        if factor:
            return attempt, factor
    return None, None


def main() -> None:
    curve = DVFSCurve(I9_9900K_CURVE_POINTS)
    chip = FaultModel().sample_chip(curve, n_cores=4,
                                    rng=np.random.default_rng(11),
                                    exhibits=True)
    key = rsa_keygen(bits=512, seed=3)
    message = int.from_bytes(b"invoice #4821: pay 100", "big")
    v_under = curve.voltage_at(FREQ) + UNDERVOLT

    print(f"RSA-512 key, signing at {FREQ / 1e9:.1f} GHz, "
          f"{UNDERVOLT * 1e3:+.0f} mV undervolt\n")

    # --- 1. Naive undervolting: stock 3-cycle IMUL -----------------------
    injector = FaultInjector(chip, np.random.default_rng(5))
    signer = RsaCrtSigner(key, injector, frequency=FREQ, voltage=v_under)
    attempt, factor = attack_run(signer, key, message)
    print("WITHOUT SUIT (stock IMUL, undervolted):")
    if factor:
        print(f"  faulty signature on attempt {attempt}; "
              f"gcd reveals prime factor p = {hex(factor)[:20]}...")
        print("  -> private key fully recovered. System broken.\n")
    else:
        print("  no usable fault this run (try another seed)\n")

    # --- 2. SUIT: hardened IMUL at the same operating point --------------
    hardened = chip.with_hardened_imul()
    injector2 = FaultInjector(hardened, np.random.default_rng(5))
    signer2 = RsaCrtSigner(key, injector2, frequency=FREQ, voltage=v_under)
    ok = all(signer2.verify(message, signer2.sign(message)) for _ in range(12))
    print("WITH SUIT (4-cycle IMUL, same voltage):")
    print(f"  12/12 signatures correct: {ok}; faults injected: "
          f"{injector2.fault_count}\n")

    # --- 3. AES: trapped instead of hardened ------------------------------
    aes_key = bytes(range(16))
    block = b"super secret txt"
    v_cons = curve.voltage_at(FREQ)  # SUIT re-executes AESENC here
    naive = AesFaultDemo(aes_key, FaultInjector(chip, np.random.default_rng(6)),
                         frequency=FREQ, voltage=v_under - 0.05)
    suit = AesFaultDemo(aes_key, FaultInjector(chip, np.random.default_rng(6)),
                        frequency=FREQ, voltage=v_cons)
    print("AESENC under deep undervolt without SUIT: ciphertext corrupted:",
          naive.encrypt_block(block) != naive.reference(block))
    print("AESENC trapped onto the conservative curve (SUIT): correct:",
          suit.encrypt_block(block) == suit.reference(block))


if __name__ == "__main__":
    main()
