"""Quickstart: run SUIT on the paper's Xeon and read the headline numbers.

Configures SUIT on CPU C (Intel Xeon Silver 4208, per-core DVFS domains)
with the combined -97 mV undervolt and the fV operating strategy, then
runs three representative workloads:

* 557.xz      — almost no faultable instructions: lives on the efficient
                curve and collects the full undervolting dividend.
* 520.omnetpp — faultable instructions everywhere: SUIT parks it on the
                conservative curve and costs it (almost) nothing.
* nginx       — bursty AES traffic: the case the trap+deadline design
                was built for.

Run:
    python examples/quickstart.py
"""

from repro import SuitSystem, spec_profile
from repro.workloads.network import NGINX_PROFILE


def main() -> None:
    suit = SuitSystem.for_cpu("C", strategy_name="fV", voltage_offset=-0.097)
    print(f"CPU: {suit.cpu.name}")
    print(f"strategy: {suit.strategy_name}, offset: "
          f"{suit.voltage_offset * 1e3:+.0f} mV, deadline: "
          f"{suit.params.deadline_s * 1e6:.0f} us\n")

    workloads = [
        spec_profile("557.xz"),
        spec_profile("520.omnetpp"),
        NGINX_PROFILE,
    ]
    header = (f"{'workload':<14} {'perf':>8} {'power':>8} {'effic.':>8} "
              f"{'on-E':>6} {'traps':>7}")
    print(header)
    print("-" * len(header))
    for profile in workloads:
        r = suit.run_profile(profile)
        print(f"{r.workload:<14} {r.perf_change * 100:+7.2f}% "
              f"{r.power_change * 100:+7.2f}% "
              f"{r.efficiency_change * 100:+7.2f}% "
              f"{r.efficient_occupancy * 100:5.1f}% "
              f"{r.n_exceptions:>7d}")

    print("\nSUIT keeps trap-sparse code on the efficient curve (big "
          "efficiency win),\nparks trap-dense code on the conservative "
          "curve (no loss), and absorbs\ncrypto bursts with one trap per "
          "burst.")


if __name__ == "__main__":
    main()
