"""Choosing an operating strategy per workload (paper section 4.3 / 6.8).

Runs the four operating strategies — fV (combined), f (frequency-only),
V (voltage-only) and e (user-space emulation) — over three workload
shapes on two CPUs, showing the paper's conclusions emerge:

* fV is the robust "one fits all" choice on fast-switching Intel parts;
* emulation wins for trap-sparse code and collapses on crypto bursts;
* the voltage-only path pays the regulator settle time on every trap;
* the slow AMD frequency ramps hurt every switching strategy.

Run:
    python examples/strategy_comparison.py
"""

from repro import SuitSystem, spec_profile
from repro.workloads.network import NGINX_PROFILE

WORKLOADS = [
    spec_profile("557.xz"),      # trap-sparse
    spec_profile("502.gcc"),     # mixed
    NGINX_PROFILE,               # crypto bursts
]

CONFIGS = [
    ("A", "fV"), ("A", "V"), ("A", "e"),
    ("B", "f"), ("B", "e"),
    ("C", "fV"),
]


def main() -> None:
    print(f"{'cpu':<4} {'strategy':<9}" +
          "".join(f"{p.name:>14}" for p in WORKLOADS) + "   (efficiency)")
    print("-" * 70)
    shared = {}
    for cpu_name, strategy in CONFIGS:
        suit = SuitSystem.for_cpu(cpu_name, strategy_name=strategy,
                                  voltage_offset=-0.097)
        # Share synthesised traces across configurations per workload.
        for profile in WORKLOADS:
            if profile.name in shared:
                suit.prime_trace(profile, shared[profile.name])
        cells = []
        for profile in WORKLOADS:
            result = suit.run_profile(profile)
            shared.setdefault(profile.name, suit._trace(profile))
            cells.append(f"{result.efficiency_change * 100:+13.1f}%")
        print(f"{cpu_name:<4} {strategy:<9}" + "".join(cells))

    print("\nReading guide: emulation ('e') is great until the workload "
          "actually traps;\nnginx under emulation pays two kernel "
          "transitions per AES instruction.\nThe fV strategy never loses "
          "badly anywhere — the paper's default.")


if __name__ == "__main__":
    main()
