"""Vendor-side SUIT bring-up: characterize a chip, derive the curves.

Before shipping SUIT, the vendor must (1) find the faultable instruction
set and each instruction's margin (a Minefield-style undervolting sweep),
(2) size the efficient curve from the margins of the *kept* instructions,
and (3) verify the reductionist security argument: everything enabled on
the efficient curve is stable there.  This example runs that pipeline on
a sampled chip.

Run:
    python examples/characterize_chip.py
"""

import numpy as np

from repro.faults.characterize import CharacterizationSweep, SweepConfig
from repro.faults.model import FaultModel
from repro.isa.faultable import TRAPPED_OPCODES
from repro.isa.opcodes import Opcode
from repro.power.dvfs import DVFSCurve, I9_9900K_CURVE_POINTS
from repro.power.guardband import AgingModel, TemperatureGuardband
from repro.security.analysis import reductionist_argument

FREQUENCIES = (2.0e9, 3.0e9, 4.0e9)


def main() -> None:
    rng = np.random.default_rng(2024)
    curve = DVFSCurve(I9_9900K_CURVE_POINTS, name="i9-9900K")
    model = FaultModel()

    # --- 1. characterization sweep (Table 1) -----------------------------
    sweep = CharacterizationSweep(model, curve, SweepConfig())
    counts = sweep.run(rng)
    print("fault counts per instruction (most sensitive first):")
    for op, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        marker = " <- hardened" if op is Opcode.IMUL else (
            " <- disabled on E" if op in TRAPPED_OPCODES else "")
        print(f"  {op.name:<12} {count:>4d}{marker}")

    # --- 2. size the efficient curve from one concrete chip --------------
    chip = model.sample_chip(curve, n_cores=8, rng=rng, exhibits=True)
    hardened = chip.with_hardened_imul()
    kept = [op for op in Opcode if op not in TRAPPED_OPCODES]
    margin = max(
        hardened.max_safe_offset(op, core, freq)
        for op in kept for core in range(8) for freq in FREQUENCIES)

    # SUIT does NOT consume the aging and temperature guardbands (Fig 2):
    # the usable offset is the kept-set margin minus the bands that must
    # survive, plus a vendor safety slack.
    aging = AgingModel().guardband_voltage(curve, curve.f_max)
    temp = TemperatureGuardband().guardband_voltage()
    slack = 0.005
    offset = margin + aging + temp + slack
    print(f"\ntightest kept-instruction margin:     {margin * 1e3:6.0f} mV")
    print(f"preserved aging guardband:            {aging * 1e3:+6.0f} mV")
    print(f"preserved temperature guardband:      {temp * 1e3:+6.0f} mV")
    print(f"chosen efficient-curve offset:        {offset * 1e3:6.0f} mV "
          "(the paper's ~-70 mV budget)")

    # --- 3. the reductionist check (section 6.9) -------------------------
    verdict = reductionist_argument(chip, offset, FREQUENCIES)
    print(f"\nconservative curve safe for the full ISA: "
          f"{verdict.conservative.safe} "
          f"({verdict.conservative.checked} points)")
    print(f"efficient curve safe for the enabled set:  "
          f"{verdict.efficient.safe} ({verdict.efficient.checked} points)")
    print(f"SUIT security == stock security on this chip: {verdict.holds}")


if __name__ == "__main__":
    main()
