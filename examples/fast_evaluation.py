"""Sampled simulation: SPECcast-style evaluation at a fraction of the cost.

The paper simulates only representative SPEC slices inside gem5
(SPECcast); the same methodology works for the trace simulator.  This
example evaluates a benchmark from 10 systematic windows covering 10 %
of its trace and compares estimate, error and runtime against the full
simulation.

Run:
    python examples/fast_evaluation.py
"""

import time

from repro.core.params import DEFAULT_PARAMS_INTEL
from repro.core.simulator import TraceSimulator
from repro.core.strategy import strategy_for
from repro.hardware.models import cpu_c_xeon_4208
from repro.workloads.generator import generate_trace
from repro.workloads.sampling import evaluate_sampled, sampling_error
from repro.workloads.spec import spec_profile


def main() -> None:
    cpu = cpu_c_xeon_4208()
    profile = spec_profile("520.omnetpp")  # the event-heaviest benchmark
    trace = generate_trace(profile, seed=0)
    print(f"workload: {profile.name} ({trace.n_events:,} faultable events)")

    start = time.perf_counter()
    full = TraceSimulator(cpu, profile, trace,
                          strategy_for("fV", DEFAULT_PARAMS_INTEL),
                          -0.097, seed=0).run()
    t_full = time.perf_counter() - start

    start = time.perf_counter()
    estimate = evaluate_sampled(cpu, profile, trace, "fV", -0.097,
                                n_windows=10, coverage=0.10)
    t_sampled = time.perf_counter() - start

    err_perf, err_power, err_eff = sampling_error(estimate, full)
    print(f"\n{'':<12} {'perf':>9} {'power':>9} {'effic.':>9} {'runtime':>9}")
    print(f"{'full':<12} {full.perf_change * 100:+8.2f}% "
          f"{full.power_change * 100:+8.2f}% "
          f"{full.efficiency_change * 100:+8.2f}% {t_full:8.2f}s")
    print(f"{'sampled 10%':<12} {estimate.perf_change * 100:+8.2f}% "
          f"{estimate.power_change * 100:+8.2f}% "
          f"{estimate.efficiency_change * 100:+8.2f}% {t_sampled:8.2f}s")
    print(f"{'abs. error':<12} {err_perf * 100:8.2f}pp "
          f"{err_power * 100:8.2f}pp {err_eff * 100:8.2f}pp "
          f"{t_full / max(t_sampled, 1e-9):7.1f}x")


if __name__ == "__main__":
    main()
